//! `btstat` — offline fleet analytics over `--emit-dir` run artifacts.
//!
//! ```text
//! btstat merge DIR...  [--out fleet.json] [--html fleet.html]
//! btstat diff  A B     [--out diff.json] [--flame-a a.folded] [--flame-b b.folded] [--top N]
//! btstat bisect A B    [--window K] [--out bisect.json]
//! ```
//!
//! Reports go to stdout as JSON; progress and human summaries go to
//! stderr, so `btstat ... | python3 -m json.tool` always works.
//! `bisect` exits 0 whether the traces match or not — a located
//! divergence is a *successful* diagnosis; only missing/invalid inputs
//! exit nonzero.

use std::path::Path;
use std::process::ExitCode;

use bt_stat::{attribute, bisect_traces, diff_runs, FleetReport, RunArtifacts};

const USAGE: &str = "usage:
  btstat merge DIR... [--out FILE] [--html FILE]
  btstat diff A B [--out FILE] [--flame-a FILE] [--flame-b FILE] [--top N]
  btstat bisect A B [--window K] [--out FILE]

Each DIR is a run directory written by `swarmrun --emit-dir DIR`
(run.json + metrics.jsonl/series.json/profile.json/trace.jsonl).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("merge") => cmd_merge(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("bisect") => cmd_bisect(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::from(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => Err(format!("unknown verb `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("btstat: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Value of `--flag V`, if present.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Positional (non-flag) arguments.
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
            continue;
        }
        if arg.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(arg.as_str());
    }
    out
}

fn load_run(dir: &str) -> Result<RunArtifacts, String> {
    RunArtifacts::load(Path::new(dir)).map_err(|e| e.to_string())
}

fn emit(out: Option<&str>, body: &str) -> Result<(), String> {
    if let Some(path) = out {
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("btstat: wrote {path}");
    }
    println!("{body}");
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let dirs = positionals(args);
    if dirs.is_empty() {
        return Err(format!("merge needs at least one run directory\n{USAGE}"));
    }
    let runs = dirs
        .iter()
        .map(|d| load_run(d))
        .collect::<Result<Vec<_>, _>>()?;
    let report = FleetReport::merge(runs);
    for v in report.verdicts() {
        eprintln!(
            "btstat: verdict {} {} ({})",
            v.name,
            if v.healthy { "ok" } else { "WARN" },
            v.detail
        );
    }
    if let Some(path) = flag(args, "--html") {
        std::fs::write(path, report.to_html()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("btstat: wrote {path}");
    }
    emit(flag(args, "--out"), &report.to_json())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let [a_dir, b_dir] = pos.as_slice() else {
        return Err(format!("diff needs exactly two run directories\n{USAGE}"));
    };
    let a = load_run(a_dir)?;
    let b = load_run(b_dir)?;
    let top = flag(args, "--top")
        .map(|v| v.parse::<usize>().map_err(|_| format!("bad --top `{v}`")))
        .transpose()?
        .unwrap_or(0);

    let empty = Default::default;
    let mut diff = diff_runs(
        a.metrics.as_ref().unwrap_or(&empty()),
        b.metrics.as_ref().unwrap_or(&empty()),
    );
    if let (Some(pa), Some(pb)) = (&a.profile, &b.profile) {
        diff.spans = attribute(pa, pb, top);
    }
    eprint!("{}", diff.render());

    for (flag_name, run) in [("--flame-a", &a), ("--flame-b", &b)] {
        if let Some(path) = flag(args, flag_name) {
            let profile = run
                .profile
                .as_ref()
                .ok_or_else(|| format!("{}: run has no profile.json", run.key()))?;
            std::fs::write(path, profile.to_collapsed()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("btstat: wrote {path} (collapsed stacks for {})", run.key());
        }
    }
    emit(flag(args, "--out"), &diff.to_json())
}

fn cmd_bisect(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let [a_dir, b_dir] = pos.as_slice() else {
        return Err(format!("bisect needs exactly two run directories\n{USAGE}"));
    };
    let window = flag(args, "--window")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("bad --window `{v}`"))
        })
        .transpose()?
        .unwrap_or(3);
    let a = load_run(a_dir)?;
    let b = load_run(b_dir)?;
    let trace = |run: &RunArtifacts, dir: &str| {
        run.trace_jsonl
            .clone()
            .ok_or_else(|| format!("{dir}: no trace.jsonl (re-run with --emit-dir)"))
    };
    let report = bisect_traces(&trace(&a, a_dir)?, &trace(&b, b_dir)?, window);
    eprintln!(
        "btstat: digests {} vs {} — {}",
        a.digest,
        b.digest,
        if report.is_identical() {
            "traces identical"
        } else {
            "traces diverge"
        }
    );
    eprint!("{}", report.render());
    emit(flag(args, "--out"), &report.to_json())
}
