//! Fairness characterisation of the choke algorithm (figures 9 and 11).
//!
//! §IV-B.2 (figure 9, leecher state): rank remote peers by the bytes the
//! local peer uploaded to them, group them into sets of five ("the first
//! set contains the 5 remote peers that receive the most bytes"), and
//! show each set's share of total uploaded bytes (top graph) and of total
//! bytes downloaded *from leechers* (bottom graph, seeds removed because
//! they cannot be reciprocated to). Strong reciprocation shows as the
//! same (dark) sets dominating both graphs.
//!
//! §IV-B.3 (figure 11, seed state): the same set construction over bytes
//! uploaded while in seed state; the new seed-state choke algorithm gives
//! near-equal shares.

use bt_instrument::identify::PeerRegistry;
use bt_instrument::trace::{Trace, TraceEvent};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Size of each ranked peer set (the paper uses 5).
pub const SET_SIZE: usize = 5;

/// Number of sets shown (6 sets → the 30 best downloaders).
pub const NUM_SETS: usize = 6;

/// Byte tallies for one remote peer over one local-state window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerBytes {
    /// Trace connection handle.
    pub handle: u32,
    /// Bytes the local peer uploaded to this peer in the window.
    pub uploaded: u64,
    /// Bytes the local peer downloaded from this peer in the window.
    pub downloaded: u64,
    /// True when the peer arrived holding every piece.
    pub is_seed: bool,
}

/// Figure 9 / figure 11 summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessSummary {
    /// Per-peer tallies, ranked by `uploaded` descending.
    pub ranked: Vec<PeerBytes>,
    /// Each set's share of total uploaded bytes (top graph, cumulative by
    /// set, `NUM_SETS` entries; zero-filled when fewer peers exist).
    pub upload_share: Vec<f64>,
    /// Each set's share of bytes downloaded from leechers (bottom graph).
    pub download_share: Vec<f64>,
    /// Total bytes uploaded in the window.
    pub total_uploaded: u64,
    /// Total bytes downloaded from leechers in the window.
    pub total_downloaded: u64,
}

/// Which local-state window to tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateWindow {
    /// From session start to the seed transition (figure 9, "LS").
    Leecher,
    /// From the seed transition to session end (figure 11, "SS").
    Seed,
}

/// Compute the fairness characterisation for one trace and window.
pub fn fairness(trace: &Trace, window: StateWindow) -> FairnessSummary {
    let seed_at = trace.meta.seed_at.unwrap_or(trace.meta.session_end);
    let (start, end) = match window {
        StateWindow::Leecher => (Instant::ZERO, seed_at),
        StateWindow::Seed => (seed_at, trace.meta.session_end),
    };
    let registry = PeerRegistry::from_trace(trace);
    let mut tallies: HashMap<u32, PeerBytes> = HashMap::new();
    for (t, ev) in trace.iter() {
        if t < start || t >= end {
            continue;
        }
        match ev {
            TraceEvent::BlockSent { peer, block } => {
                let e = tallies.entry(*peer).or_insert(PeerBytes {
                    handle: *peer,
                    uploaded: 0,
                    downloaded: 0,
                    is_seed: false,
                });
                e.uploaded += u64::from(block.length);
            }
            TraceEvent::BlockReceived { peer, block } => {
                let e = tallies.entry(*peer).or_insert(PeerBytes {
                    handle: *peer,
                    uploaded: 0,
                    downloaded: 0,
                    is_seed: false,
                });
                e.downloaded += u64::from(block.length);
            }
            _ => {}
        }
    }
    for tally in tallies.values_mut() {
        tally.is_seed = registry
            .membership(tally.handle)
            .map(|m| m.arrived_as_seed(trace.meta.num_pieces))
            .unwrap_or(false);
    }

    let mut ranked: Vec<PeerBytes> = tallies.into_values().collect();
    ranked.sort_by(|a, b| b.uploaded.cmp(&a.uploaded).then(a.handle.cmp(&b.handle)));

    let total_uploaded: u64 = ranked.iter().map(|p| p.uploaded).sum();
    // "All seeds are removed from the data used for the bottom graph":
    // the download denominator counts only leechers.
    let total_downloaded: u64 = ranked
        .iter()
        .filter(|p| !p.is_seed)
        .map(|p| p.downloaded)
        .sum();

    let mut upload_share = Vec::with_capacity(NUM_SETS);
    let mut download_share = Vec::with_capacity(NUM_SETS);
    for set in 0..NUM_SETS {
        let slice: Vec<&PeerBytes> = ranked.iter().skip(set * SET_SIZE).take(SET_SIZE).collect();
        let up: u64 = slice.iter().map(|p| p.uploaded).sum();
        let down: u64 = slice
            .iter()
            .filter(|p| !p.is_seed)
            .map(|p| p.downloaded)
            .sum();
        upload_share.push(if total_uploaded > 0 {
            up as f64 / total_uploaded as f64
        } else {
            0.0
        });
        download_share.push(if total_downloaded > 0 {
            down as f64 / total_downloaded as f64
        } else {
            0.0
        });
    }

    FairnessSummary {
        ranked,
        upload_share,
        download_share,
        total_uploaded,
        total_downloaded,
    }
}

impl FairnessSummary {
    /// Share of uploads captured by the five best downloaders (the black
    /// set). High values reproduce §IV-B.2's "the 5 peers that receive
    /// the most data represent a large part of the total".
    pub fn top_set_upload_share(&self) -> f64 {
        self.upload_share.first().copied().unwrap_or(0.0)
    }

    /// Reciprocation correlation: Spearman-style agreement between upload
    /// rank and download contribution — the fraction of downloaded bytes
    /// (from leechers) contributed by the top `k` upload-ranked peers.
    pub fn reciprocation_share(&self, k: usize) -> f64 {
        if self.total_downloaded == 0 {
            return 0.0;
        }
        let down: u64 = self
            .ranked
            .iter()
            .take(k)
            .filter(|p| !p.is_seed)
            .map(|p| p.downloaded)
            .sum();
        down as f64 / self.total_downloaded as f64
    }

    /// Jain's fairness index over per-peer uploaded bytes — 1.0 means
    /// perfectly equal service, the new seed-state algorithm's target.
    pub fn jain_index(&self) -> f64 {
        let served: Vec<f64> = self
            .ranked
            .iter()
            .filter(|p| p.uploaded > 0)
            .map(|p| p.uploaded as f64)
            .collect();
        if served.is_empty() {
            return 0.0;
        }
        let sum: f64 = served.iter().sum();
        let sum_sq: f64 = served.iter().map(|x| x * x).sum();
        (sum * sum) / (served.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::TraceMeta;
    use bt_wire::message::BlockRef;
    use bt_wire::peer_id::{ClientKind, IpAddr, PeerId};

    fn block(len: u32) -> BlockRef {
        BlockRef {
            piece: 0,
            offset: 0,
            length: len,
        }
    }

    fn trace() -> Trace {
        let meta = TraceMeta {
            torrent: "f".into(),
            torrent_id: 7,
            num_pieces: 10,
            num_blocks: 160,
            initial_seeds: 1,
            initial_leechers: 3,
            session_end: Instant::from_secs(1000),
            seed_at: Some(Instant::from_secs(500)),
        };
        let mut tr = Trace::new(meta);
        for h in 0..3u32 {
            tr.push(
                Instant::from_secs(0),
                TraceEvent::PeerJoined {
                    peer: h,
                    ip: IpAddr(h + 1),
                    peer_id: PeerId::new(ClientKind::Azureus, u64::from(h)),
                    pieces_on_arrival: if h == 2 { 10 } else { 0 },
                    total_pieces: 10,
                },
            );
        }
        tr
    }

    #[test]
    fn reciprocation_tallies() {
        let mut tr = trace();
        // LS: upload 3 blocks to peer 0, 1 to peer 1; download 2 from
        // peer 0, 1 from peer 1, 5 from the seed (peer 2).
        for _ in 0..3 {
            tr.push(
                Instant::from_secs(10),
                TraceEvent::BlockSent {
                    peer: 0,
                    block: block(100),
                },
            );
        }
        tr.push(
            Instant::from_secs(10),
            TraceEvent::BlockSent {
                peer: 1,
                block: block(100),
            },
        );
        tr.push(
            Instant::from_secs(11),
            TraceEvent::BlockReceived {
                peer: 0,
                block: block(100),
            },
        );
        tr.push(
            Instant::from_secs(11),
            TraceEvent::BlockReceived {
                peer: 0,
                block: block(100),
            },
        );
        tr.push(
            Instant::from_secs(11),
            TraceEvent::BlockReceived {
                peer: 1,
                block: block(100),
            },
        );
        for _ in 0..5 {
            tr.push(
                Instant::from_secs(12),
                TraceEvent::BlockReceived {
                    peer: 2,
                    block: block(100),
                },
            );
        }
        let f = fairness(&tr, StateWindow::Leecher);
        assert_eq!(f.total_uploaded, 400);
        // Seed's 500 bytes are excluded from the download denominator.
        assert_eq!(f.total_downloaded, 300);
        assert_eq!(f.ranked[0].handle, 0);
        // Top set holds every peer (only 3), so shares sum to 1.
        assert!((f.upload_share[0] - 1.0).abs() < 1e-9);
        assert!((f.reciprocation_share(1) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn seed_state_window() {
        let mut tr = trace();
        tr.push(
            Instant::from_secs(100),
            TraceEvent::BlockSent {
                peer: 0,
                block: block(50),
            },
        );
        tr.push(
            Instant::from_secs(600),
            TraceEvent::BlockSent {
                peer: 1,
                block: block(70),
            },
        );
        let ls = fairness(&tr, StateWindow::Leecher);
        let ss = fairness(&tr, StateWindow::Seed);
        assert_eq!(ls.total_uploaded, 50);
        assert_eq!(ss.total_uploaded, 70);
        assert_eq!(ss.ranked[0].handle, 1);
    }

    #[test]
    fn jain_index_equal_service_is_one() {
        let mut tr = trace();
        for h in 0..3u32 {
            tr.push(
                Instant::from_secs(600),
                TraceEvent::BlockSent {
                    peer: h,
                    block: block(100),
                },
            );
        }
        let ss = fairness(&tr, StateWindow::Seed);
        assert!((ss.jain_index() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jain_index_detects_monopoly() {
        let mut tr = trace();
        for _ in 0..9 {
            tr.push(
                Instant::from_secs(600),
                TraceEvent::BlockSent {
                    peer: 0,
                    block: block(100),
                },
            );
        }
        tr.push(
            Instant::from_secs(600),
            TraceEvent::BlockSent {
                peer: 1,
                block: block(100),
            },
        );
        let ss = fairness(&tr, StateWindow::Seed);
        assert!(ss.jain_index() < 0.7, "index {}", ss.jain_index());
    }

    #[test]
    fn empty_window_is_zeroes() {
        let tr = trace();
        let f = fairness(&tr, StateWindow::Seed);
        assert_eq!(f.total_uploaded, 0);
        assert_eq!(f.upload_share, vec![0.0; NUM_SETS]);
        assert_eq!(f.jain_index(), 0.0);
    }
}
