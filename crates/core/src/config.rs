//! Engine configuration.
//!
//! §III-C lists the main default parameters of the instrumented mainline
//! client; [`Config::default`] reproduces every one of them:
//!
//! > "the maximum upload rate (default to 20 kB/s), the minimum number of
//! > peers in the peer set before requesting more peers to the tracker
//! > (default to 20), the maximum number of connections the local peer can
//! > initiate (default to 40), the maximum number of peers in the peer set
//! > (default to 80), the number of peers in the active peer set including
//! > the optimistic unchoke (default to 4), the block size (default to
//! > 2^14 Bytes), the number of pieces downloaded before switching from
//! > random to rarest first piece selection (default to 4)."

use bt_choke::ChokerKind;
use bt_piece::PickerKind;
use bt_wire::time::Duration;
use serde::{Deserialize, Serialize};

/// Tunable parameters of a [`crate::engine::Engine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Maximum upload rate in bytes/second (mainline default: 20 kB/s).
    /// Enforced by the simulator's link model.
    pub max_upload_rate: u64,
    /// Maximum download rate in bytes/second; `u64::MAX` = unlimited (the
    /// paper's machine had no download cap).
    pub max_download_rate: u64,
    /// Maximum peer set size (default 80).
    pub max_peer_set: usize,
    /// Request more peers from the tracker when the peer set falls below
    /// this threshold (default 20).
    pub min_peer_set: usize,
    /// Maximum number of connections the local peer may initiate
    /// (default 40); the rest must be inbound.
    pub max_initiated: usize,
    /// Active peer set size including the optimistic unchoke (default 4).
    pub active_set_size: usize,
    /// Pieces downloaded via the random-first policy before switching to
    /// rarest first (default 4).
    pub random_first_threshold: u32,
    /// Outstanding block requests kept in flight per unchoked peer.
    pub pipeline_depth: usize,
    /// Rechoke period (10 s).
    pub rechoke_period: Duration,
    /// Optimistic unchoke rotation, in rechoke rounds (3 → every 30 s).
    pub optimistic_rounds: u64,
    /// Keep-alive interval (2 minutes of silence).
    pub keepalive: Duration,
    /// Piece selection strategy.
    pub picker: PickerKind,
    /// Peer selection strategy.
    pub choker: ChokerKind,
    /// Behaviour switch: never serve blocks (free rider, §IV-B).
    pub upload_disabled: bool,
    /// Behaviour switch: super-seeding-style gradual piece advertisement
    /// (§IV-A.1 mentions clients with this option as an entropy artefact).
    pub super_seed: bool,
    /// Refuse a second concurrent connection from an IP address already in
    /// the peer set (§III-D: mainline default on).
    pub one_connection_per_ip: bool,
    /// End game mode (§II-C.1). Enabled by default, as in all the paper's
    /// experiments; the ablation bench turns it off.
    pub endgame_enabled: bool,
    /// Fast Extension (BEP 6). Off by default — the paper's mainline
    /// 4.0.2 client predates it. Implemented here as the protocol-level
    /// answer to the paper's §VI *first blocks problem*: peers grant each
    /// neighbour a small allowed-fast set requestable even while choked.
    pub fast_extension: bool,
    /// Pieces granted per neighbour when the Fast Extension is active.
    pub allowed_fast_count: u32,
    /// Peer exchange (BEP 10/11 `ut_pex`). Off by default — post-paper;
    /// decentralises the peer-set interconnection that §II-B attributes
    /// to the tracker's random lists.
    pub pex_enabled: bool,
    /// Minimum spacing between `ut_pex` gossips per connection.
    pub pex_interval: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_upload_rate: 20 * 1024,
            max_download_rate: u64::MAX,
            max_peer_set: 80,
            min_peer_set: 20,
            max_initiated: 40,
            active_set_size: 4,
            random_first_threshold: 4,
            pipeline_depth: 8,
            rechoke_period: Duration::from_secs(10),
            optimistic_rounds: 3,
            keepalive: Duration::from_secs(120),
            picker: PickerKind::RarestFirst,
            choker: ChokerKind::Standard,
            upload_disabled: false,
            super_seed: false,
            one_connection_per_ip: true,
            endgame_enabled: true,
            fast_extension: false,
            allowed_fast_count: bt_wire::fast::DEFAULT_ALLOWED_FAST,
            pex_enabled: false,
            pex_interval: Duration::from_secs(60),
        }
    }
}

impl Config {
    /// A free-riding client: standard algorithms, upload refused.
    pub fn free_rider() -> Config {
        Config {
            upload_disabled: true,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_section_iii_c() {
        let c = Config::default();
        assert_eq!(c.max_upload_rate, 20 * 1024);
        assert_eq!(c.min_peer_set, 20);
        assert_eq!(c.max_initiated, 40);
        assert_eq!(c.max_peer_set, 80);
        assert_eq!(c.active_set_size, 4);
        assert_eq!(c.random_first_threshold, 4);
        assert_eq!(c.rechoke_period, Duration::from_secs(10));
        assert_eq!(c.optimistic_rounds, 3);
        assert_eq!(c.picker, PickerKind::RarestFirst);
        assert_eq!(c.choker, ChokerKind::Standard);
        assert!(c.one_connection_per_ip);
        assert!(!c.upload_disabled);
    }

    #[test]
    fn free_rider_only_disables_upload() {
        let c = Config::free_rider();
        assert!(c.upload_disabled);
        assert_eq!(c.max_peer_set, Config::default().max_peer_set);
    }
}
