//! Owned, parseable schema for every artifact this crate exports.
//!
//! The live types ([`Snapshot`](crate::Snapshot),
//! [`Profile`](crate::Profile), [`SeriesStore`](crate::SeriesStore),
//! [`TraceEvent`](crate::TraceEvent)) borrow `&'static str` names and
//! only *emit* JSON — fine inside one process, useless for offline
//! fleet analytics that must read artifacts back from disk. This module
//! is the read side of the contract: one owned document type per export
//! format, a parser for the exact bytes the writers produce, a
//! commutative `merge` for cross-run aggregation, and a deterministic
//! `to_json` that mirrors the writer's layout. `parse(doc.to_json()) ==
//! doc` holds for every type, so fleet reports built from merged
//! documents are byte-identical regardless of input order.
//!
//! Quantiles over merged histograms follow the same convention as
//! [`HistogramSnapshot`](crate::HistogramSnapshot): the upper bound of
//! the bucket holding the rank-q sample, with overflow clamped to the
//! largest *recorded* finite bound (a parsed document no longer knows
//! the instrument's configured bound list).
//!
//! Like the rest of `bt-obs` this is dependency-free: the module
//! carries its own minimal JSON reader ([`parse_json`]) instead of
//! pulling a serde crate under every instrumented component.

use std::collections::BTreeMap;
use std::fmt;

use crate::series::json_f64;

// ---------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------

/// A parsed JSON tree. Integers keep their exact magnitude (`U64` /
/// `I64`) so counters and microsecond timestamps survive a round trip;
/// anything with a fraction or exponent becomes `F64`. Object keys are
/// sorted (every writer in this crate emits them sorted already).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, sorted by key.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// As `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            JsonValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// As `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::U64(n) => i64::try_from(*n).ok(),
            JsonValue::I64(n) => Some(*n),
            _ => None,
        }
    }

    /// As `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(n) => Some(*n as f64),
            JsonValue::I64(n) => Some(*n as f64),
            JsonValue::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// As `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As the member list if an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As the key map if an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Schema parse error: what was expected and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError(String);

impl SchemaError {
    fn new(msg: impl Into<String>) -> SchemaError {
        SchemaError(msg.into())
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SchemaError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse_json(input: &str) -> Result<JsonValue, SchemaError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(SchemaError::new(format!(
            "trailing characters at byte {pos}"
        )));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, SchemaError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(SchemaError::new("unexpected end of input")),
        Some(b'n') => lit(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => lit(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => lit(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(input, bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(SchemaError::new(format!("expected `,` or `]` at {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(SchemaError::new(format!("expected `:` at {pos}")));
                }
                *pos += 1;
                let value = parse_value(input, bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(SchemaError::new(format!("expected `,` or `}}` at {pos}"))),
                }
            }
        }
        Some(_) => parse_number(input, bytes, pos),
    }
}

fn lit(bytes: &[u8], pos: &mut usize, word: &str) -> Result<(), SchemaError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(SchemaError::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, SchemaError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(SchemaError::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(SchemaError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = input
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| SchemaError::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| SchemaError::new("invalid \\u escape"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(SchemaError::new(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                let c = input[*pos..].chars().next().expect("in-bounds char");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, SchemaError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = &input[start..*pos];
    if text.is_empty() || text == "-" {
        return Err(SchemaError::new(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Some(neg) = text.strip_prefix('-') {
            if let Ok(n) = neg.parse::<u64>() {
                if let Ok(i) = i64::try_from(n) {
                    return Ok(JsonValue::I64(-i));
                }
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::U64(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::F64)
        .map_err(|_| SchemaError::new(format!("invalid number `{text}`")))
}

fn expected(what: &str, ctx: &str) -> SchemaError {
    SchemaError::new(format!("{ctx}: expected {what}"))
}

// ---------------------------------------------------------------------
// Metrics snapshots (the `--metrics` JSONL format)
// ---------------------------------------------------------------------

/// Owned histogram, parsed from a snapshot line or a profile document.
///
/// `buckets` keeps the non-empty finite buckets as sorted
/// `(upper_bound, count)` pairs, exactly as the writers emit them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramDoc {
    /// Observation count (finite buckets plus overflow).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty finite buckets as sorted `(upper_bound, count)`.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last finite bound.
    pub overflow: u64,
}

impl HistogramDoc {
    /// Fold `other` in: bucket counts merge by bound, count/sum/overflow
    /// add. Commutative and associative.
    pub fn merge(&mut self, other: &HistogramDoc) {
        self.count += other.count;
        self.sum += other.sum;
        self.overflow += other.overflow;
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(b, c) in &other.buckets {
            *merged.entry(b).or_default() += c;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Deterministic integer quantile over the merged buckets: the
    /// upper bound of the bucket holding the rank-q sample, with
    /// overflow clamped to the largest recorded finite bound (0 when
    /// the histogram is empty or entirely overflow with no finite
    /// buckets to clamp to).
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q_num).div_ceil(q_den).max(1);
        let mut seen = 0u64;
        for &(b, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return b;
            }
        }
        self.buckets.last().map(|&(b, _)| b).unwrap_or(0)
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.quantile(50, 100),
            self.quantile(95, 100),
            self.quantile(99, 100)
        ));
        for (j, (le, c)) in self.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{le},{c}]"));
        }
        out.push_str(&format!("],\"overflow\":{}}}", self.overflow));
    }

    fn from_value(v: &JsonValue, ctx: &str) -> Result<HistogramDoc, SchemaError> {
        let obj = v.as_object().ok_or_else(|| expected("object", ctx))?;
        let num = |key: &str| obj.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let mut buckets = Vec::new();
        if let Some(raw) = obj.get("buckets").and_then(JsonValue::as_array) {
            for pair in raw {
                let pair = pair
                    .as_array()
                    .ok_or_else(|| expected("[bound,count] pair", ctx))?;
                let (Some(b), Some(c)) = (
                    pair.first().and_then(JsonValue::as_u64),
                    pair.get(1).and_then(JsonValue::as_u64),
                ) else {
                    return Err(expected("integer bucket pair", ctx));
                };
                buckets.push((b, c));
            }
        }
        buckets.sort_unstable();
        Ok(HistogramDoc {
            count: num("count"),
            sum: num("sum"),
            buckets,
            overflow: num("overflow"),
        })
    }
}

/// One owned metrics snapshot: the parse of a
/// [`Snapshot::to_jsonl_line`](crate::Snapshot::to_jsonl_line).
/// Labeled instruments keep their `name{label}` keys.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDoc {
    /// Snapshot timestamp (µs); a merge keeps the max.
    pub at_micros: u64,
    /// Counter values by `name` / `name{label}`.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by `name` / `name{label}`.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by `name` / `name{label}`.
    pub histograms: BTreeMap<String, HistogramDoc>,
}

impl MetricsDoc {
    /// Parse one snapshot line (the `--metrics` JSONL format).
    pub fn parse_line(line: &str) -> Result<MetricsDoc, SchemaError> {
        let v = parse_json(line)?;
        let mut doc = MetricsDoc {
            at_micros: v.get("t").and_then(JsonValue::as_u64).unwrap_or(0),
            ..MetricsDoc::default()
        };
        if let Some(counters) = v.get("counters").and_then(JsonValue::as_object) {
            for (k, val) in counters {
                doc.counters.insert(
                    k.clone(),
                    val.as_u64()
                        .ok_or_else(|| expected("u64 counter", "metrics"))?,
                );
            }
        }
        if let Some(gauges) = v.get("gauges").and_then(JsonValue::as_object) {
            for (k, val) in gauges {
                doc.gauges.insert(
                    k.clone(),
                    val.as_i64()
                        .ok_or_else(|| expected("i64 gauge", "metrics"))?,
                );
            }
        }
        if let Some(hists) = v.get("histograms").and_then(JsonValue::as_object) {
            for (k, val) in hists {
                doc.histograms
                    .insert(k.clone(), HistogramDoc::from_value(val, "metrics")?);
            }
        }
        Ok(doc)
    }

    /// Parse a whole `--metrics` file: one snapshot per non-empty line.
    pub fn parse_jsonl(text: &str) -> Result<Vec<MetricsDoc>, SchemaError> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(MetricsDoc::parse_line)
            .collect()
    }

    /// Fold `other` in: counters and gauges sum, histograms bucket-merge
    /// (fleet-wide quantiles recompute from the merged buckets), the
    /// timestamp keeps the max. Commutative and associative.
    pub fn merge(&mut self, other: &MetricsDoc) {
        self.at_micros = self.at_micros.max(other.at_micros);
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Serialize in the snapshot-line layout (sorted keys, quantiles
    /// recomputed from the stored buckets). Deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"t\":");
        out.push_str(&self.at_micros.to_string());
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_string_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_string_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_string_key(&mut out, k);
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

fn push_string_key(out: &mut String, key: &str) {
    out.push('"');
    crate::export::escape_json_into(out, key);
    out.push_str("\":");
}

// ---------------------------------------------------------------------
// Span profiles (the `--profile` JSON format)
// ---------------------------------------------------------------------

/// Owned stats for one span path, parsed from a profile document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanDoc {
    /// Completed spans at this path.
    pub count: u64,
    /// Total elapsed µs.
    pub total_us: u64,
    /// Elapsed µs not attributed to child spans.
    pub self_us: u64,
    /// Duration histogram (finite buckets + overflow from the `"inf"`
    /// slot).
    pub buckets: HistogramDoc,
}

impl SpanDoc {
    /// Fold `other` in (commutative sums, like
    /// [`Profile::merge`](crate::Profile::merge)).
    pub fn merge(&mut self, other: &SpanDoc) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.self_us += other.self_us;
        self.buckets.merge(&other.buckets);
    }
}

/// Owned call-tree profile: the parse of a
/// [`Profile::to_json`](crate::Profile::to_json). Paths are the
/// `/`-joined span names split back into segments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileDoc {
    /// Per-path stats, sorted by path (preorder DFS of the call tree).
    pub spans: BTreeMap<Vec<String>, SpanDoc>,
}

impl ProfileDoc {
    /// Parse a profile document (the `"spans"` array; the redundant
    /// `"flat"` table is recomputed, not stored).
    pub fn parse(text: &str) -> Result<ProfileDoc, SchemaError> {
        let v = parse_json(text)?;
        let spans = v
            .get("spans")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| expected("spans array", "profile"))?;
        let mut doc = ProfileDoc::default();
        for span in spans {
            let path: Vec<String> = span
                .get("path")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| expected("path string", "profile"))?
                .split('/')
                .map(str::to_string)
                .collect();
            let num = |key: &str| span.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            let mut buckets = Vec::new();
            let mut overflow = 0u64;
            if let Some(raw) = span.get("buckets").and_then(JsonValue::as_array) {
                for pair in raw {
                    let pair = pair
                        .as_array()
                        .ok_or_else(|| expected("bucket pair", "profile"))?;
                    let c = pair
                        .get(1)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| expected("bucket count", "profile"))?;
                    match pair.first() {
                        Some(JsonValue::Str(s)) if s == "inf" => overflow += c,
                        Some(b) => buckets.push((
                            b.as_u64()
                                .ok_or_else(|| expected("bucket bound", "profile"))?,
                            c,
                        )),
                        None => return Err(expected("bucket bound", "profile")),
                    }
                }
            }
            buckets.sort_unstable();
            let count = num("count");
            doc.spans.insert(
                path,
                SpanDoc {
                    count,
                    total_us: num("total_us"),
                    self_us: num("self_us"),
                    buckets: HistogramDoc {
                        count,
                        sum: num("total_us"),
                        buckets,
                        overflow,
                    },
                },
            );
        }
        Ok(doc)
    }

    /// Fold `other` in (commutative sums per path).
    pub fn merge(&mut self, other: &ProfileDoc) {
        for (path, stat) in &other.spans {
            self.spans.entry(path.clone()).or_default().merge(stat);
        }
    }

    /// Flat per-leaf-name aggregate, sorted by name.
    pub fn flat(&self) -> BTreeMap<String, SpanDoc> {
        let mut by_name: BTreeMap<String, SpanDoc> = BTreeMap::new();
        for (path, stat) in &self.spans {
            if let Some(leaf) = path.last() {
                by_name.entry(leaf.clone()).or_default().merge(stat);
            }
        }
        by_name
    }

    /// Serialize in the [`Profile::to_json`](crate::Profile::to_json)
    /// layout (spans in path order, then the flat table). Deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"spans\":[");
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":\"");
            crate::export::escape_json_into(&mut out, &path.join("/"));
            out.push_str("\",\"depth\":");
            out.push_str(&path.len().saturating_sub(1).to_string());
            push_span_fields(&mut out, stat);
            out.push('}');
        }
        out.push_str("],\"flat\":[");
        for (i, (name, stat)) in self.flat().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            crate::export::escape_json_into(&mut out, name);
            out.push('"');
            push_span_fields(&mut out, stat);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Collapsed-stack flamegraph export (the format `inferno` and
    /// speedscope ingest): one line per span path, frames joined by
    /// `;`, the sample value is the span's *self* time in µs — so
    /// stacking the lines reconstructs total time exactly, with no
    /// double counting of child spans.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::with_capacity(self.spans.len() * 48);
        for (path, stat) in &self.spans {
            out.push_str(&path.join(";"));
            out.push(' ');
            out.push_str(&stat.self_us.to_string());
            out.push('\n');
        }
        out
    }
}

fn push_span_fields(out: &mut String, stat: &SpanDoc) {
    out.push_str(&format!(
        ",\"count\":{},\"total_us\":{},\"self_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"buckets\":[",
        stat.count,
        stat.total_us,
        stat.self_us,
        stat.buckets.quantile(50, 100),
        stat.buckets.quantile(95, 100),
        stat.buckets.quantile(99, 100)
    ));
    let mut first = true;
    for &(b, c) in &stat.buckets.buckets {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{b},{c}]"));
    }
    if stat.buckets.overflow > 0 {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("[\"inf\",{}]", stat.buckets.overflow));
    }
    out.push(']');
}

// ---------------------------------------------------------------------
// Time-series (the `--series` JSON format)
// ---------------------------------------------------------------------

/// One parsed series: retained points plus the decimation stride.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesEntry {
    /// Keep-one-in-`stride` decimation factor when exported.
    pub stride: u64,
    /// Retained `(t_micros, value)` points, oldest first.
    pub points: Vec<(u64, f64)>,
}

impl SeriesEntry {
    /// The most recent point's value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

/// Owned multi-series document: the parse of a
/// [`SeriesStore::to_json`](crate::SeriesStore::to_json).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesDoc {
    /// Series by name, sorted.
    pub series: BTreeMap<String, SeriesEntry>,
}

impl SeriesDoc {
    /// Parse a series document (`{"series":[...]}`).
    pub fn parse(text: &str) -> Result<SeriesDoc, SchemaError> {
        let v = parse_json(text)?;
        let list = v
            .get("series")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| expected("series array", "series"))?;
        let mut doc = SeriesDoc::default();
        for s in list {
            let name = s
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| expected("series name", "series"))?
                .to_string();
            let stride = s.get("stride").and_then(JsonValue::as_u64).unwrap_or(1);
            let mut points = Vec::new();
            if let Some(raw) = s.get("points").and_then(JsonValue::as_array) {
                for p in raw {
                    let p = p.as_array().ok_or_else(|| expected("point", "series"))?;
                    let (Some(t), Some(val)) = (
                        p.first().and_then(JsonValue::as_u64),
                        p.get(1).and_then(JsonValue::as_f64),
                    ) else {
                        return Err(expected("[t,value] point", "series"));
                    };
                    points.push((t, val));
                }
            }
            doc.series.insert(name, SeriesEntry { stride, points });
        }
        Ok(doc)
    }

    /// Serialize in the store's layout (names sorted, integral floats
    /// printed bare). `parse(doc.to_json()) == doc`, and for documents
    /// produced by [`SeriesStore`](crate::SeriesStore) the round trip is
    /// byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.series.len() * 128);
        out.push_str("{\"series\":[");
        for (i, (name, entry)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            crate::export::escape_json_into(&mut out, name);
            out.push_str(&format!("\",\"stride\":{},\"points\":[", entry.stride));
            for (j, (t, v)) in entry.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{t},{}]", json_f64(*v)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

// ---------------------------------------------------------------------
// Causal trace events (the trace JSONL format)
// ---------------------------------------------------------------------

/// One owned causal trace event: the parse of a
/// [`TraceEvent::to_json`](crate::TraceEvent::to_json) line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceEventDoc {
    /// Virtual-clock reading (µs).
    pub at_micros: u64,
    /// Category name (`piece`, `choke`, `msg`).
    pub cat: String,
    /// Event name.
    pub name: String,
    /// Chain id.
    pub id: u64,
    /// Named integer payload, in emission order.
    pub args: Vec<(String, i64)>,
}

impl TraceEventDoc {
    /// Parse one trace JSONL line.
    pub fn parse_line(line: &str) -> Result<TraceEventDoc, SchemaError> {
        let v = parse_json(line)?;
        let obj = v
            .as_object()
            .ok_or_else(|| expected("object", "trace event"))?;
        let mut doc = TraceEventDoc {
            at_micros: obj.get("t").and_then(JsonValue::as_u64).unwrap_or(0),
            cat: obj
                .get("cat")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            name: obj
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            id: obj.get("id").and_then(JsonValue::as_u64).unwrap_or(0),
            args: Vec::new(),
        };
        for (k, val) in obj {
            if matches!(k.as_str(), "t" | "cat" | "name" | "id") {
                continue;
            }
            doc.args.push((
                k.clone(),
                val.as_i64()
                    .ok_or_else(|| expected("integer arg", "trace event"))?,
            ));
        }
        Ok(doc)
    }

    /// Render as one JSON object in the writer's layout. Args print in
    /// stored order (sorted by key after a parse — the reader's object
    /// keys are sorted, which is fine for comparisons).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"t\":{},\"cat\":\"{}\",\"name\":\"{}\",\"id\":{}",
            self.at_micros, self.cat, self.name, self.id
        ));
        for (k, v) in &self.args {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{buckets, Registry};
    use crate::{span, Profiler, TimeSource};

    #[test]
    fn metrics_line_round_trips_byte_identically() {
        let reg = Registry::new(TimeSource::manual());
        reg.counter("core.inputs.tick").add(5);
        reg.counter_with("net.bytes_in", "peer0").add(88);
        reg.gauge("sim.live_peers").set(4);
        let h = reg.histogram("core.choke_round_us", buckets::LATENCY_US);
        h.observe(5);
        h.observe(5);
        h.observe(60);
        reg.time().advance_to(1000);
        let line = reg.snapshot().to_jsonl_line();
        let doc = MetricsDoc::parse_line(&line).unwrap();
        assert_eq!(doc.to_json(), line);
        assert_eq!(doc.counters["net.bytes_in{peer0}"], 88);
        assert_eq!(doc.gauges["sim.live_peers"], 4);
        assert_eq!(doc.histograms["core.choke_round_us"].count, 3);
    }

    #[test]
    fn metrics_merge_sums_and_recomputes_fleet_quantiles() {
        // 90 fast observations in one run, 10 slow in another: the
        // merged p95 must land in the slow bucket, like a single
        // histogram that saw all 100.
        let mk = |bound: u64, n: u64| MetricsDoc {
            at_micros: bound,
            counters: [("c".to_string(), n)].into_iter().collect(),
            gauges: [("g".to_string(), n as i64)].into_iter().collect(),
            histograms: [(
                "h".to_string(),
                HistogramDoc {
                    count: n,
                    sum: bound * n,
                    buckets: vec![(bound, n)],
                    overflow: 0,
                },
            )]
            .into_iter()
            .collect(),
        };
        let a = mk(10, 90);
        let b = mk(100_000, 10);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counters["c"], 100);
        assert_eq!(ab.gauges["g"], 100);
        let h = &ab.histograms["h"];
        assert_eq!(h.count, 100);
        assert_eq!(h.quantile(50, 100), 10);
        assert_eq!(h.quantile(95, 100), 100_000);
    }

    #[test]
    fn profile_round_trips_and_exports_collapsed_stacks() {
        let prof = Profiler::new(TimeSource::manual());
        let t = prof.time().unwrap().clone();
        {
            span!(prof, "outer");
            t.advance_to(100);
            {
                span!(prof, "inner");
                t.advance_to(130);
            }
            t.advance_to(135);
        }
        let json = prof.snapshot().to_json();
        let doc = ProfileDoc::parse(&json).unwrap();
        assert_eq!(doc.to_json(), json);
        let collapsed = doc.to_collapsed();
        assert_eq!(collapsed, "outer 105\nouter;inner 30\n");
    }

    #[test]
    fn profile_merge_matches_live_merge() {
        let mk = |us: u64| {
            let prof = Profiler::new(TimeSource::manual());
            let t = prof.time().unwrap().clone();
            {
                span!(prof, "op");
                t.advance_to(us);
            }
            prof.snapshot()
        };
        let (a, b) = (mk(5), mk(50_000));
        let mut live = a.clone();
        live.merge(&b);
        let mut doc = ProfileDoc::parse(&a.to_json()).unwrap();
        doc.merge(&ProfileDoc::parse(&b.to_json()).unwrap());
        assert_eq!(doc.to_json(), live.to_json());
    }

    #[test]
    fn series_round_trips_byte_identically() {
        let reg = Registry::new(TimeSource::manual());
        let store = crate::SeriesStore::with_capacity(&reg, 8);
        store.record_at("live.entropy", 5, 0.75);
        store.record_at("sim.live_peers", 5, 4.0);
        store.record_at("sim.live_peers", 10, 7.0);
        let json = store.to_json(None);
        let doc = SeriesDoc::parse(&json).unwrap();
        assert_eq!(doc.to_json(), json);
        assert_eq!(doc.series["live.entropy"].last_value(), Some(0.75));
        assert_eq!(doc.series["sim.live_peers"].points.len(), 2);
    }

    #[test]
    fn trace_event_round_trips() {
        let ev = crate::TraceEvent {
            at_micros: 1000,
            cat: crate::TraceCat::Piece,
            name: "injected",
            id: 3,
            args: vec![("by", 0), ("to", -1)],
        };
        let line = ev.to_json();
        let doc = TraceEventDoc::parse_line(&line).unwrap();
        assert_eq!(doc.at_micros, 1000);
        assert_eq!(doc.cat, "piece");
        assert_eq!(doc.name, "injected");
        assert_eq!(doc.id, 3);
        assert_eq!(
            doc.args,
            vec![("by".to_string(), 0), ("to".to_string(), -1)]
        );
        // Args re-sort under the reader's object model; a reparse is
        // identity even when the byte layout moved.
        assert_eq!(TraceEventDoc::parse_line(&doc.to_json()).unwrap(), doc);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(MetricsDoc::parse_line("not json").is_err());
        assert!(ProfileDoc::parse("{\"nope\":1}").is_err());
        assert!(SeriesDoc::parse("{}").is_err());
    }

    #[test]
    fn reader_keeps_u64_precision() {
        let v = parse_json("{\"t\":12345678901234567890}").unwrap();
        assert_eq!(
            v.get("t").and_then(JsonValue::as_u64),
            Some(12345678901234567890)
        );
    }
}
