//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()`
//! returns the guard directly (no `Result`), and a lock poisoned by a
//! panicking holder is recovered rather than propagated — parking_lot
//! has no poisoning, so neither do we.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire without blocking; `None` if held elsewhere.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
