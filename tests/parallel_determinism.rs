//! The parallel sweep runner is a pure scheduling change: for any worker
//! count, `run_table1_parallel` must return outcomes that are
//! byte-identical to the sequential `run_table1`, in Table I order.
//!
//! Every scenario seeds its RNGs from `(cfg.seed, spec.id)` alone, so
//! worker count, work-stealing order, and completion order must not be
//! observable in the results. This test is the contract CI enforces.

use bt_repro::sim::Swarm;
use bt_repro::torrents::{run_table1, run_table1_parallel, RunConfig, ScenarioOutcome};

fn assert_outcomes_identical(seq: &[ScenarioOutcome], par: &[ScenarioOutcome], jobs: usize) {
    assert_eq!(seq.len(), par.len(), "jobs={jobs}: sweep length changed");
    for (s, p) in seq.iter().zip(par) {
        assert_eq!(
            s.spec.id, p.spec.id,
            "jobs={jobs}: outcomes not in Table I order"
        );
        let id = s.spec.id;
        assert_eq!(
            s.scaled, p.scaled,
            "jobs={jobs} torrent {id}: scaling differs"
        );
        assert_eq!(
            s.trace, p.trace,
            "jobs={jobs} torrent {id}: trace differs from sequential"
        );
        assert_eq!(
            s.result.events_processed, p.result.events_processed,
            "jobs={jobs} torrent {id}: event count differs"
        );
        assert_eq!(
            s.result.completion, p.result.completion,
            "jobs={jobs} torrent {id}: completion times differ"
        );
        assert_eq!(
            s.result.completed_peers, p.result.completed_peers,
            "jobs={jobs} torrent {id}: completed peer count differs"
        );
        assert_eq!(
            (s.result.tracker_started, s.result.tracker_completed),
            (p.result.tracker_started, p.result.tracker_completed),
            "jobs={jobs} torrent {id}: tracker stats differ"
        );
    }
}

#[test]
fn parallel_sweep_matches_sequential_for_any_job_count() {
    let cfg = RunConfig::quick();
    let sequential = run_table1(&cfg, |_| {});
    let expected_ids: Vec<u32> = bt_repro::torrents::table1().iter().map(|s| s.id).collect();
    assert_eq!(
        sequential.iter().map(|o| o.spec.id).collect::<Vec<_>>(),
        expected_ids,
        "sequential sweep must itself be in Table I order"
    );
    for jobs in [1, 2, 8] {
        let reported = std::sync::Mutex::new(Vec::new());
        let parallel = run_table1_parallel(&cfg, jobs, |o| {
            reported.lock().unwrap().push(o.spec.id);
        });
        assert_outcomes_identical(&sequential, &parallel, jobs);
        // Progress fires once per torrent (in completion order, so compare
        // as sets).
        let mut reported = reported.into_inner().unwrap();
        reported.sort_unstable();
        assert_eq!(reported, expected_ids, "jobs={jobs}: progress reports");
    }
}

/// The mega-swarm analogue of the sweep contract: a swarm's digest is a
/// pure function of its spec. Running the 10k-peer flash crowd on the
/// main thread ("--jobs 1") and again inside an 8-worker pool alongside
/// sibling swarms ("--jobs 8") must produce bit-identical digests — no
/// thread identity, scheduling, or co-resident swarm may leak into a
/// run. This is the determinism the mega golden fingerprint relies on.
#[test]
fn mega_swarm_digest_is_repeat_and_thread_invariant() {
    use bt_repro::torrents::scenarios::mega_flash_crowd;
    use bt_repro::torrents::PresetOptions;
    use bt_repro::wire::time::Duration;

    let spec_for = |peers: usize, seed: u64| {
        let opts = PresetOptions {
            seed,
            pieces: 8,
            duration: Duration::from_secs(900),
            ..Default::default()
        };
        mega_flash_crowd(peers, &opts)
    };
    // (peers, seed): the golden 10k swarm plus two 1k siblings with
    // different seeds so pool workers run genuinely different swarms.
    let fleet = [(10_000usize, 42u64), (1_000, 43), (1_000, 44)];

    // jobs=1: each swarm sequentially on this thread.
    let sequential: Vec<u64> = fleet
        .iter()
        .map(|&(peers, seed)| Swarm::new(spec_for(peers, seed)).run().digest())
        .collect();

    // jobs=8: the same fleet through a worker pool (more workers than
    // swarms, so spawn order and work stealing are exercised).
    let pooled: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .map(|&(peers, seed)| {
                scope.spawn(move || Swarm::new(spec_for(peers, seed)).run().digest())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        sequential, pooled,
        "mega-swarm digests differ between sequential and pooled execution"
    );
    assert_ne!(
        sequential[1], sequential[2],
        "different seeds must produce different digests (digest is not degenerate)"
    );
}
