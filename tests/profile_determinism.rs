//! Span profiling must be a free observer, like metrics: attaching a
//! profiler to a simulated swarm changes nothing about the run, and the
//! profile it yields is a pure function of the spec and seed.
//!
//! Two contracts, both enforced by CI:
//!
//! 1. **Profile determinism** — the merged profile JSON for a sweep is
//!    byte-identical whether it runs on 1 or 8 workers. Each scenario
//!    profiles against its own manual clock (advanced in lock-step with
//!    the event queue), and per-scenario profiles merge commutatively
//!    in spec order, so worker count and scheduling cannot leak in.
//! 2. **Non-perturbation** — traces with profiling on equal traces
//!    with profiling off, so the PR 1 golden fingerprints are
//!    untouched by span instrumentation.

use bt_repro::obs::Profile;
use bt_repro::torrents::{run_scenarios_parallel, torrent, RunConfig, ScenarioOutcome};

fn merged_profile_json(outcomes: &[ScenarioOutcome]) -> String {
    let mut merged = Profile::default();
    for o in outcomes {
        merged.merge(o.profile.as_ref().expect("profiling was requested"));
    }
    merged.to_json()
}

#[test]
fn merged_profile_json_is_byte_identical_across_job_counts() {
    let cfg = RunConfig {
        profile: true,
        ..RunConfig::quick()
    };
    let specs = [torrent(2), torrent(19), torrent(3)];
    let sequential = run_scenarios_parallel(&cfg, &specs, 1, |_| {});
    let parallel = run_scenarios_parallel(&cfg, &specs, 8, |_| {});
    for o in &sequential {
        let profile = o.profile.as_ref().unwrap();
        assert!(!profile.is_empty(), "torrent {}: empty profile", o.spec.id);
        assert_eq!(
            profile.get(&["sim.event_pop"]).unwrap().count,
            o.result.events_processed,
            "torrent {}: one event_pop span per processed event",
            o.spec.id
        );
    }
    // Per-scenario profiles are identical run to run ...
    for (seq, par) in sequential.iter().zip(&parallel) {
        assert_eq!(
            seq.profile.as_ref().unwrap().to_json(),
            par.profile.as_ref().unwrap().to_json(),
            "torrent {}: profile differs across job counts",
            seq.spec.id
        );
    }
    // ... and so is the spec-order merge `swarmrun --table1 --profile`
    // writes.
    assert_eq!(
        merged_profile_json(&sequential),
        merged_profile_json(&parallel),
        "merged profile differs across job counts"
    );
}

#[test]
fn profiling_does_not_perturb_traces() {
    let bare_cfg = RunConfig::quick();
    let prof_cfg = RunConfig {
        profile: true,
        ..RunConfig::quick()
    };
    let specs = [torrent(2), torrent(3)];
    let bare = run_scenarios_parallel(&bare_cfg, &specs, 2, |_| {});
    let profiled = run_scenarios_parallel(&prof_cfg, &specs, 2, |_| {});
    for (b, p) in bare.iter().zip(&profiled) {
        assert_eq!(
            b.trace.events, p.trace.events,
            "torrent {}: profiling changed the trace",
            b.spec.id
        );
        assert_eq!(b.result.completion, p.result.completion);
        assert_eq!(b.result.events_processed, p.result.events_processed);
    }
}

#[test]
fn profile_call_tree_nests_engine_spans_under_driver_spans() {
    let cfg = RunConfig {
        profile: true,
        ..RunConfig::quick()
    };
    let outcome = bt_repro::torrents::run_scenario(&torrent(2), &cfg);
    let profile = outcome.profile.as_ref().unwrap();
    for path in [
        &["sim.event", "core.handle.message"][..],
        &["sim.event", "core.handle.tick", "core.choke_round"][..],
        &["sim.event", "core.handle.message", "core.piece_pick"][..],
    ] {
        assert!(
            profile.get(path).is_some_and(|s| s.count > 0),
            "expected span path {path:?} in the profile"
        );
    }
}
