//! Message-level statistics.
//!
//! §III-C: the instrumentation logs "each BitTorrent message sent or
//! received". This module tallies those logs per message kind and
//! direction and estimates the control-plane overhead — how many bytes
//! of choke/unchoke/interest/have/request chatter the protocol spends
//! per byte of piece data, a figure of merit for "simple algorithms are
//! enough" arguments.

use bt_instrument::trace::{Trace, TraceEvent};
use bt_wire::message::MessageKind;
use bt_wire::metainfo::BLOCK_LEN;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counts for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCount {
    /// Messages sent by the local peer.
    pub sent: u64,
    /// Messages received by the local peer.
    pub received: u64,
}

/// Message statistics of one instrumented session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Per-kind tallies (sorted by kind name for stable rendering).
    pub counts: BTreeMap<String, KindCount>,
    /// Estimated control-plane bytes (everything but piece payloads).
    pub control_bytes: u64,
    /// Data-plane bytes (piece payloads, both directions).
    pub data_bytes: u64,
}

/// Fixed wire size of a message kind (length prefix included), excluding
/// the variable-size kinds handled separately.
fn fixed_wire_len(kind: MessageKind) -> Option<u64> {
    Some(match kind {
        MessageKind::KeepAlive => 4,
        MessageKind::Choke
        | MessageKind::Unchoke
        | MessageKind::Interested
        | MessageKind::NotInterested
        | MessageKind::HaveAll
        | MessageKind::HaveNone => 5,
        MessageKind::Have | MessageKind::Suggest | MessageKind::AllowedFast => 9,
        MessageKind::Request | MessageKind::Cancel | MessageKind::RejectRequest => 17,
        MessageKind::Port => 7,
        // Extended frames carry variable bencoded payloads; tally them at
        // a representative 64-byte size (handshake + small pex deltas).
        MessageKind::Extended => 70,
        MessageKind::Bitfield | MessageKind::Piece => return None,
    })
}

impl MessageStats {
    /// Tally a trace. `num_pieces` sizes the variable-length bitfield
    /// messages.
    pub fn from_trace(trace: &Trace) -> MessageStats {
        let bitfield_len = 5 + u64::from(trace.meta.num_pieces.div_ceil(8));
        let mut counts: BTreeMap<String, KindCount> = BTreeMap::new();
        let mut control_bytes = 0u64;
        let mut data_bytes = 0u64;
        for (_, ev) in trace.iter() {
            match ev {
                TraceEvent::Message { kind, sent, .. } => {
                    let entry = counts.entry(format!("{kind:?}")).or_default();
                    if *sent {
                        entry.sent += 1;
                    } else {
                        entry.received += 1;
                    }
                    match kind {
                        MessageKind::Bitfield => control_bytes += bitfield_len,
                        MessageKind::Piece => {
                            // Header only; payload counted via Block events.
                            control_bytes += 13;
                        }
                        k => control_bytes += fixed_wire_len(*k).unwrap_or(0),
                    }
                }
                TraceEvent::BlockReceived { block, .. } | TraceEvent::BlockSent { block, .. } => {
                    data_bytes += u64::from(block.length);
                }
                _ => {}
            }
        }
        MessageStats {
            counts,
            control_bytes,
            data_bytes,
        }
    }

    /// Control bytes per data byte (lower = leaner protocol).
    pub fn overhead_ratio(&self) -> f64 {
        if self.data_bytes == 0 {
            return f64::NAN;
        }
        self.control_bytes as f64 / self.data_bytes as f64
    }

    /// Total messages of a kind, both directions.
    pub fn total(&self, kind: MessageKind) -> u64 {
        self.counts
            .get(&format!("{kind:?}"))
            .map_or(0, |c| c.sent + c.received)
    }

    /// Sanity relation: every received piece payload implies a request
    /// was sent at some point (requests ≥ accepted blocks can be violated
    /// only by end-game cancels racing, so we expose both sides).
    pub fn requests_sent(&self) -> u64 {
        self.counts.get("Request").map_or(0, |c| c.sent)
    }
}

/// A block's typical wire size: 16 kB payload plus the 13-byte header.
pub const BLOCK_WIRE_LEN: u64 = BLOCK_LEN as u64 + 13;

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::TraceMeta;
    use bt_wire::message::BlockRef;
    use bt_wire::time::Instant;

    fn meta() -> TraceMeta {
        TraceMeta {
            torrent: "m".into(),
            torrent_id: 1,
            num_pieces: 16,
            num_blocks: 256,
            initial_seeds: 1,
            initial_leechers: 4,
            session_end: Instant::from_secs(100),
            seed_at: None,
        }
    }

    fn msg(tr: &mut Trace, t: u64, kind: MessageKind, sent: bool) {
        tr.push(
            Instant::from_secs(t),
            TraceEvent::Message {
                peer: 0,
                kind,
                sent,
            },
        );
    }

    #[test]
    fn tallies_directions() {
        let mut tr = Trace::new(meta());
        msg(&mut tr, 1, MessageKind::Interested, true);
        msg(&mut tr, 2, MessageKind::Unchoke, false);
        msg(&mut tr, 3, MessageKind::Request, true);
        msg(&mut tr, 4, MessageKind::Request, true);
        let s = MessageStats::from_trace(&tr);
        assert_eq!(s.requests_sent(), 2);
        assert_eq!(s.total(MessageKind::Interested), 1);
        assert_eq!(s.total(MessageKind::Unchoke), 1);
        // 5 + 5 + 17 + 17 control bytes.
        assert_eq!(s.control_bytes, 44);
    }

    #[test]
    fn overhead_ratio_uses_block_bytes() {
        let mut tr = Trace::new(meta());
        msg(&mut tr, 1, MessageKind::Request, true);
        tr.push(
            Instant::from_secs(2),
            TraceEvent::BlockReceived {
                peer: 0,
                block: BlockRef {
                    piece: 0,
                    offset: 0,
                    length: BLOCK_LEN,
                },
            },
        );
        let s = MessageStats::from_trace(&tr);
        assert_eq!(s.data_bytes, u64::from(BLOCK_LEN));
        assert!((s.overhead_ratio() - 17.0 / f64::from(BLOCK_LEN)).abs() < 1e-12);
    }

    #[test]
    fn bitfield_sized_by_piece_count() {
        let mut tr = Trace::new(meta()); // 16 pieces → 2 bytes + 5 header
        msg(&mut tr, 1, MessageKind::Bitfield, false);
        let s = MessageStats::from_trace(&tr);
        assert_eq!(s.control_bytes, 7);
    }

    #[test]
    fn empty_trace_overhead_is_nan() {
        let s = MessageStats::from_trace(&Trace::new(meta()));
        assert!(s.overhead_ratio().is_nan());
        assert_eq!(s.total(MessageKind::Have), 0);
    }
}
