//! Torrent metainfo (`.torrent` files).
//!
//! A metainfo file is a bencoded dictionary carrying the tracker URL and an
//! `info` dictionary with the content name, piece length, concatenated
//! SHA-1 piece hashes and total length. The SHA-1 of the canonically
//! encoded `info` dictionary is the *info-hash* identifying the torrent.
//!
//! The paper's torrents use 256 kB pieces by default ("the file is split in
//! pieces of typically 256 kB, and each piece is split in blocks of
//! 16 kB" — §II-B); both values are configurable here.

use crate::bencode::{self, DictBuilder, Value};
use crate::sha1::{self, Digest};

/// Default piece size used by the paper's torrents (256 kB).
pub const DEFAULT_PIECE_LEN: u32 = 256 * 1024;

/// BitTorrent's transmission unit: blocks of 16 kB (2^14, §III-C).
pub const BLOCK_LEN: u32 = 16 * 1024;

/// Errors when parsing a metainfo file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetainfoError {
    /// The outer bencoding was invalid.
    Bencode(bencode::BencodeError),
    /// A required key was absent or of the wrong type.
    MissingField(&'static str),
    /// `pieces` was not a multiple of 20 bytes.
    BadPiecesLength(usize),
    /// Zero piece length, zero pieces, or inconsistent length/piece count.
    InvalidGeometry(String),
}

impl std::fmt::Display for MetainfoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetainfoError::Bencode(e) => write!(f, "bencode error: {e}"),
            MetainfoError::MissingField(k) => write!(f, "missing or mistyped field `{k}`"),
            MetainfoError::BadPiecesLength(n) => {
                write!(f, "`pieces` length {n} is not a multiple of 20")
            }
            MetainfoError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
        }
    }
}

impl std::error::Error for MetainfoError {}

impl From<bencode::BencodeError> for MetainfoError {
    fn from(e: bencode::BencodeError) -> Self {
        MetainfoError::Bencode(e)
    }
}

/// Parsed torrent metainfo.
///
/// ```
/// use bt_wire::metainfo::{Metainfo, SyntheticContent};
/// let c = SyntheticContent::generate("demo", 1, 4 * 256 * 1024, 256 * 1024);
/// let encoded = c.metainfo.encode();           // a real .torrent file
/// let parsed = Metainfo::parse(&encoded).unwrap();
/// assert_eq!(parsed.num_pieces(), 4);
/// assert_eq!(parsed.info_hash, c.metainfo.info_hash);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metainfo {
    /// Tracker announce URL.
    pub announce: String,
    /// Content name.
    pub name: String,
    /// Bytes per piece (except possibly the last).
    pub piece_len: u32,
    /// Total content length in bytes.
    pub total_len: u64,
    /// SHA-1 digest of each piece, in order.
    pub piece_hashes: Vec<Digest>,
    /// SHA-1 of the canonical `info` dictionary.
    pub info_hash: Digest,
}

impl Metainfo {
    /// Number of pieces.
    pub fn num_pieces(&self) -> u32 {
        self.piece_hashes.len() as u32
    }

    /// Length in bytes of piece `index` (the final piece may be short).
    pub fn piece_size(&self, index: u32) -> u32 {
        debug_assert!(index < self.num_pieces());
        if index + 1 == self.num_pieces() {
            let rem = self.total_len - u64::from(self.piece_len) * u64::from(index);
            rem as u32
        } else {
            self.piece_len
        }
    }

    /// Number of 16 kB blocks in piece `index` (last block may be short).
    pub fn blocks_in_piece(&self, index: u32) -> u32 {
        self.piece_size(index).div_ceil(BLOCK_LEN)
    }

    /// Length of block `block` within piece `index`.
    pub fn block_size(&self, index: u32, block: u32) -> u32 {
        let piece = self.piece_size(index);
        debug_assert!(block < self.blocks_in_piece(index));
        if (block + 1) * BLOCK_LEN <= piece {
            BLOCK_LEN
        } else {
            piece - block * BLOCK_LEN
        }
    }

    /// Build the canonical bencoded `.torrent` file contents.
    pub fn encode(&self) -> Vec<u8> {
        let mut pieces = Vec::with_capacity(self.piece_hashes.len() * 20);
        for h in &self.piece_hashes {
            pieces.extend_from_slice(h);
        }
        let info = DictBuilder::new()
            .int("length", self.total_len as i64)
            .str("name", &self.name)
            .int("piece length", i64::from(self.piece_len))
            .bytes("pieces", pieces)
            .build();
        DictBuilder::new()
            .str("announce", &self.announce)
            .insert("info", info)
            .build()
            .encode()
    }

    /// Parse a bencoded `.torrent` file.
    pub fn parse(data: &[u8]) -> Result<Metainfo, MetainfoError> {
        let root = bencode::decode(data)?;
        let announce = root
            .get("announce")
            .and_then(Value::as_str)
            .ok_or(MetainfoError::MissingField("announce"))?
            .to_owned();
        let info = root
            .get("info")
            .ok_or(MetainfoError::MissingField("info"))?;
        let name = info
            .get("name")
            .and_then(Value::as_str)
            .ok_or(MetainfoError::MissingField("name"))?
            .to_owned();
        let piece_len = info
            .get("piece length")
            .and_then(Value::as_int)
            .filter(|v| *v > 0 && *v <= i64::from(u32::MAX))
            .ok_or(MetainfoError::MissingField("piece length"))? as u32;
        let total_len = info
            .get("length")
            .and_then(Value::as_int)
            .filter(|v| *v > 0)
            .ok_or(MetainfoError::MissingField("length"))? as u64;
        let pieces_raw = info
            .get("pieces")
            .and_then(Value::as_bytes)
            .ok_or(MetainfoError::MissingField("pieces"))?;
        if pieces_raw.len() % 20 != 0 || pieces_raw.is_empty() {
            return Err(MetainfoError::BadPiecesLength(pieces_raw.len()));
        }
        let piece_hashes: Vec<Digest> = pieces_raw
            .chunks_exact(20)
            .map(|c| {
                let mut d = [0u8; 20];
                d.copy_from_slice(c);
                d
            })
            .collect();
        let expected = total_len.div_ceil(u64::from(piece_len));
        if expected != piece_hashes.len() as u64 {
            return Err(MetainfoError::InvalidGeometry(format!(
                "length {total_len} / piece {piece_len} needs {expected} hashes, got {}",
                piece_hashes.len()
            )));
        }
        let info_hash = sha1::sha1(&info.encode());
        Ok(Metainfo {
            announce,
            name,
            piece_len,
            total_len,
            piece_hashes,
            info_hash,
        })
    }
}

/// Generate deterministic synthetic content and its metainfo.
///
/// The byte at offset `i` of torrent `seed` is a cheap keyed mix, so two
/// torrents with different seeds have unrelated content, and piece hashing
/// (and hash *failure* injection) exercises the real verification path.
pub struct SyntheticContent {
    /// Generated metainfo.
    pub metainfo: Metainfo,
    seed: u64,
}

impl SyntheticContent {
    /// Build content of `total_len` bytes in `piece_len`-byte pieces.
    ///
    /// # Panics
    /// Panics if `total_len == 0` or `piece_len == 0`.
    pub fn generate(name: &str, seed: u64, total_len: u64, piece_len: u32) -> SyntheticContent {
        assert!(total_len > 0, "content must be non-empty");
        assert!(piece_len > 0, "piece length must be non-zero");
        let num_pieces = total_len.div_ceil(u64::from(piece_len));
        let mut piece_hashes = Vec::with_capacity(num_pieces as usize);
        let mut buf = Vec::with_capacity(piece_len as usize);
        for p in 0..num_pieces {
            let start = p * u64::from(piece_len);
            let end = (start + u64::from(piece_len)).min(total_len);
            buf.clear();
            for off in start..end {
                buf.push(content_byte(seed, off));
            }
            piece_hashes.push(sha1::sha1(&buf));
        }
        let metainfo = Metainfo {
            announce: format!("sim://tracker/{name}"),
            name: name.to_owned(),
            piece_len,
            total_len,
            piece_hashes,
            info_hash: [0u8; 20],
        };
        // Fill in the real info-hash by round-tripping the canonical form.
        let encoded = metainfo.encode();
        let parsed = Metainfo::parse(&encoded).expect("self-generated metainfo parses");
        SyntheticContent {
            metainfo: parsed,
            seed,
        }
    }

    /// Materialise the bytes of one block (for wire-level transfers).
    pub fn block_bytes(&self, piece: u32, block: u32) -> Vec<u8> {
        let len = self.metainfo.block_size(piece, block);
        let start =
            u64::from(piece) * u64::from(self.metainfo.piece_len) + u64::from(block * BLOCK_LEN);
        (0..u64::from(len))
            .map(|i| content_byte(self.seed, start + i))
            .collect()
    }

    /// Materialise a whole piece.
    pub fn piece_bytes(&self, piece: u32) -> Vec<u8> {
        let len = self.metainfo.piece_size(piece);
        let start = u64::from(piece) * u64::from(self.metainfo.piece_len);
        (0..u64::from(len))
            .map(|i| content_byte(self.seed, start + i))
            .collect()
    }
}

/// splitmix64-style keyed byte generator.
fn content_byte(seed: u64, offset: u64) -> u8 {
    let mut z = seed ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticContent {
        // 5 pieces of 32 KiB plus a short 10 KiB tail piece.
        SyntheticContent::generate("t", 7, 5 * 32 * 1024 + 10 * 1024, 32 * 1024)
    }

    #[test]
    fn geometry_basics() {
        let m = &small().metainfo;
        assert_eq!(m.num_pieces(), 6);
        assert_eq!(m.piece_size(0), 32 * 1024);
        assert_eq!(m.piece_size(5), 10 * 1024);
        assert_eq!(m.blocks_in_piece(0), 2);
        assert_eq!(m.blocks_in_piece(5), 1);
        assert_eq!(m.block_size(0, 0), BLOCK_LEN);
        assert_eq!(m.block_size(5, 0), 10 * 1024);
    }

    #[test]
    fn encode_parse_roundtrip() {
        let m = small().metainfo.clone();
        let parsed = Metainfo::parse(&m.encode()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn info_hash_is_stable_and_distinguishes_content() {
        let a = SyntheticContent::generate("a", 1, 64 * 1024, 32 * 1024);
        let b = SyntheticContent::generate("a", 2, 64 * 1024, 32 * 1024);
        let a2 = SyntheticContent::generate("a", 1, 64 * 1024, 32 * 1024);
        assert_eq!(a.metainfo.info_hash, a2.metainfo.info_hash);
        assert_ne!(a.metainfo.info_hash, b.metainfo.info_hash);
    }

    #[test]
    fn piece_hashes_verify_generated_blocks() {
        let c = small();
        for p in 0..c.metainfo.num_pieces() {
            let mut assembled = Vec::new();
            for blk in 0..c.metainfo.blocks_in_piece(p) {
                assembled.extend_from_slice(&c.block_bytes(p, blk));
            }
            assert_eq!(assembled, c.piece_bytes(p));
            assert_eq!(sha1::sha1(&assembled), c.metainfo.piece_hashes[p as usize]);
        }
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let m = small().metainfo.clone();
        let mut enc = m.encode();
        // Corrupt the announce key so it is missing.
        let pos = enc.windows(8).position(|w| w == b"announce").unwrap();
        enc[pos] = b'b';
        assert!(Metainfo::parse(&enc).is_err());
    }

    #[test]
    fn parse_rejects_wrong_hash_count() {
        let mut m = small().metainfo.clone();
        m.piece_hashes.pop();
        assert!(matches!(
            Metainfo::parse(&m.encode()),
            Err(MetainfoError::InvalidGeometry(_))
        ));
    }

    #[test]
    fn paper_default_geometry() {
        // Torrent 8 of Table I has 863 pieces. Generate it at a reduced
        // piece size (32 kB instead of the real 4 MB) so the test stays
        // fast; the piece *count* and block arithmetic are what matter.
        let c = SyntheticContent::generate("t8", 8, 863 * 32 * 1024, 32 * 1024);
        assert_eq!(c.metainfo.num_pieces(), 863);
        assert_eq!(c.metainfo.blocks_in_piece(0), 2);
        // And the real defaults: a 256 kB piece holds sixteen 16 kB blocks.
        let g = SyntheticContent::generate("d", 1, u64::from(DEFAULT_PIECE_LEN), DEFAULT_PIECE_LEN);
        assert_eq!(g.metainfo.blocks_in_piece(0), 16);
    }
}
