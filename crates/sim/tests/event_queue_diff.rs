//! Differential tests: the calendar [`EventQueue`] against the
//! single-`BinaryHeap` [`HeapEventQueue`] reference.
//!
//! The simulator's determinism contract is "pop order is exactly
//! (time, seq) ascending" — the calendar queue only exists to make that
//! order cheap at mega-swarm scale. These tests drive both queues with
//! identical schedule/pop interleavings — including same-instant ties,
//! pushes landing mid-drain at the just-popped instant, peeks that
//! rotate the calendar window, and offsets that straddle the wheel's
//! overflow horizon — and require identical `(time, payload)` streams
//! and identical `now()`/`len()` evolution throughout.

use bt_sim::{EventQueue, HeapEventQueue};
use bt_wire::time::Instant;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + offset` µs. Offsets mix sub-slot values, exact
    /// slot boundaries, multi-slot gaps, and beyond-horizon jumps.
    Push(u64),
    /// Schedule `n` events at the same instant (`now + offset`).
    PushTies(u64, u8),
    /// Pop one event.
    Pop,
    /// Pop one event, then immediately schedule at the popped instant —
    /// the push-during-pop case that must still fire before anything
    /// later.
    PopThenPushAtNow,
    /// Peek (may rotate the calendar window; must not perturb order).
    Peek,
}

fn arb_offset() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..2_000,                     // within a slot or two
        2 => 1_020u64..1_030,                 // straddling a slot boundary
        2 => 100_000u64..4_000_000,           // deep into the wheel
        1 => 4_194_304u64..20_000_000,        // past the 4 s overflow horizon
        1 => Just(0u64),                      // exactly now
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => arb_offset().prop_map(Op::Push),
        2 => (arb_offset(), 2u8..6).prop_map(|(o, n)| Op::PushTies(o, n)),
        4 => Just(Op::Pop),
        1 => Just(Op::PopThenPushAtNow),
        1 => Just(Op::Peek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any interleaving of schedules, pops, peeks and same-instant
    /// re-schedules produces identical pop streams from both queues.
    #[test]
    fn calendar_matches_heap(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut next_id: u32 = 0;

        for op in ops {
            match op {
                Op::Push(off) => {
                    let at = Instant(cal.now().0 + off);
                    cal.schedule(at, next_id);
                    heap.schedule(at, next_id);
                    next_id += 1;
                }
                Op::PushTies(off, n) => {
                    let at = Instant(cal.now().0 + off);
                    for _ in 0..n {
                        cal.schedule(at, next_id);
                        heap.schedule(at, next_id);
                        next_id += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
                Op::PopThenPushAtNow => {
                    let popped = cal.pop();
                    prop_assert_eq!(popped, heap.pop());
                    if popped.is_some() {
                        // Same instant as the event just delivered: must
                        // sort after it (higher seq) but before anything
                        // at a later time.
                        let at = cal.now();
                        cal.schedule(at, next_id);
                        heap.schedule(at, next_id);
                        next_id += 1;
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                }
            }
            prop_assert_eq!(cal.now(), heap.now());
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.is_empty(), heap.is_empty());
        }

        // Drain whatever is left: the full residual streams must match.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Heavy same-instant contention: many events at few distinct times
    /// pop in exact insertion (seq) order from both queues.
    #[test]
    fn tie_storms_stay_fifo(
        times in proptest::collection::vec(0u64..5_000_000, 1..6),
        per_time in 1usize..40,
    ) {
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut id = 0u32;
        // Interleave the tie groups so insertion order crosses times.
        for round in 0..per_time {
            for &t in &times {
                let _ = round;
                cal.schedule(Instant(t), id);
                heap.schedule(Instant(t), id);
                id += 1;
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
