//! Piece replication over time (figures 2–6).
//!
//! Figures 2 and 4 plot the number of copies of the least/mean/most
//! replicated piece in the local peer set over time; figures 3 and 6 the
//! size of the rarest-pieces set; figure 5 the peer-set size. All five
//! series come straight from the `AvailabilitySample` events the
//! instrumented engine records.

use bt_instrument::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// One availability sample, timestamped in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationPoint {
    /// Seconds since session start.
    pub t_secs: f64,
    /// Copies of the least replicated piece (dashed line in fig. 2/4).
    pub min: u32,
    /// Mean copies over all pieces (solid line).
    pub mean: f64,
    /// Copies of the most replicated piece (dotted line).
    pub max: u32,
    /// Rarest-pieces-set size (figures 3 and 6).
    pub rarest_set_size: u32,
    /// Peer set size (figure 5).
    pub peer_set_size: u32,
}

/// The replication time series of a trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReplicationSeries {
    /// Samples in time order.
    pub points: Vec<ReplicationPoint>,
}

impl ReplicationSeries {
    /// Extract the series from a trace.
    pub fn from_trace(trace: &Trace) -> ReplicationSeries {
        let points = trace
            .iter()
            .filter_map(|(t, ev)| match ev {
                TraceEvent::AvailabilitySample {
                    min,
                    mean,
                    max,
                    rarest_set_size,
                    peer_set_size,
                } => Some(ReplicationPoint {
                    t_secs: t.as_secs_f64(),
                    min: *min,
                    mean: *mean,
                    max: *max,
                    rarest_set_size: *rarest_set_size,
                    peer_set_size: *peer_set_size,
                }),
                _ => None,
            })
            .collect();
        ReplicationSeries { points }
    }

    /// Restrict to the local peer's leecher state (figures 2/3 are "LS").
    pub fn leecher_state(&self, trace: &Trace) -> ReplicationSeries {
        let end = trace
            .meta
            .seed_at
            .unwrap_or(trace.meta.session_end)
            .as_secs_f64();
        ReplicationSeries {
            points: self
                .points
                .iter()
                .copied()
                .filter(|p| p.t_secs <= end)
                .collect(),
        }
    }

    /// Fraction of samples with a missing piece (min = 0): the local
    /// signature of a torrent in transient state (§IV-A.2). Samples with
    /// an empty peer set are vacuous (no peers ⇒ no copies) and skipped.
    pub fn missing_piece_fraction(&self) -> f64 {
        let informative: Vec<&ReplicationPoint> =
            self.points.iter().filter(|p| p.peer_set_size > 0).collect();
        if informative.is_empty() {
            return 0.0;
        }
        let zero = informative.iter().filter(|p| p.min == 0).count();
        zero as f64 / informative.len() as f64
    }

    /// Classify the torrent as transient (some piece absent from the peer
    /// set most of the time) or steady state per §IV-A.2.
    pub fn is_transient(&self) -> bool {
        self.missing_piece_fraction() > 0.5
    }

    /// Least-squares slope of the rarest-set size over time, in
    /// pieces/second. Figure 3's key observation is a *linear decrease*
    /// (constant-rate drain by the initial seed); the harness compares
    /// this slope with the seed-capacity prediction.
    pub fn rarest_set_slope(&self) -> f64 {
        let n = self.points.len();
        if n < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.points.iter().map(|p| p.t_secs).collect();
        let ys: Vec<f64> = self
            .points
            .iter()
            .map(|p| f64::from(p.rarest_set_size))
            .collect();
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if var == 0.0 {
            0.0
        } else {
            cov / var
        }
    }

    /// Mean peer-set size over the series (figure 5 summary).
    pub fn mean_peer_set(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| f64::from(p.peer_set_size))
            .sum::<f64>()
            / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::TraceMeta;
    use bt_wire::time::Instant;

    fn trace_with_samples(
        samples: &[(u64, u32, f64, u32, u32, u32)],
        seed_at: Option<u64>,
    ) -> Trace {
        let meta = TraceMeta {
            torrent: "r".into(),
            torrent_id: 8,
            num_pieces: 100,
            num_blocks: 1600,
            initial_seeds: 1,
            initial_leechers: 861,
            session_end: Instant::from_secs(10_000),
            seed_at: seed_at.map(Instant::from_secs),
        };
        let mut tr = Trace::new(meta);
        for &(t, min, mean, max, rarest, ps) in samples {
            tr.push(
                Instant::from_secs(t),
                TraceEvent::AvailabilitySample {
                    min,
                    mean,
                    max,
                    rarest_set_size: rarest,
                    peer_set_size: ps,
                },
            );
        }
        tr
    }

    #[test]
    fn extracts_points() {
        let tr = trace_with_samples(&[(10, 0, 5.0, 80, 300, 80), (20, 1, 6.0, 80, 10, 79)], None);
        let s = ReplicationSeries::from_trace(&tr);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].rarest_set_size, 300);
        assert_eq!(s.points[1].min, 1);
    }

    #[test]
    fn transient_classification() {
        // min stays 0 → transient (torrent 8's signature).
        let tr = trace_with_samples(&[(10, 0, 1.0, 5, 300, 40), (20, 0, 2.0, 9, 250, 40)], None);
        let s = ReplicationSeries::from_trace(&tr);
        assert!(s.is_transient());
        assert_eq!(s.missing_piece_fraction(), 1.0);
        // min ≥ 1 → steady (torrent 7's signature).
        let tr = trace_with_samples(&[(10, 1, 10.0, 80, 5, 80), (20, 2, 11.0, 80, 3, 80)], None);
        assert!(!ReplicationSeries::from_trace(&tr).is_transient());
    }

    #[test]
    fn rarest_slope_is_linear_drain() {
        // 300 rarest pieces draining at 1 piece per 10 s.
        let samples: Vec<(u64, u32, f64, u32, u32, u32)> = (0..100)
            .map(|i| (i * 10, 0, 1.0, 5, (300 - i) as u32, 40))
            .collect();
        let s = ReplicationSeries::from_trace(&trace_with_samples(&samples, None));
        assert!(
            (s.rarest_set_slope() + 0.1).abs() < 1e-9,
            "slope {}",
            s.rarest_set_slope()
        );
    }

    #[test]
    fn leecher_state_cuts_at_seed_time() {
        let tr = trace_with_samples(
            &[
                (10, 1, 1.0, 2, 1, 10),
                (100, 1, 1.0, 2, 1, 10),
                (500, 1, 1.0, 2, 1, 10),
            ],
            Some(200),
        );
        let s = ReplicationSeries::from_trace(&tr);
        assert_eq!(s.leecher_state(&tr).points.len(), 2);
    }

    #[test]
    fn mean_peer_set() {
        let tr = trace_with_samples(&[(1, 0, 0.0, 0, 0, 60), (2, 0, 0.0, 0, 0, 80)], None);
        let s = ReplicationSeries::from_trace(&tr);
        assert!((s.mean_peer_set() - 70.0).abs() < 1e-12);
    }
}
