//! A tiny non-blocking multi-route observability HTTP listener.
//!
//! [`ObsServer`] generalizes the original `/metrics`-only listener into
//! the swarm-health observatory's front door, still deliberately
//! minimal and dependency-free in the style of the [`crate::runtime`]
//! poll loop: a non-blocking `TcpListener` plus an
//! [`ObsServer::poll`] pass the caller pumps from any thread. Routes:
//!
//! * `GET /metrics` — Prometheus text exposition of a
//!   [`bt_obs::Registry`] snapshot (unchanged from the old server);
//! * `GET /series` (optionally `?name=<prefix>`) — JSON export of an
//!   attached [`bt_obs::SeriesStore`];
//! * `GET /health` — the latest monitor verdicts, as JSON provided by
//!   an attached callback (normally
//!   `bt_analysis::live::HealthReport::to_json`);
//! * `GET /trace` — Chrome trace-event JSON of an attached causal
//!   [`bt_obs::Tracer`] (open in Perfetto / `chrome://tracing`);
//! * `GET /flightrec` — trigger an attached [`bt_obs::FlightRecorder`]
//!   dump and return the bundle JSON;
//! * `GET /profile` — JSON call-tree snapshot of an attached
//!   [`bt_obs::Profiler`] (the same document `--profile` writes);
//! * `GET /` — a self-contained HTML/JS dashboard that polls `/series`
//!   and `/health` and renders live sparklines.
//!
//! Snapshots are rendered lazily: a poll pass touches the registry only
//! when some connection has a complete request head to answer, so an
//! idle listener costs nothing per pass. One response per connection
//! (`Connection: close`); unparsable requests get a JSON 400, unknown
//! paths a JSON 404 listing the routes, and connections that dawdle
//! past the read deadline are dropped.

use bt_obs::{to_prometheus, DumpContext, FlightRecorder, Profiler, Registry, SeriesStore, Tracer};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most bytes of request head we buffer before answering 400.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// One accepted connection working through request → response.
struct HttpConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    written: usize,
    responding: bool,
    deadline: Instant,
}

type HealthJson = Arc<dyn Fn() -> String + Send + Sync>;

/// The observability listener; see the [module docs](self).
pub struct ObsServer {
    listener: TcpListener,
    registry: Registry,
    series: Option<SeriesStore>,
    health_json: Option<HealthJson>,
    tracer: Option<Tracer>,
    flight: Option<FlightRecorder>,
    profiler: Option<Profiler>,
    conns: Vec<HttpConn>,
    read_deadline: Duration,
    max_write_per_pass: usize,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9090"`, port 0 for ephemeral) and
    /// serve snapshots of `registry`.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ObsServer {
            listener,
            registry,
            series: None,
            health_json: None,
            tracer: None,
            flight: None,
            profiler: None,
            conns: Vec::new(),
            read_deadline: Duration::from_secs(10),
            max_write_per_pass: usize::MAX,
        })
    }

    /// Serve `store` on `GET /series` (and feed the dashboard).
    #[must_use]
    pub fn with_series(mut self, store: SeriesStore) -> ObsServer {
        self.series = Some(store);
        self
    }

    /// Serve `f()` on `GET /health`. The callback must return a
    /// complete JSON document (e.g. a `HealthReport::to_json`).
    #[must_use]
    pub fn with_health_json<F>(mut self, f: F) -> ObsServer
    where
        F: Fn() -> String + Send + Sync + 'static,
    {
        self.health_json = Some(Arc::new(f));
        self
    }

    /// Serve `tracer`'s flushed causal events on `GET /trace` as Chrome
    /// trace-event JSON. Events still sitting in other threads'
    /// unflushed arenas are not visible until their next batch flush.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> ObsServer {
        self.tracer = Some(tracer);
        self
    }

    /// Serve `recorder` on `GET /flightrec`: each request writes a
    /// `http`-reason bundle to the recorder's directory and returns the
    /// same bundle JSON as the response body.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: FlightRecorder) -> ObsServer {
        self.flight = Some(recorder);
        self
    }

    /// Serve `profiler`'s aggregated call-tree snapshot on
    /// `GET /profile` (the same JSON document `--profile` writes).
    /// Spans still open on other threads appear once they close.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> ObsServer {
        self.profiler = Some(profiler);
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Connections currently being served (mid-request or mid-response).
    pub fn active_connections(&self) -> usize {
        self.conns.len()
    }

    /// Drop connections that haven't been answered within `d` of being
    /// accepted (default 10 s) — the slow-loris guard.
    pub fn set_read_deadline(&mut self, d: Duration) {
        self.read_deadline = d;
    }

    /// Cap response bytes written per connection per [`poll`] pass
    /// (default unlimited). Mostly a test knob for exercising
    /// partially written responses.
    pub fn set_max_write_per_pass(&mut self, n: usize) {
        self.max_write_per_pass = n.max(1);
    }

    /// One non-blocking pass: accept waiting connections, read request
    /// heads, write pending responses. Returns `true` if any byte
    /// moved. Call this from a polling thread (a few ms apart is
    /// plenty for a scrape endpoint).
    ///
    /// [`poll`]: ObsServer::poll
    pub fn poll(&mut self) -> bool {
        let mut progressed = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(HttpConn {
                            stream,
                            inbuf: Vec::with_capacity(256),
                            outbuf: Vec::new(),
                            written: 0,
                            responding: false,
                            deadline: Instant::now() + self.read_deadline,
                        });
                        progressed = true;
                    }
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let now = Instant::now();
        // Move the connection list out so routing can borrow `self`
        // (and render a registry snapshot only when a request is
        // actually ready — never once per idle pass).
        let mut conns = std::mem::take(&mut self.conns);
        let max_write = self.max_write_per_pass;
        conns.retain_mut(|c| {
            if now >= c.deadline {
                return false;
            }
            if !c.responding {
                match pump_request(c) {
                    Pump::Progress => progressed = true,
                    Pump::Idle => {}
                    Pump::Dead => return false,
                }
                if request_head_complete(&c.inbuf) {
                    c.outbuf = self.respond(&c.inbuf);
                    c.responding = true;
                }
            }
            if c.responding {
                let pass_limit = c.written.saturating_add(max_write).min(c.outbuf.len());
                loop {
                    if c.written == c.outbuf.len() {
                        // Response fully flushed; close (Connection: close).
                        return false;
                    }
                    if c.written >= pass_limit {
                        break;
                    }
                    match c.stream.write(&c.outbuf[c.written..pass_limit]) {
                        Ok(0) => return false,
                        Ok(n) => {
                            c.written += n;
                            progressed = true;
                        }
                        Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => return false,
                    }
                }
            }
            true
        });
        self.conns = conns;
        progressed
    }

    /// Route a complete request head: see the [module docs](self) for
    /// the route table.
    fn respond(&self, inbuf: &[u8]) -> Vec<u8> {
        let head = String::from_utf8_lossy(inbuf);
        let mut parts = head.lines().next().unwrap_or("").split_whitespace();
        let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if method != "GET" {
            return http_response(
                "400 Bad Request",
                "application/json",
                b"{\"error\":\"bad request\"}\n",
            );
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        match path {
            "/metrics" => {
                let body = to_prometheus(&self.registry.snapshot());
                http_response(
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    body.as_bytes(),
                )
            }
            "/series" => {
                let prefix = query_param(query, "name");
                let body = match &self.series {
                    Some(store) => store.to_json(prefix.as_deref()),
                    None => "{\"series\":[]}".to_string(),
                };
                http_response("200 OK", "application/json", body.as_bytes())
            }
            "/health" => {
                let body = match &self.health_json {
                    Some(f) => f(),
                    None => "{\"healthy\":true,\"samples\":0,\"at_micros\":0,\"monitors\":[]}"
                        .to_string(),
                };
                http_response("200 OK", "application/json", body.as_bytes())
            }
            "/trace" => {
                let body = match &self.tracer {
                    Some(t) => t.to_chrome_json(),
                    None => "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}".to_string(),
                };
                http_response("200 OK", "application/json", body.as_bytes())
            }
            "/flightrec" => match &self.flight {
                Some(fr) => {
                    let health_json = self.health_json.as_ref().map(|f| f());
                    let ctx = DumpContext {
                        registry: Some(&self.registry),
                        health_json: health_json.as_deref(),
                        explanation: None,
                        events_processed: 0,
                    };
                    let body = fr.bundle_json("http", &ctx);
                    let _ = fr.dump("http", &ctx);
                    http_response("200 OK", "application/json", body.as_bytes())
                }
                None => http_response(
                    "200 OK",
                    "application/json",
                    b"{\"error\":\"no flight recorder attached\"}\n",
                ),
            },
            "/profile" => {
                let body = match &self.profiler {
                    Some(p) => p.snapshot().to_json(),
                    None => "{\"spans\":[],\"flat\":[]}".to_string(),
                };
                http_response("200 OK", "application/json", body.as_bytes())
            }
            "/" => http_response("200 OK", "text/html; charset=utf-8", DASHBOARD.as_bytes()),
            _ => http_response(
                "404 Not Found",
                "application/json",
                b"{\"error\":\"not found\",\"routes\":[\"/\",\"/metrics\",\"/series\",\
                  \"/health\",\"/trace\",\"/flightrec\",\"/profile\"]}\n",
            ),
        }
    }
}

/// First value of `key` in an `a=b&c=d` query string (no percent
/// decoding: series names are plain `[a-z._{}]` and the dashboard never
/// encodes them).
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.to_string())
    })
}

enum Pump {
    Progress,
    Idle,
    Dead,
}

/// Read whatever request bytes are available; cap head size.
fn pump_request(c: &mut HttpConn) -> Pump {
    let mut buf = [0u8; 1024];
    let mut got = false;
    loop {
        match c.stream.read(&mut buf) {
            Ok(0) => return Pump::Dead,
            Ok(n) => {
                c.inbuf.extend_from_slice(&buf[..n]);
                got = true;
                if c.inbuf.len() > MAX_REQUEST_HEAD {
                    return Pump::Dead;
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Pump::Dead,
        }
    }
    if got {
        Pump::Progress
    } else {
        Pump::Idle
    }
}

fn request_head_complete(inbuf: &[u8]) -> bool {
    inbuf.windows(4).any(|w| w == b"\r\n\r\n")
}

fn http_response(status: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// The `GET /` dashboard: a single self-contained page (no external
/// assets, no frameworks) that polls `/series` + `/health` every two
/// seconds and draws one sparkline per series on `<canvas>`. Curated
/// prefixes (`live.`, `sim.`, `core.choke.`, `net.`) are shown first;
/// if none match, every series is shown, capped at 24 charts.
const DASHBOARD: &str = r##"<!doctype html>
<html><head><meta charset="utf-8"><title>swarm observatory</title>
<style>
 body{font:13px/1.4 monospace;background:#10141a;color:#cdd6e0;margin:16px}
 h1{font-size:16px;margin:0 0 4px}
 #health{margin:6px 0 14px;padding:6px 10px;border-radius:4px;background:#1c2430}
 #health.bad{background:#3a1d1d}
 .mon{margin-right:14px}
 .ok{color:#7fd487}.warn{color:#ff8f8f;font-weight:bold}
 #charts{display:flex;flex-wrap:wrap;gap:12px}
 .chart{background:#161c26;border-radius:4px;padding:8px}
 .chart .name{color:#8fa3bd;margin-bottom:2px;max-width:220px;
              overflow:hidden;text-overflow:ellipsis;white-space:nowrap}
 .chart .val{color:#e8eef5}
 canvas{display:block;background:#10141a;border-radius:2px}
 #err{color:#ff8f8f}
 #links{margin:0 0 8px}
 #links a{color:#5da9e9;margin-right:10px;text-decoration:none}
</style></head><body>
<h1>swarm observatory</h1>
<div id="links"><a href="/metrics">metrics</a><a href="/series">series</a>
<a href="/health">health</a><a href="/trace">trace</a>
<a href="/flightrec">flightrec</a><a href="/profile">profile</a></div>
<div id="health">waiting for /health &hellip;</div>
<div id="err"></div>
<div id="charts"></div>
<script>
const PREFIXES=["live.","sim.","core.choke.","net."];
const MAX_CHARTS=24;
function spark(canvas,pts){
  const ctx=canvas.getContext("2d"),W=canvas.width,H=canvas.height;
  ctx.clearRect(0,0,W,H);
  if(pts.length<2)return;
  let lo=Infinity,hi=-Infinity;
  for(const[,v]of pts){if(v<lo)lo=v;if(v>hi)hi=v;}
  if(hi===lo){hi+=1;lo-=1;}
  const t0=pts[0][0],t1=pts[pts.length-1][0]||1;
  ctx.strokeStyle="#5da9e9";ctx.lineWidth=1.5;ctx.beginPath();
  pts.forEach(([t,v],i)=>{
    const x=(t-t0)/(t1-t0||1)*(W-4)+2;
    const y=H-2-(v-lo)/(hi-lo)*(H-4);
    i?ctx.lineTo(x,y):ctx.moveTo(x,y);
  });
  ctx.stroke();
}
function fmt(v){return Math.abs(v)>=1e6?v.toExponential(2):
  (Number.isInteger(v)?v:v.toFixed(3));}
async function tick(){
  try{
    const hr=await fetch("/health"); const h=await hr.json();
    const hd=document.getElementById("health");
    if(h.monitors&&h.monitors.length){
      hd.className=h.healthy?"":"bad";
      hd.innerHTML=h.monitors.map(m=>
        `<span class="mon">${m.name} <span class="${m.healthy?"ok":"warn"}">`+
        `${fmt(m.value)} ${m.healthy?"ok":"WARN"}</span></span>`).join("")+
        `<span class="mon">(${h.samples} samples)</span>`;
    }else{hd.textContent="health: no monitors attached";}
    const sr=await fetch("/series"); const data=await sr.json();
    let series=data.series.filter(s=>PREFIXES.some(p=>s.name.startsWith(p)));
    if(!series.length)series=data.series;
    series=series.slice(0,MAX_CHARTS);
    const charts=document.getElementById("charts");
    for(const s of series){
      let el=document.getElementById("c_"+s.name);
      if(!el){
        el=document.createElement("div");el.className="chart";el.id="c_"+s.name;
        el.innerHTML=`<div class="name" title="${s.name}">${s.name}</div>`+
          `<canvas width="220" height="56"></canvas><div class="val"></div>`;
        charts.appendChild(el);
      }
      spark(el.querySelector("canvas"),s.points);
      const last=s.points[s.points.length-1];
      el.querySelector(".val").textContent=last?fmt(last[1]):"no data";
    }
    document.getElementById("err").textContent="";
  }catch(e){document.getElementById("err").textContent="poll failed: "+e;}
}
tick();setInterval(tick,2000);
</script></body></html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        read_response(stream)
    }

    fn read_response(stream: TcpStream) -> (String, String) {
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        // Skip headers, then read the body to EOF (Connection: close).
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), body)
    }

    fn serve_one(server: &mut ObsServer) {
        // Pump until the connection is fully answered and closed.
        for _ in 0..500 {
            server.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn serves_prometheus_exposition() {
        let registry = Registry::new_manual();
        registry.counter("net.bytes_in").add(42);
        registry
            .histogram("core.choke_round_us", bt_obs::buckets::LATENCY_US)
            .observe(7);
        let mut server = ObsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/metrics"));
        serve_one(&mut server);
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("# TYPE net_bytes_in counter"));
        assert!(body.contains("net_bytes_in 42"));
        assert!(body.contains("core_choke_round_us_bucket{le=\"10\"} 1"));
        // Parseable: every non-comment line is `name{labels} value`.
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let mut it = line.rsplitn(2, ' ');
            let value = it.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable line: {line}");
        }
    }

    #[test]
    fn serves_series_health_and_dashboard() {
        let registry = Registry::new_manual();
        let store = SeriesStore::new(&registry);
        store.record_at("live.entropy", 5, 0.75);
        store.record_at("sim.live_peers", 5, 4.0);
        let mut server = ObsServer::bind("127.0.0.1:0", registry)
            .unwrap()
            .with_series(store)
            .with_health_json(|| "{\"healthy\":true,\"monitors\":[]}".to_string());
        let addr = server.local_addr().unwrap();

        let handle = std::thread::spawn(move || {
            (
                get(addr, "/series"),
                get(addr, "/series?name=live."),
                get(addr, "/health"),
                get(addr, "/"),
            )
        });
        serve_one(&mut server);
        let (all, filtered, health, dash) = handle.join().unwrap();
        assert_eq!(all.0, "HTTP/1.1 200 OK");
        assert!(all.1.contains("\"name\":\"live.entropy\""));
        assert!(all.1.contains("\"name\":\"sim.live_peers\""));
        assert_eq!(filtered.0, "HTTP/1.1 200 OK");
        assert!(filtered.1.contains("live.entropy"));
        assert!(!filtered.1.contains("sim.live_peers"));
        assert_eq!(health.0, "HTTP/1.1 200 OK");
        assert_eq!(health.1, "{\"healthy\":true,\"monitors\":[]}");
        assert_eq!(dash.0, "HTTP/1.1 200 OK");
        assert!(dash.1.contains("<!doctype html>"));
        assert!(dash.1.contains("fetch(\"/series\")"));
    }

    #[test]
    fn bare_server_serves_empty_series_and_vacuous_health() {
        let mut server = ObsServer::bind("127.0.0.1:0", Registry::new_manual()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || (get(addr, "/series"), get(addr, "/health")));
        serve_one(&mut server);
        let (series, health) = handle.join().unwrap();
        assert_eq!(series.1, "{\"series\":[]}");
        assert!(health.1.contains("\"healthy\":true"));
    }

    #[test]
    fn unknown_path_is_404_and_non_get_is_400() {
        let registry = Registry::new_manual();
        let mut server = ObsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/nope"));
        serve_one(&mut server);
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        // Machine-readable 404: JSON body listing the route table.
        assert!(body.starts_with("{\"error\":\"not found\""), "{body}");
        assert!(body.contains("\"/flightrec\""), "{body}");
        assert!(body.contains("\"/profile\""), "{body}");

        let handle = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "BREW /coffee HTTP/1.1\r\n\r\n").unwrap();
            let mut reader = BufReader::new(stream);
            let mut status = String::new();
            reader.read_line(&mut status).unwrap();
            status.trim().to_string()
        });
        serve_one(&mut server);
        assert_eq!(handle.join().unwrap(), "HTTP/1.1 400 Bad Request");
    }

    #[test]
    fn serves_trace_and_flightrec() {
        let registry = Registry::new_manual();
        let tracer = Tracer::new(7, 1);
        let dir = std::env::temp_dir().join(format!("btflight-http-{}", std::process::id()));
        let recorder = FlightRecorder::new(&dir, 16, 7);
        let tracer = tracer.with_flight(recorder.clone());
        tracer.record(100, bt_obs::TraceCat::Piece, "injected", 3, &[("by", 0)]);
        tracer.flush_local();
        let mut server = ObsServer::bind("127.0.0.1:0", registry)
            .unwrap()
            .with_tracer(tracer)
            .with_flight_recorder(recorder);
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || (get(addr, "/trace"), get(addr, "/flightrec")));
        serve_one(&mut server);
        let (trace, flight) = handle.join().unwrap();
        assert_eq!(trace.0, "HTTP/1.1 200 OK");
        assert!(trace.1.contains("\"traceEvents\""), "{}", trace.1);
        assert!(trace.1.contains("injected"), "{}", trace.1);
        assert_eq!(flight.0, "HTTP/1.1 200 OK");
        assert!(flight.1.contains("\"reason\":\"http\""), "{}", flight.1);
        assert!(flight.1.contains("injected"), "{}", flight.1);
        // The request also persisted a bundle file.
        assert!(std::fs::read_dir(&dir).unwrap().count() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serves_profile_snapshot() {
        let profiler = Profiler::new(bt_obs::TimeSource::manual());
        let time = profiler.time().unwrap().clone();
        {
            let _g = profiler.span("tick");
            time.advance_to(250);
        }
        let mut server = ObsServer::bind("127.0.0.1:0", Registry::new_manual())
            .unwrap()
            .with_profiler(profiler);
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/profile"));
        serve_one(&mut server);
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"path\":\"tick\""), "{body}");
        assert!(body.contains("\"total_us\":250"), "{body}");

        // Without a profiler the route answers the empty document.
        let mut bare = ObsServer::bind("127.0.0.1:0", Registry::new_manual()).unwrap();
        let addr = bare.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/profile"));
        serve_one(&mut bare);
        assert_eq!(handle.join().unwrap().1, "{\"spans\":[],\"flat\":[]}");
    }

    #[test]
    fn slow_loris_partial_head_is_dropped_at_the_deadline() {
        let mut server = ObsServer::bind("127.0.0.1:0", Registry::new_manual()).unwrap();
        server.set_read_deadline(Duration::from_millis(100));
        let addr = server.local_addr().unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        // A head that never finishes: no terminating \r\n\r\n.
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x").unwrap();
        // Let the server accept and read the partial head.
        for _ in 0..20 {
            server.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(server.active_connections(), 1);
        // Past the deadline the connection is dropped without an answer.
        std::thread::sleep(Duration::from_millis(120));
        server.poll();
        assert_eq!(server.active_connections(), 0);
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "expected EOF, no bytes");
    }

    #[test]
    fn pipelined_garbage_after_the_head_is_ignored() {
        let registry = Registry::new_manual();
        registry.counter("net.ok").add(1);
        let mut server = ObsServer::bind("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n\x00\xffGARBAGE not http")
                .unwrap();
            read_response(stream)
        });
        serve_one(&mut server);
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("net_ok 1"));
        assert_eq!(server.active_connections(), 0);
    }

    #[test]
    fn responses_survive_tiny_write_chunks_across_many_polls() {
        let registry = Registry::new_manual();
        // A body comfortably larger than the 7-byte write chunks.
        for i in 0..64 {
            registry
                .counter_with("net.bytes_in", &format!("peer{i:02}"))
                .add(i);
        }
        let mut server = ObsServer::bind("127.0.0.1:0", registry.clone()).unwrap();
        server.set_max_write_per_pass(7);
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || get(addr, "/metrics"));
        // Pump until the response is fully flushed, counting the passes
        // it took: a chunked response must span many of them.
        let mut passes = 0u32;
        for _ in 0..10_000 {
            server.poll();
            passes += 1;
            if passes > 5 && server.active_connections() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let (status, body) = handle.join().unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, to_prometheus(&registry.snapshot()));
        let min_passes = (body.len() / 7) as u32;
        assert!(passes >= min_passes, "{passes} < {min_passes}");
    }
}
