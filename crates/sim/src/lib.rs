//! # bt-sim — deterministic swarm simulator
//!
//! The measurement substrate of the reproduction. The paper ran an
//! instrumented client against live Internet torrents; this crate runs
//! the same engine (`bt-core`) against a simulated swarm: a virtual
//! clock and event queue ([`events`]), a tracker model ([`tracker`]),
//! per-peer behaviour and capacity profiles ([`behavior`]), and the
//! swarm itself with its bandwidth model ([`swarm`]).
//!
//! Everything is seeded and deterministic: same [`swarm::SwarmSpec`] ⇒
//! byte-identical traces.

#![warn(missing_docs)]

pub mod behavior;
pub mod builder;
pub mod events;
pub mod links;
pub mod metrics;
pub mod swarm;
pub mod topology;
pub mod tracker;

pub use behavior::{BehaviorProfile, CapacityClass, Role};
pub use builder::SwarmSpecBuilder;
pub use events::{EventQueue, HeapEventQueue};
pub use links::{FullDuplexLink, LinkModel, LinkParams, NetModel, UniformLink};
pub use metrics::SimMetrics;
pub use swarm::{GlobalSample, Swarm, SwarmResult, SwarmSpec};
pub use topology::{ClassSpec, LinkRule, LinkSpec, TopologySpec, PRESET_NAMES};
pub use tracker::{PeerIdx, SimTracker};
