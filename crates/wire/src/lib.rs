//! # bt-wire — BitTorrent wire protocol
//!
//! The data formats of the BitTorrent protocol as used by the mainline
//! 4.0.2 client instrumented in Legout et al., *Rarest First and Choke
//! Algorithms Are Enough* (IMC 2006):
//!
//! * [`bencode`] — the bencoding serialisation used by metainfo files and
//!   tracker responses;
//! * [`sha1`] — a from-scratch SHA-1 for piece hashes and info-hashes;
//! * [`metainfo`] — `.torrent` construction/parsing plus deterministic
//!   synthetic content generation for the simulator;
//! * [`handshake`] and [`message`] — the peer wire protocol codec;
//! * [`peer_id`] — peer identifiers with the client-ID prefix the paper's
//!   peer de-duplication relies on;
//! * [`tracker`] — announce request/response with the compact encoding.
//!
//! Everything here is transport-agnostic: the same codec drives both real
//! sockets and the in-memory links of `bt-sim`.

#![warn(missing_docs)]

pub mod bencode;
pub mod extension;
pub mod fast;
pub mod handshake;
pub mod message;
pub mod metainfo;
pub mod peer_id;
pub mod sha1;
pub mod time;
pub mod tracker;

pub use fast::{allowed_fast_set, DEFAULT_ALLOWED_FAST};
pub use handshake::Handshake;
pub use message::{BlockRef, Message, MessageKind};
pub use metainfo::{Metainfo, SyntheticContent, BLOCK_LEN, DEFAULT_PIECE_LEN};
pub use peer_id::{ClientKind, IpAddr, PeerId};
pub use sha1::{sha1, Digest};
pub use time::{Duration, Instant};
