//! A full instrumented measurement session, paper-style: join Table I's
//! torrent 7 with an instrumented client, persist the trace to JSON
//! lines, re-load it, and run the complete analysis pipeline on it.
//!
//! ```sh
//! cargo run --release --example instrumented_session
//! ```

use bt_repro::analysis::{
    entropy, fairness, pearson, unchoke_correlation, InterarrivalAnalysis, ReplicationSeries,
    StateWindow,
};
use bt_repro::instrument::identify::PeerRegistry;
use bt_repro::instrument::trace::Trace;
use bt_repro::torrents::{run_scenario, torrent, RunConfig};

fn main() {
    let cfg = RunConfig::default();
    let spec = torrent(7);
    println!(
        "joining {} (1 seed / 713 leechers in Table I, scaled) ...",
        spec.label()
    );
    let outcome = run_scenario(&spec, &cfg);
    println!(
        "scaled to {} seeds / {} leechers / {} pieces; {} trace events",
        outcome.scaled.seeds,
        outcome.scaled.leechers,
        outcome.scaled.pieces,
        outcome.trace.len()
    );

    // Persist and re-load the trace, as a real measurement pipeline would.
    let path = std::env::temp_dir().join("bt-repro-torrent7.jsonl");
    std::fs::write(&path, outcome.trace.to_jsonl()).expect("write trace");
    let trace =
        Trace::from_jsonl(&std::fs::read_to_string(&path).expect("read")).expect("parse trace");
    assert_eq!(trace, outcome.trace, "round-trip must be lossless");
    println!(
        "trace persisted to {} and re-loaded losslessly\n",
        path.display()
    );

    // §III-D: peer identification.
    let registry = PeerRegistry::from_trace(&trace);
    println!("peer identification (paper §III-D):");
    println!("  connections seen        : {}", registry.memberships.len());
    println!("  unique (IP, client-ID)  : {}", registry.unique_peers());
    println!(
        "  multi-ID IP fraction    : {:.1} %",
        registry.multi_id_ip_fraction() * 100.0
    );

    // Figure 1: entropy.
    let ent = entropy(&trace);
    println!("\nentropy (figure 1):");
    println!(
        "  a/b percentiles (local interested in remote): p20={:.2} p50={:.2} p80={:.2}",
        ent.local_in_remote.p20, ent.local_in_remote.p50, ent.local_in_remote.p80
    );
    println!(
        "  c/d percentiles (remote interested in local): p20={:.2} p50={:.2} p80={:.2}",
        ent.remote_in_local.p20, ent.remote_in_local.p50, ent.remote_in_local.p80
    );

    // Figures 4–6: replication.
    let series = ReplicationSeries::from_trace(&trace);
    println!("\nreplication (figures 4–6):");
    println!("  availability samples    : {}", series.points.len());
    println!(
        "  missing-piece fraction  : {:.2}",
        series.missing_piece_fraction()
    );
    println!("  mean peer-set size      : {:.1}", series.mean_peer_set());
    println!(
        "  state                   : {}",
        if series.is_transient() {
            "transient"
        } else {
            "steady"
        }
    );

    // Figures 7–8: interarrivals.
    let pieces = InterarrivalAnalysis::pieces(&trace);
    let blocks = InterarrivalAnalysis::blocks(&trace);
    println!("\ninterarrivals (figures 7–8):");
    println!(
        "  pieces: {}  first-slowdown ×{:.2}  last-slowdown ×{:.2}",
        pieces.count,
        pieces.first_slowdown(),
        pieces.last_slowdown()
    );
    println!(
        "  blocks: {}  first-slowdown ×{:.2}  last-slowdown ×{:.2}",
        blocks.count,
        blocks.first_slowdown(),
        blocks.last_slowdown()
    );

    // Figures 9/11: fairness.
    let ls = fairness(&trace, StateWindow::Leecher);
    let ss = fairness(&trace, StateWindow::Seed);
    println!("\nfairness (figures 9/11):");
    println!(
        "  LS: top-set upload share {:.2}, reciprocation(5) {:.2}",
        ls.top_set_upload_share(),
        ls.reciprocation_share(5)
    );
    println!("  SS: Jain index over served bytes {:.2}", ss.jain_index());

    // Figure 10: unchoke correlation.
    let c = unchoke_correlation(&trace);
    println!("\nunchoke correlation (figure 10):");
    println!(
        "  leecher state: {} peers, Pearson r = {:.2}",
        c.leecher.len(),
        pearson(&c.leecher)
    );
    println!(
        "  seed state   : {} peers, Pearson r = {:.2}",
        c.seed.len(),
        pearson(&c.seed)
    );
}
