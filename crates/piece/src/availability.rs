//! Piece availability within the local peer set.
//!
//! §II-C.1: "Each peer maintains a list of the number of copies of each
//! piece in its peer set. It uses this information to define a rarest
//! pieces set. Let m be the number of copies of the rarest piece, then the
//! index of each piece with m copies in the peer set is added to the rarest
//! pieces set. The rarest pieces set of a peer is updated each time a copy
//! of a piece is added to or removed from its peer set."
//!
//! [`Availability`] maintains those counts incrementally from bitfield /
//! have / disconnect events, and exposes the *rarest pieces set* and the
//! min/mean/max statistics that figures 2–4 and 6 of the paper plot.
//!
//! # Bucketed index
//!
//! The counts are mirrored in a permutation of the piece indices kept
//! sorted by count (`order`, with inverse `pos`), plus a frequency-bucket
//! boundary table (`first_ge[c]` = first `order` position whose count is
//! ≥ `c`). A `have` delta swaps one piece to the boundary of its count
//! run and moves one boundary — O(1) — so `min_count`, `rarest_set_size`
//! and `stats` are O(1) reads and `rarest_set` is O(|set|), instead of
//! the O(pieces) scans of the naive representation. The naive
//! representation is retained as [`NaiveAvailability`] and the two are
//! held equivalent by differential property tests
//! (`tests/availability_diff.rs`).

use crate::bitfield::Bitfield;
use serde::{Deserialize, Serialize};

/// Per-piece copy counts over the current peer set, bucketed by count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Availability {
    /// Copies of each piece in the peer set.
    counts: Vec<u32>,
    /// Piece indices sorted by count (ascending; order within a count run
    /// is arbitrary).
    order: Vec<u32>,
    /// Inverse of `order`: `pos[piece]` is its position in `order`.
    pos: Vec<u32>,
    /// `first_ge[c]` = first position in `order` whose count is ≥ `c`
    /// (so the run of count-`c` pieces is `order[first_ge[c]..first_ge[c+1]]`).
    /// Grown on demand; positions past the end mean `order.len()`.
    first_ge: Vec<u32>,
    /// Running sum of all counts (for O(1) mean).
    total: u64,
}

/// Two availabilities are equal when their per-piece counts agree; the
/// bucket permutation is an implementation detail.
impl PartialEq for Availability {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
    }
}
impl Eq for Availability {}

/// Snapshot statistics over the per-piece copy counts (figure 2/4 series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Copies of the least replicated piece.
    pub min: u32,
    /// Mean copies over all pieces.
    pub mean: f64,
    /// Copies of the most replicated piece.
    pub max: u32,
}

impl Availability {
    /// Zero counts for `num_pieces` pieces.
    pub fn new(num_pieces: u32) -> Availability {
        Availability {
            counts: vec![0; num_pieces as usize],
            order: (0..num_pieces).collect(),
            pos: (0..num_pieces).collect(),
            first_ge: vec![0],
            total: 0,
        }
    }

    /// Number of pieces tracked.
    pub fn num_pieces(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Copies of piece `index` in the peer set.
    pub fn count(&self, index: u32) -> u32 {
        self.counts[index as usize]
    }

    /// `first_ge[c]`, treating missing tail entries as `order.len()`.
    fn first_ge_at(&self, c: usize) -> u32 {
        self.first_ge
            .get(c)
            .copied()
            .unwrap_or(self.order.len() as u32)
    }

    /// Swap the pieces at `order` positions `a` and `b`, fixing `pos`.
    fn swap_order(&mut self, a: u32, b: u32) {
        self.order.swap(a as usize, b as usize);
        self.pos[self.order[a as usize] as usize] = a;
        self.pos[self.order[b as usize] as usize] = b;
    }

    /// Count of piece `index` goes from `c` to `c + 1`: move it to the end
    /// of its run and pull the `≥ c + 1` boundary back over it.
    fn increment(&mut self, index: u32) {
        let c = self.counts[index as usize] as usize;
        while self.first_ge.len() < c + 2 {
            self.first_ge.push(self.order.len() as u32);
        }
        let last = self.first_ge[c + 1] - 1;
        self.swap_order(self.pos[index as usize], last);
        self.first_ge[c + 1] = last;
        self.counts[index as usize] += 1;
        self.total += 1;
    }

    /// Count of piece `index` goes from `c` to `c - 1`: move it to the
    /// start of its run and push the `≥ c` boundary past it.
    fn decrement(&mut self, index: u32) {
        let c = self.counts[index as usize] as usize;
        debug_assert!(c > 0, "removing uncounted copy of piece {index}");
        if c == 0 {
            return;
        }
        let start = self.first_ge[c];
        self.swap_order(self.pos[index as usize], start);
        self.first_ge[c] = start + 1;
        self.counts[index as usize] -= 1;
        self.total -= 1;
    }

    /// A peer joined the peer set with bitfield `bf`.
    pub fn add_peer(&mut self, bf: &Bitfield) {
        debug_assert_eq!(bf.len(), self.num_pieces());
        for i in bf.iter_ones() {
            self.increment(i);
        }
    }

    /// A peer left the peer set; remove its contribution.
    pub fn remove_peer(&mut self, bf: &Bitfield) {
        debug_assert_eq!(bf.len(), self.num_pieces());
        for i in bf.iter_ones() {
            self.decrement(i);
        }
    }

    /// A peer in the set announced a new piece (`have` message).
    pub fn add_have(&mut self, index: u32) {
        self.increment(index);
    }

    /// Copies of the rarest piece (`m` in the paper's definition).
    pub fn min_count(&self) -> u32 {
        match self.order.first() {
            Some(&p) => self.counts[p as usize],
            None => 0,
        }
    }

    /// The rarest pieces set: all pieces with `m` copies, ascending.
    pub fn rarest_set(&self) -> Vec<u32> {
        let size = self.rarest_set_size() as usize;
        let mut out = self.order[..size].to_vec();
        out.sort_unstable();
        out
    }

    /// Size of the rarest pieces set (figure 3/6 series).
    pub fn rarest_set_size(&self) -> u32 {
        if self.order.is_empty() {
            return 0;
        }
        self.first_ge_at(self.min_count() as usize + 1)
    }

    /// The rarest pieces set restricted to `candidates` (pieces the local
    /// peer could actually request). Rarity is still computed over the
    /// restricted set: among the candidates, those with the fewest copies.
    pub fn rarest_among<I: IntoIterator<Item = u32>>(&self, candidates: I) -> Vec<u32> {
        let mut best = u32::MAX;
        let mut out = Vec::new();
        for i in candidates {
            let c = self.counts[i as usize];
            match c.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = c;
                    out.clear();
                    out.push(i);
                }
                std::cmp::Ordering::Equal => out.push(i),
                std::cmp::Ordering::Greater => {}
            }
        }
        out
    }

    /// [`Self::rarest_among`] over the picker's candidate set
    /// (`remote \ own`, minus in-progress pieces), but walking the count
    /// buckets rarest-first so the common case touches only the few
    /// lowest runs instead of every candidate.
    ///
    /// Returns exactly what `rarest_among` over the ascending candidate
    /// iterator returns: the minimum-count candidates in ascending piece
    /// order. When the candidate set is much smaller than the piece count
    /// the candidate scan is cheaper, so this switches on a size bound —
    /// both paths are output-identical, keeping picks deterministic.
    pub fn rarest_among_fields(
        &self,
        remote: &Bitfield,
        own: &Bitfield,
        in_progress: &dyn Fn(u32) -> bool,
    ) -> Vec<u32> {
        let bound = remote.count_andnot(own) as usize;
        if bound == 0 {
            return Vec::new();
        }
        if bound * 8 <= self.order.len() {
            // Sparse candidates: the linear scan wins.
            return self.rarest_among(remote.iter_ones_andnot(own).filter(|&i| !in_progress(i)));
        }
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.order.len() {
            let c = self.counts[self.order[idx] as usize] as usize;
            let end = self.first_ge_at(c + 1) as usize;
            for &p in &self.order[idx..end] {
                if remote.get(p) && !own.get(p) && !in_progress(p) {
                    out.push(p);
                }
            }
            if !out.is_empty() {
                out.sort_unstable();
                return out;
            }
            idx = end;
        }
        out
    }

    /// Min/mean/max copies, the series plotted in figures 2 and 4.
    pub fn stats(&self) -> AvailabilityStats {
        if self.counts.is_empty() {
            return AvailabilityStats {
                min: 0,
                mean: 0.0,
                max: 0,
            };
        }
        let min = self.min_count();
        let max = self.counts[*self.order.last().unwrap() as usize];
        let mean = self.total as f64 / self.counts.len() as f64;
        AvailabilityStats { min, mean, max }
    }

    /// True when at least one piece has zero copies in the peer set — the
    /// local signature of a torrent in *transient state* (§IV-A.2).
    pub fn has_missing_piece(&self) -> bool {
        !self.counts.is_empty() && self.min_count() == 0
    }

    /// Internal invariants, checked by the differential tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let n = self.counts.len();
        assert_eq!(self.order.len(), n);
        assert_eq!(self.pos.len(), n);
        for (p, &at) in self.pos.iter().enumerate() {
            assert_eq!(self.order[at as usize] as usize, p, "pos/order inverse");
        }
        for w in self.order.windows(2) {
            assert!(
                self.counts[w[0] as usize] <= self.counts[w[1] as usize],
                "order not sorted by count"
            );
        }
        assert_eq!(self.first_ge_at(0), 0);
        for c in 0..self.first_ge.len() + 1 {
            let at = self.first_ge_at(c) as usize;
            assert!(at <= n);
            assert!(
                self.order[..at]
                    .iter()
                    .all(|&p| (self.counts[p as usize] as usize) < c),
                "pieces before first_ge[{c}] must have count < {c}"
            );
            assert!(
                self.order[at..]
                    .iter()
                    .all(|&p| (self.counts[p as usize] as usize) >= c),
                "pieces from first_ge[{c}] must have count >= {c}"
            );
        }
        assert_eq!(
            self.total,
            self.counts.iter().map(|&c| u64::from(c)).sum::<u64>()
        );
    }
}

/// The pre-bucketing representation — a bare count vector with O(pieces)
/// scans — kept as the differential-testing reference for
/// [`Availability`]. Every query here is the obviously-correct spelling
/// of the paper's definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaiveAvailability {
    counts: Vec<u32>,
}

impl NaiveAvailability {
    /// Zero counts for `num_pieces` pieces.
    pub fn new(num_pieces: u32) -> NaiveAvailability {
        NaiveAvailability {
            counts: vec![0; num_pieces as usize],
        }
    }

    /// Copies of piece `index` in the peer set.
    pub fn count(&self, index: u32) -> u32 {
        self.counts[index as usize]
    }

    /// A peer joined the peer set with bitfield `bf`.
    pub fn add_peer(&mut self, bf: &Bitfield) {
        for i in bf.iter_ones() {
            self.counts[i as usize] += 1;
        }
    }

    /// A peer left the peer set; remove its contribution.
    pub fn remove_peer(&mut self, bf: &Bitfield) {
        for i in bf.iter_ones() {
            self.counts[i as usize] = self.counts[i as usize].saturating_sub(1);
        }
    }

    /// A peer in the set announced a new piece (`have` message).
    pub fn add_have(&mut self, index: u32) {
        self.counts[index as usize] += 1;
    }

    /// Copies of the rarest piece.
    pub fn min_count(&self) -> u32 {
        self.counts.iter().copied().min().unwrap_or(0)
    }

    /// The rarest pieces set: all pieces with `m` copies.
    pub fn rarest_set(&self) -> Vec<u32> {
        let m = self.min_count();
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == m)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Size of the rarest pieces set.
    pub fn rarest_set_size(&self) -> u32 {
        let m = self.min_count();
        self.counts.iter().filter(|&&c| c == m).count() as u32
    }

    /// The rarest pieces set restricted to `candidates`.
    pub fn rarest_among<I: IntoIterator<Item = u32>>(&self, candidates: I) -> Vec<u32> {
        let mut best = u32::MAX;
        let mut out = Vec::new();
        for i in candidates {
            let c = self.counts[i as usize];
            match c.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = c;
                    out.clear();
                    out.push(i);
                }
                std::cmp::Ordering::Equal => out.push(i),
                std::cmp::Ordering::Greater => {}
            }
        }
        out
    }

    /// Min/mean/max copies.
    pub fn stats(&self) -> AvailabilityStats {
        if self.counts.is_empty() {
            return AvailabilityStats {
                min: 0,
                mean: 0.0,
                max: 0,
            };
        }
        let min = *self.counts.iter().min().unwrap();
        let max = *self.counts.iter().max().unwrap();
        let mean =
            self.counts.iter().map(|&c| f64::from(c)).sum::<f64>() / self.counts.len() as f64;
        AvailabilityStats { min, mean, max }
    }

    /// True when at least one piece has zero copies in the peer set.
    pub fn has_missing_piece(&self) -> bool {
        self.counts.contains(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(len: u32, ones: &[u32]) -> Bitfield {
        let mut b = Bitfield::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn add_remove_peer_is_inverse() {
        let mut av = Availability::new(8);
        let peer = bf(8, &[0, 3, 7]);
        av.add_peer(&peer);
        assert_eq!(av.count(0), 1);
        assert_eq!(av.count(1), 0);
        av.remove_peer(&peer);
        assert_eq!(av.stats().max, 0);
        av.check_invariants();
    }

    #[test]
    fn have_increments() {
        let mut av = Availability::new(4);
        av.add_have(2);
        av.add_have(2);
        assert_eq!(av.count(2), 2);
        av.check_invariants();
    }

    #[test]
    fn rarest_set_tracks_minimum() {
        let mut av = Availability::new(4);
        av.add_peer(&bf(4, &[0, 1]));
        av.add_peer(&bf(4, &[0]));
        // counts: [2,1,0,0] → m = 0, rarest = {2,3}
        assert_eq!(av.min_count(), 0);
        assert_eq!(av.rarest_set(), vec![2, 3]);
        assert_eq!(av.rarest_set_size(), 2);
        av.add_have(2);
        av.add_have(3);
        // counts: [2,1,1,1] → m = 1, rarest = {1,2,3}
        assert_eq!(av.rarest_set(), vec![1, 2, 3]);
        av.check_invariants();
    }

    #[test]
    fn rarest_among_restricts_candidates() {
        let mut av = Availability::new(5);
        av.add_peer(&bf(5, &[0, 1, 2]));
        av.add_peer(&bf(5, &[0, 1]));
        av.add_peer(&bf(5, &[0]));
        // counts: [3,2,1,0,0]
        assert_eq!(av.rarest_among([0, 1, 2]), vec![2]);
        assert_eq!(av.rarest_among([0, 1]), vec![1]);
        assert_eq!(av.rarest_among([3, 4]), vec![3, 4]);
        assert_eq!(av.rarest_among(std::iter::empty()), Vec::<u32>::new());
    }

    #[test]
    fn rarest_among_fields_matches_candidate_scan() {
        let n = 9;
        let mut av = Availability::new(n);
        av.add_peer(&bf(n, &[0, 1, 2, 3, 4, 5]));
        av.add_peer(&bf(n, &[0, 1, 2]));
        av.add_peer(&bf(n, &[0]));
        let own = bf(n, &[0, 5]);
        let remote = Bitfield::full(n);
        let blocked = |p: u32| p == 6;
        let never = |_: u32| false;
        for in_prog in [&blocked as &dyn Fn(u32) -> bool, &never] {
            let fast = av.rarest_among_fields(&remote, &own, in_prog);
            let slow = av.rarest_among(remote.iter_ones_andnot(&own).filter(|&i| !in_prog(i)));
            assert_eq!(fast, slow);
        }
        // Sparse remote exercises the candidate-scan branch.
        let sparse = bf(n, &[3]);
        assert_eq!(av.rarest_among_fields(&sparse, &own, &never), vec![3]);
        assert_eq!(
            av.rarest_among_fields(&own, &own, &never),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn stats_and_transient_signature() {
        let mut av = Availability::new(3);
        assert!(av.has_missing_piece());
        av.add_peer(&bf(3, &[0, 1, 2]));
        assert!(!av.has_missing_piece());
        av.add_peer(&bf(3, &[0]));
        let s = av.stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 4.0 / 3.0).abs() < 1e-12);
        av.check_invariants();
    }

    #[test]
    fn empty_availability_is_well_defined() {
        let av = Availability::new(0);
        assert_eq!(av.min_count(), 0);
        assert_eq!(av.rarest_set(), Vec::<u32>::new());
        assert_eq!(av.rarest_set_size(), 0);
        assert!(!av.has_missing_piece());
        assert_eq!(av.stats(), NaiveAvailability::new(0).stats());
        av.check_invariants();
    }
}
