//! Property-based tests over the choke algorithms: for arbitrary peer
//! populations, every strategy's decision respects the §II-C.2 slot
//! structure.

use bt_choke::{ChokeDecision, ChokerKind, PeerSnapshot, REGULAR_SLOTS};
use bt_wire::time::Instant;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_snapshot(key: u32) -> impl Strategy<Value = PeerSnapshot> {
    (
        any::<bool>(),
        any::<bool>(),
        0.0f64..1e6,
        0.0f64..1e6,
        proptest::option::of(0u64..10_000),
        0u64..50_000_000,
        0u64..50_000_000,
        any::<bool>(),
    )
        .prop_map(
            move |(interested, unchoked, dl, ul, last, up, down, snubbed)| PeerSnapshot {
                key,
                interested,
                unchoked,
                download_rate: dl,
                upload_rate: ul,
                last_unchoked: last.map(Instant::from_secs),
                uploaded_to: up,
                downloaded_from: down,
                snubbed,
            },
        )
}

fn arb_peers() -> impl Strategy<Value = Vec<PeerSnapshot>> {
    (0usize..40).prop_flat_map(|n| (0..n as u32).map(arb_snapshot).collect::<Vec<_>>())
}

fn check_decision(d: &ChokeDecision, peers: &[PeerSnapshot], slots: usize) {
    let unchoked = d.unchoked();
    // No duplicates.
    let mut dedup = unchoked.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), unchoked.len(), "duplicate unchoke");
    // Bounded by the slot budget (+1 for the optimistic slot).
    assert!(
        unchoked.len() <= slots + 1,
        "too many unchoked: {unchoked:?}"
    );
    // Every unchoked peer exists and is interested.
    for key in &unchoked {
        let p = peers
            .iter()
            .find(|p| p.key == *key)
            .expect("unknown peer unchoked");
        assert!(p.interested, "unchoked a peer that is not interested");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The leecher choker's structural invariants hold for any population
    /// over many consecutive rounds.
    #[test]
    fn leecher_choker_invariants(peers in arb_peers(), seed in 0u64..1000, rounds in 1u64..10) {
        let mut choker = ChokerKind::Standard.build_leecher();
        let mut rng = SmallRng::seed_from_u64(seed);
        for r in 0..rounds {
            let d = choker.rechoke(Instant::from_secs(r * 10), &peers, &mut rng);
            check_decision(&d, &peers, REGULAR_SLOTS);
            // Regular slots never go to snubbed peers.
            for key in &d.regular {
                let p = peers.iter().find(|p| p.key == *key).unwrap();
                prop_assert!(!p.snubbed, "snubbed peer got a regular slot");
            }
            // Regular slots are the fastest non-snubbed interested peers.
            let mut eligible: Vec<&PeerSnapshot> =
                peers.iter().filter(|p| p.interested && !p.snubbed).collect();
            eligible.sort_by(|a, b| {
                b.download_rate.partial_cmp(&a.download_rate).unwrap().then(a.key.cmp(&b.key))
            });
            let expected: Vec<u32> =
                eligible.iter().take(REGULAR_SLOTS).map(|p| p.key).collect();
            prop_assert_eq!(&d.regular, &expected);
        }
    }

    /// The new seed-state choker's invariants: at most 4 unchoked, all
    /// interested, no duplicates, rates never consulted.
    #[test]
    fn seed_choker_new_invariants(peers in arb_peers(), seed in 0u64..1000, rounds in 1u64..10) {
        let mut choker = ChokerKind::Standard.build_seed();
        let mut rng = SmallRng::seed_from_u64(seed);
        for r in 0..rounds {
            let d = choker.rechoke(Instant::from_secs(r * 10), &peers, &mut rng);
            check_decision(&d, &peers, REGULAR_SLOTS.max(4));
            prop_assert!(d.unchoked().len() <= 4);
        }
    }

    /// The old seed-state choker and tit-for-tat obey the same structure.
    #[test]
    fn baseline_chokers_invariants(peers in arb_peers(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut old_seed = ChokerKind::OldSeed.build_seed();
        let d = old_seed.rechoke(Instant::ZERO, &peers, &mut rng);
        check_decision(&d, &peers, REGULAR_SLOTS);
        let mut tft = ChokerKind::TitForTat.build_leecher();
        let d = tft.rechoke(Instant::ZERO, &peers, &mut rng);
        check_decision(&d, &peers, 4);
        // TFT never unchokes a peer beyond the deficit threshold.
        for key in d.unchoked() {
            let p = peers.iter().find(|p| p.key == key).unwrap();
            prop_assert!(
                p.uploaded_to.saturating_sub(p.downloaded_from) <= 4 * 16 * 1024,
                "TFT unchoked a peer over the deficit threshold"
            );
        }
    }

    /// Chokers are deterministic given the same RNG seed and inputs.
    #[test]
    fn chokers_are_deterministic(peers in arb_peers(), seed in 0u64..1000) {
        for kind in [ChokerKind::Standard, ChokerKind::OldSeed, ChokerKind::TitForTat] {
            let mut a = kind.build_leecher();
            let mut b = kind.build_leecher();
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            for r in 0..5u64 {
                let da = a.rechoke(Instant::from_secs(r * 10), &peers, &mut rng_a);
                let db = b.rechoke(Instant::from_secs(r * 10), &peers, &mut rng_b);
                prop_assert_eq!(da, db);
            }
        }
    }
}
