//! Boolean interval reconstruction from trace events.
//!
//! Several metrics need "how long was X true during window W": interest
//! relations (figure 1), unchoke durations, membership overlaps. An
//! [`IntervalBuilder`] folds a stream of timestamped booleans into closed
//! intervals, and [`overlap_secs`] measures intersection with a window.

use bt_wire::time::Instant;

/// A half-open interval `[start, end)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Interval start.
    pub start: Instant,
    /// Interval end.
    pub end: Instant,
}

impl Interval {
    /// Length in seconds.
    pub fn secs(&self) -> f64 {
        (self.end.saturating_since(self.start)).as_secs_f64()
    }
}

/// Builds the intervals during which a boolean signal was `true`.
#[derive(Debug, Default)]
pub struct IntervalBuilder {
    intervals: Vec<Interval>,
    since: Option<Instant>,
}

impl IntervalBuilder {
    /// Start with the signal false.
    pub fn new() -> IntervalBuilder {
        IntervalBuilder::default()
    }

    /// Feed a transition at `t`. Repeated identical states are ignored.
    pub fn transition(&mut self, t: Instant, state: bool) {
        match (state, self.since) {
            (true, None) => self.since = Some(t),
            (false, Some(start)) => {
                self.intervals.push(Interval { start, end: t });
                self.since = None;
            }
            _ => {}
        }
    }

    /// Close any open interval at `end` and return all intervals.
    pub fn finish(mut self, end: Instant) -> Vec<Interval> {
        if let Some(start) = self.since.take() {
            if end > start {
                self.intervals.push(Interval { start, end });
            }
        }
        self.intervals
    }
}

/// Total seconds of `intervals` that fall inside `[win_start, win_end)`.
pub fn overlap_secs(intervals: &[Interval], win_start: Instant, win_end: Instant) -> f64 {
    intervals
        .iter()
        .map(|iv| {
            let s = iv.start.max(win_start);
            let e = iv.end.min(win_end);
            if e > s {
                (e - s).as_secs_f64()
            } else {
                0.0
            }
        })
        .sum()
}

/// Seconds the window `[a_start, a_end)` overlaps `[b_start, b_end)`.
pub fn window_overlap_secs(
    a_start: Instant,
    a_end: Instant,
    b_start: Instant,
    b_end: Instant,
) -> f64 {
    let s = a_start.max(b_start);
    let e = a_end.min(b_end);
    if e > s {
        (e - s).as_secs_f64()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Instant {
        Instant::from_secs(s)
    }

    #[test]
    fn builds_intervals() {
        let mut b = IntervalBuilder::new();
        b.transition(t(1), true);
        b.transition(t(3), false);
        b.transition(t(5), true);
        let ivs = b.finish(t(10));
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].secs(), 2.0);
        assert_eq!(ivs[1].secs(), 5.0);
    }

    #[test]
    fn ignores_duplicate_transitions() {
        let mut b = IntervalBuilder::new();
        b.transition(t(0), false);
        b.transition(t(1), true);
        b.transition(t(2), true);
        b.transition(t(4), false);
        b.transition(t(5), false);
        let ivs = b.finish(t(10));
        assert_eq!(
            ivs,
            vec![Interval {
                start: t(1),
                end: t(4)
            }]
        );
    }

    #[test]
    fn overlap_computation() {
        let ivs = vec![
            Interval {
                start: t(0),
                end: t(10),
            },
            Interval {
                start: t(20),
                end: t(30),
            },
        ];
        assert_eq!(overlap_secs(&ivs, t(5), t(25)), 10.0);
        assert_eq!(overlap_secs(&ivs, t(100), t(200)), 0.0);
        assert_eq!(overlap_secs(&ivs, t(0), t(30)), 20.0);
    }

    #[test]
    fn window_overlap() {
        assert_eq!(window_overlap_secs(t(0), t(10), t(5), t(20)), 5.0);
        assert_eq!(window_overlap_secs(t(0), t(10), t(10), t(20)), 0.0);
    }
}
