//! Fleet-level paper-claim verdicts over merged offline artifacts.
//!
//! [`live`](crate::live) watches *one* swarm as it runs; this module
//! re-asserts the same §III claims (entropy ≈ 1, reciprocation, no
//! starvation) across a whole fleet of finished runs, using the merged
//! schema documents that `btstat merge` builds from each run's on-disk
//! artifacts. Verdicts are deterministic functions of the merged data,
//! so a fleet report is byte-identical regardless of the order runs
//! were merged in.
//!
//! A claim with no supporting data (a run emitted no `--series`, say)
//! is reported healthy-but-vacuous, with the gap named in `detail` —
//! a silent pass and a missing instrument must not look alike.

use std::collections::BTreeMap;

use bt_obs::{MetricsDoc, SeriesDoc};

use crate::live::Thresholds;

/// One fleet-level claim verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetVerdict {
    /// Claim name (`entropy`, `reciprocation`, `starvation`).
    pub name: &'static str,
    /// Did the fleet satisfy the claim (vacuously true when no run
    /// recorded the underlying signal)?
    pub healthy: bool,
    /// The fleet-wide statistic the verdict is based on, when one was
    /// recorded.
    pub value: Option<f64>,
    /// The threshold compared against, when the claim has one.
    pub threshold: Option<f64>,
    /// Human-readable evidence (worst run, missing data, ...).
    pub detail: String,
}

impl FleetVerdict {
    /// Render as a JSON object (sorted fixed keys, deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"healthy\":{},\"value\":",
            self.name, self.healthy
        ));
        match self.value {
            Some(v) => out.push_str(&bt_obs::series::json_f64(v)),
            None => out.push_str("null"),
        }
        out.push_str(",\"threshold\":");
        match self.threshold {
            Some(v) => out.push_str(&bt_obs::series::json_f64(v)),
            None => out.push_str("null"),
        }
        out.push_str(",\"detail\":\"");
        // Details are built from run keys and numbers; escape the two
        // characters that could still break the string literal.
        for c in self.detail.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        out.push_str("\"}");
        out
    }
}

/// Minimum over every run's *final* sample of a float series, with the
/// run key that attains it.
fn min_last<'a>(
    series_by_run: &'a BTreeMap<String, SeriesDoc>,
    name: &str,
) -> Option<(&'a str, f64)> {
    let mut worst: Option<(&str, f64)> = None;
    for (run, doc) in series_by_run {
        if let Some(v) = doc.series.get(name).and_then(|s| s.last_value()) {
            if worst.is_none_or(|(_, w)| v < w) {
                worst = Some((run.as_str(), v));
            }
        }
    }
    worst
}

/// Re-assert the paper's live-health claims over merged fleet data.
///
/// * `entropy` — the worst run's final `live.entropy` sample must stay
///   at or above [`Thresholds::min_entropy`].
/// * `reciprocation` — likewise for `live.reciprocation` against
///   [`Thresholds::min_reciprocation`].
/// * `starvation` — the merged `live.starved_peers` gauge (summed
///   across runs) must be zero.
///
/// `series_by_run` maps a run key (e.g. `flash_crowd_1k-s42`) to that
/// run's parsed series document; `metrics` is the fleet-merged
/// snapshot.
pub fn fleet_verdicts(
    metrics: &MetricsDoc,
    series_by_run: &BTreeMap<String, SeriesDoc>,
    thresholds: &Thresholds,
) -> Vec<FleetVerdict> {
    let mut out = Vec::with_capacity(3);

    for (name, series, threshold) in [
        ("entropy", "live.entropy", thresholds.min_entropy),
        (
            "reciprocation",
            "live.reciprocation",
            thresholds.min_reciprocation,
        ),
    ] {
        match min_last(series_by_run, series) {
            Some((run, v)) => out.push(FleetVerdict {
                name,
                healthy: v >= threshold,
                value: Some(v),
                threshold: Some(threshold),
                detail: format!("worst final {series} {v:.3} in run {run}"),
            }),
            None => out.push(FleetVerdict {
                name,
                healthy: true,
                value: None,
                threshold: Some(threshold),
                detail: format!("no run recorded {series}; claim not exercised"),
            }),
        }
    }

    match metrics.gauges.get("live.starved_peers") {
        Some(&starved) => out.push(FleetVerdict {
            name: "starvation",
            healthy: starved == 0,
            value: Some(starved as f64),
            threshold: Some(0.0),
            detail: format!("{starved} starved peer(s) summed across the fleet"),
        }),
        None => out.push(FleetVerdict {
            name: "starvation",
            healthy: true,
            value: None,
            threshold: Some(0.0),
            detail: "no run recorded live.starved_peers; claim not exercised".to_string(),
        }),
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_obs::schema::SeriesEntry;

    fn series(points: &[(&str, f64)]) -> SeriesDoc {
        let mut doc = SeriesDoc::default();
        for &(name, v) in points {
            doc.series.insert(
                name.to_string(),
                SeriesEntry {
                    stride: 1,
                    points: vec![(0, v / 2.0), (10, v)],
                },
            );
        }
        doc
    }

    #[test]
    fn worst_run_drives_the_verdict() {
        let mut by_run = BTreeMap::new();
        by_run.insert(
            "a-s42".to_string(),
            series(&[("live.entropy", 0.95), ("live.reciprocation", 0.6)]),
        );
        by_run.insert(
            "b-s43".to_string(),
            series(&[("live.entropy", 0.55), ("live.reciprocation", 0.5)]),
        );
        let mut metrics = MetricsDoc::default();
        metrics.gauges.insert("live.starved_peers".to_string(), 0);

        let verdicts = fleet_verdicts(&metrics, &by_run, &Thresholds::default());
        assert_eq!(verdicts.len(), 3);
        let entropy = &verdicts[0];
        assert_eq!(entropy.name, "entropy");
        assert!(!entropy.healthy, "0.55 < 0.7 must fail");
        assert_eq!(entropy.value, Some(0.55));
        assert!(entropy.detail.contains("b-s43"));
        assert!(verdicts[1].healthy, "0.5 >= 0.2");
        assert!(verdicts[2].healthy);
        assert_eq!(verdicts[2].value, Some(0.0));
    }

    #[test]
    fn missing_signals_are_vacuously_healthy_and_say_so() {
        let verdicts = fleet_verdicts(
            &MetricsDoc::default(),
            &BTreeMap::new(),
            &Thresholds::default(),
        );
        assert!(verdicts.iter().all(|v| v.healthy));
        assert!(verdicts.iter().all(|v| v.value.is_none()));
        assert!(verdicts.iter().all(|v| v.detail.contains("not exercised")));
    }

    #[test]
    fn verdict_json_is_deterministic() {
        let v = FleetVerdict {
            name: "entropy",
            healthy: true,
            value: Some(0.75),
            threshold: Some(0.7),
            detail: "worst final live.entropy 0.750 in run a-s42".to_string(),
        };
        assert_eq!(
            v.to_json(),
            "{\"name\":\"entropy\",\"healthy\":true,\"value\":0.75,\"threshold\":0.7,\
             \"detail\":\"worst final live.entropy 0.750 in run a-s42\"}"
        );
        let parsed = bt_obs::parse_json(&v.to_json()).unwrap();
        assert_eq!(
            parsed.get("value").and_then(bt_obs::JsonValue::as_f64),
            Some(0.75)
        );
    }
}
