//! Piece bitfields.
//!
//! Each peer advertises the pieces it has with a `bitfield` message right
//! after the handshake and with `have` messages afterwards. The in-memory
//! representation here is word-packed with the wire encoding of BEP 3
//! (big-endian bit order: piece 0 is the most significant bit of byte 0).

use serde::{Deserialize, Serialize};

/// A fixed-size set of piece indices.
///
/// ```
/// use bt_piece::Bitfield;
/// let mut have = Bitfield::new(8);
/// have.set(3);
/// let seed = Bitfield::full(8);
/// // §II-A interest relation: the seed has pieces we lack.
/// assert!(have.is_interested_in(&seed));
/// assert!(!seed.is_interested_in(&have));
/// // Wire round-trip (BEP 3, MSB-first bit order).
/// assert_eq!(Bitfield::from_wire(&have.to_wire(), 8), Some(have));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitfield {
    bits: Vec<u64>,
    len: u32,
    ones: u32,
}

impl Bitfield {
    /// An all-zero bitfield for `len` pieces.
    pub fn new(len: u32) -> Bitfield {
        let words = (len as usize).div_ceil(64);
        Bitfield {
            bits: vec![0u64; words],
            len,
            ones: 0,
        }
    }

    /// An all-one bitfield (a seed's piece map).
    pub fn full(len: u32) -> Bitfield {
        let mut bf = Bitfield::new(len);
        for i in 0..len {
            bf.set(i);
        }
        bf
    }

    /// Number of pieces this bitfield covers.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if it covers zero pieces.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces present.
    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    /// True when every piece is present (the peer is a seed).
    pub fn is_complete(&self) -> bool {
        self.ones == self.len && self.len > 0
    }

    /// Test piece `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn get(&self, index: u32) -> bool {
        assert!(index < self.len, "piece {index} out of range {}", self.len);
        let (w, b) = (index / 64, index % 64);
        self.bits[w as usize] >> b & 1 == 1
    }

    /// Set piece `index`; returns true if it was newly set.
    pub fn set(&mut self, index: u32) -> bool {
        assert!(index < self.len, "piece {index} out of range {}", self.len);
        let (w, b) = (index / 64, index % 64);
        let mask = 1u64 << b;
        let was = self.bits[w as usize] & mask != 0;
        self.bits[w as usize] |= mask;
        if !was {
            self.ones += 1;
        }
        !was
    }

    /// Clear piece `index`; returns true if it was previously set.
    pub fn clear(&mut self, index: u32) -> bool {
        assert!(index < self.len, "piece {index} out of range {}", self.len);
        let (w, b) = (index / 64, index % 64);
        let mask = 1u64 << b;
        let was = self.bits[w as usize] & mask != 0;
        self.bits[w as usize] &= !mask;
        if was {
            self.ones -= 1;
        }
        was
    }

    /// Mask selecting the valid bits of word `w` (all-ones except for a
    /// ragged final word).
    fn tail_mask(&self, w: usize) -> u64 {
        if w + 1 == self.bits.len() && !self.len.is_multiple_of(64) {
            (1u64 << (self.len % 64)) - 1
        } else {
            u64::MAX
        }
    }

    /// Iterate over the indices of set pieces.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        bit_indices(self.bits.iter().copied())
    }

    /// Iterate over the indices of missing pieces.
    pub fn iter_zeros(&self) -> impl Iterator<Item = u32> + '_ {
        bit_indices(
            self.bits
                .iter()
                .enumerate()
                .map(move |(w, &x)| !x & self.tail_mask(w)),
        )
    }

    /// Iterate over pieces `self` has and `other` lacks, ascending.
    ///
    /// Word-level `self & !other`; the picker's candidate enumeration
    /// (`remote \ own`) is this iterator.
    pub fn iter_ones_andnot<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = u32> + 'a {
        debug_assert_eq!(self.len, other.len);
        bit_indices(
            self.bits
                .iter()
                .zip(other.bits.iter())
                .map(|(mine, theirs)| mine & !theirs),
        )
    }

    /// Number of pieces both bitfields have (`|self ∩ other|`).
    pub fn count_and(&self, other: &Bitfield) -> u32 {
        debug_assert_eq!(self.len, other.len);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Number of pieces `self` has that `other` lacks (`|self \ other|`).
    pub fn count_andnot(&self, other: &Bitfield) -> u32 {
        debug_assert_eq!(self.len, other.len);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a & !b).count_ones())
            .sum()
    }

    /// Index of the first missing piece, or `None` for a seed.
    pub fn first_zero(&self) -> Option<u32> {
        for (w, &x) in self.bits.iter().enumerate() {
            let holes = !x & self.tail_mask(w);
            if holes != 0 {
                return Some(w as u32 * 64 + holes.trailing_zeros());
            }
        }
        None
    }

    /// True if `other` has at least one piece this bitfield lacks.
    ///
    /// This is the *interest* relation of §II-A: "peer A is interested in
    /// peer B when peer B has pieces that peer A does not have".
    pub fn is_interested_in(&self, other: &Bitfield) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(mine, theirs)| theirs & !mine != 0)
    }

    /// Encode as the BEP 3 wire bitfield (big-endian bit order, zero-padded
    /// to a whole number of bytes).
    pub fn to_wire(&self) -> Vec<u8> {
        let nbytes = (self.len as usize).div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for i in self.iter_ones() {
            out[(i / 8) as usize] |= 0x80 >> (i % 8);
        }
        out
    }

    /// Decode a BEP 3 wire bitfield for a torrent of `len` pieces.
    ///
    /// Returns `None` if the byte length is wrong or any spare (padding)
    /// bit is set — both are protocol violations that should drop the
    /// connection.
    pub fn from_wire(data: &[u8], len: u32) -> Option<Bitfield> {
        if data.len() != (len as usize).div_ceil(8) {
            return None;
        }
        let mut bf = Bitfield::new(len);
        for (byte_idx, byte) in data.iter().enumerate() {
            for bit in 0..8 {
                if byte & (0x80 >> bit) != 0 {
                    let idx = byte_idx as u32 * 8 + bit;
                    if idx >= len {
                        return None; // spare bit set
                    }
                    bf.set(idx);
                }
            }
        }
        Some(bf)
    }
}

/// Ascending bit indices over a word stream: for each word `w` of the
/// packed layout, bit `b` yields index `w * 64 + b`. One
/// `trailing_zeros` + clear-lowest-bit per set bit, one load per word —
/// the word-level replacement for per-index `get()` scans.
fn bit_indices<I: Iterator<Item = u64>>(words: I) -> impl Iterator<Item = u32> {
    let mut words = words.enumerate();
    let mut cur: Option<(u32, u64)> = None;
    std::iter::from_fn(move || loop {
        if let Some((base, bits)) = &mut cur {
            if *bits != 0 {
                let b = bits.trailing_zeros();
                *bits &= *bits - 1;
                return Some(*base + b);
            }
        }
        let (w, bits) = words.next()?;
        cur = Some((w as u32 * 64, bits));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bf = Bitfield::new(130);
        assert!(!bf.get(0));
        assert!(bf.set(0));
        assert!(!bf.set(0));
        assert!(bf.get(0));
        assert!(bf.set(129));
        assert_eq!(bf.count_ones(), 2);
        assert!(bf.clear(0));
        assert!(!bf.clear(0));
        assert_eq!(bf.count_ones(), 1);
    }

    #[test]
    fn full_is_complete() {
        let bf = Bitfield::full(77);
        assert!(bf.is_complete());
        assert_eq!(bf.count_ones(), 77);
        let mut bf2 = bf.clone();
        bf2.clear(76);
        assert!(!bf2.is_complete());
    }

    #[test]
    fn interest_relation() {
        let mut a = Bitfield::new(10);
        let mut b = Bitfield::new(10);
        // Neither has anything: no interest either way.
        assert!(!a.is_interested_in(&b));
        b.set(3);
        assert!(a.is_interested_in(&b));
        assert!(!b.is_interested_in(&a));
        a.set(3);
        // Equal sets: mutual disinterest ("peer A is not interested in peer
        // B when peer B only has a subset of the pieces of peer A").
        assert!(!a.is_interested_in(&b));
        a.set(5);
        assert!(!a.is_interested_in(&b));
        assert!(b.is_interested_in(&a));
    }

    #[test]
    fn wire_roundtrip() {
        let mut bf = Bitfield::new(21);
        for i in [0u32, 7, 8, 15, 20] {
            bf.set(i);
        }
        let wire = bf.to_wire();
        assert_eq!(wire.len(), 3);
        assert_eq!(Bitfield::from_wire(&wire, 21), Some(bf));
    }

    #[test]
    fn wire_bit_order_is_msb_first() {
        let mut bf = Bitfield::new(8);
        bf.set(0);
        assert_eq!(bf.to_wire(), vec![0b1000_0000]);
        bf.set(7);
        assert_eq!(bf.to_wire(), vec![0b1000_0001]);
    }

    #[test]
    fn from_wire_rejects_bad_length_and_spare_bits() {
        assert_eq!(Bitfield::from_wire(&[0xFF], 9), None); // too short
        assert_eq!(Bitfield::from_wire(&[0xFF, 0xFF, 0x00], 9), None); // too long
        assert_eq!(Bitfield::from_wire(&[0xFF, 0xFF], 9), None); // spare bits
        assert!(Bitfield::from_wire(&[0xFF, 0x80], 9).is_some());
    }

    #[test]
    fn iterators() {
        let mut bf = Bitfield::new(5);
        bf.set(1);
        bf.set(4);
        assert_eq!(bf.iter_ones().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(bf.iter_zeros().collect::<Vec<_>>(), vec![0, 2, 3]);
    }
}
