//! Fleet analytics and the determinism debugger (DESIGN.md §12).
//!
//! 1. **Bisect** — two runs of the same scenario and seed have
//!    byte-identical causal traces and bisect reports *identical*;
//!    flipping only the seed makes bisect name the first diverging
//!    event (index, both payloads, ±K context window).
//! 2. **Merge commutativity** — a fleet report is byte-identical for
//!    any permutation of its input runs (proptest over shuffled
//!    3–5 run fleets, both JSON and HTML).
//! 3. **Flamegraph export** — the collapsed-stack export is one
//!    `frames;joined;by;semicolons <self_us>` line per span, directly
//!    consumable by inferno / speedscope.
//! 4. **Artifact round trip** — a run written in the `--emit-dir`
//!    layout loads back and merges with intact identity and data.

use bt_repro::obs::schema::ProfileDoc;
use bt_repro::stat::{bisect_traces, FleetReport, RunArtifacts};
use bt_repro::torrents::{run_scenario, torrent, RunConfig};
use proptest::prelude::*;

fn traced_cfg(seed: u64) -> RunConfig {
    RunConfig {
        seed,
        trace_sample: Some(1),
        ..RunConfig::quick()
    }
}

#[test]
fn bisect_reports_identical_runs_and_pinpoints_seed_divergence() {
    let a = run_scenario(&torrent(2), &traced_cfg(42));
    let a2 = run_scenario(&torrent(2), &traced_cfg(42));
    let b = run_scenario(&torrent(2), &traced_cfg(43));
    let trace_a = a.trace_jsonl.expect("causal trace requested");
    let trace_a2 = a2.trace_jsonl.expect("causal trace requested");
    let trace_b = b.trace_jsonl.expect("causal trace requested");

    // Same seed: the debugger must assert identity, not just silence.
    let same = bisect_traces(&trace_a, &trace_a2, 3);
    assert!(same.is_identical(), "same-seed traces diverged: {same:?}");
    assert!(same.to_json().contains("\"first_divergence\":null"));

    // Different seed: a first diverging event with payloads and context.
    let diff = bisect_traces(&trace_a, &trace_b, 3);
    assert!(!diff.is_identical(), "seeds 42 vs 43 produced equal traces");
    let json = diff.to_json();
    let parsed = bt_repro::obs::parse_json(&json).unwrap();
    let div = parsed.get("first_divergence").expect("divergence object");
    let index = div
        .get("index")
        .and_then(bt_repro::obs::JsonValue::as_u64)
        .expect("divergence index");
    assert!(div.get("a").is_some() && div.get("b").is_some());
    let window = div.get("window_a").unwrap().as_array().unwrap();
    assert!(!window.is_empty(), "no ±K context around the divergence");
    // The report's index must point at a real disagreement in the raw
    // JSONL: every line before it matches, the named line does not.
    let (la, lb): (Vec<_>, Vec<_>) = (trace_a.lines().collect(), trace_b.lines().collect());
    let i = index as usize;
    assert_eq!(la[..i], lb[..i], "lines before the divergence differ");
    assert_ne!(la.get(i), lb.get(i), "divergent line actually matches");
}

/// Build a small synthetic run for permutation tests; `seed` keys the
/// run's identity, `bound`/`n` shape its histogram so fleet quantiles
/// actually depend on the merge being commutative.
fn synth_run(scenario: &str, seed: u64, bound: u64, n: u64) -> RunArtifacts {
    use bt_repro::obs::schema::{HistogramDoc, MetricsDoc, SeriesDoc, SeriesEntry};
    let mut metrics = MetricsDoc {
        at_micros: seed,
        ..MetricsDoc::default()
    };
    metrics.counters.insert("sim.events".to_string(), n);
    metrics.gauges.insert("live.starved_peers".to_string(), 0);
    metrics.histograms.insert(
        "core.choke_round_us".to_string(),
        HistogramDoc {
            count: n,
            sum: bound * n,
            buckets: vec![(bound, n)],
            overflow: 0,
        },
    );
    let mut series = SeriesDoc::default();
    series.series.insert(
        "live.entropy".to_string(),
        SeriesEntry {
            stride: 1,
            points: vec![(0, 0.4), (10, 0.7 + (seed % 3) as f64 * 0.1)],
        },
    );
    RunArtifacts {
        scenario: scenario.to_string(),
        seed,
        peers: 10 + seed,
        pieces: 8,
        events_processed: n,
        completed_peers: 10,
        // The digest pins the run's entire behaviour, so it must vary
        // with everything that shapes this run's data: two synthetic
        // runs agree on (key, digest) only when they are the same run.
        digest: format!(
            "{:016x}",
            (seed ^ bound.rotate_left(17) ^ n.rotate_left(39)).wrapping_mul(0x9e37_79b9)
        ),
        metrics: Some(metrics),
        series: Some(series),
        profile: None,
        trace_jsonl: None,
    }
}

proptest! {
    /// `btstat merge` output is a pure function of the *set* of runs:
    /// any shuffle of the same fleet yields byte-identical JSON + HTML.
    #[test]
    fn merge_is_byte_identical_over_shuffled_fleets(
        params in proptest::collection::vec((0u8..2, 0u64..50, 1u64..100_000, 1u64..500), 3..=5),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let runs: Vec<RunArtifacts> = params
            .iter()
            .map(|&(sc, seed, bound, n)| {
                synth_run(if sc == 0 { "flash" } else { "crowd" }, seed, bound, n)
            })
            .collect();
        let baseline = FleetReport::merge(runs.clone());

        // Deterministic Fisher–Yates driven by the generated seed.
        let mut shuffled = runs;
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let permuted = FleetReport::merge(shuffled);

        prop_assert_eq!(baseline.to_json(), permuted.to_json());
        prop_assert_eq!(baseline.to_html(), permuted.to_html());
    }
}

#[test]
fn flamegraph_export_is_collapsed_stack_lines() {
    let cfg = RunConfig {
        profile: true,
        ..RunConfig::quick()
    };
    let outcome = run_scenario(&torrent(2), &cfg);
    let profile = outcome.profile.expect("profiler requested");
    let doc = ProfileDoc::parse(&profile.to_json()).unwrap();
    let collapsed = doc.to_collapsed();
    assert!(!collapsed.is_empty(), "profiled run produced no spans");
    let mut self_total = 0u64;
    for line in collapsed.lines() {
        // inferno's collapsed format: `frame;frame;frame <value>`.
        let (stack, value) = line.rsplit_once(' ').expect("no value column");
        assert!(
            !stack.is_empty() && !stack.contains(' '),
            "bad stack {line:?}"
        );
        self_total += value.parse::<u64>().expect("value is not an integer");
    }
    assert!(
        collapsed.lines().any(|l| l.contains(';')),
        "no nested frames in a simulator profile"
    );
    // Self times stack back up to the root total: no double counting.
    let roots: u64 = doc
        .flat()
        .iter()
        .filter(|(name, _)| !name.contains('/'))
        .map(|(_, s)| s.total_us)
        .sum();
    assert_eq!(
        self_total, roots,
        "collapsed values do not sum to root total"
    );
}

#[test]
fn artifact_directory_round_trips_through_load_and_merge() {
    let base = std::env::temp_dir().join(format!("bt-fleet-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut dirs = Vec::new();
    for seed in [42u64, 43] {
        let cfg = RunConfig {
            metrics: true,
            series: true,
            profile: true,
            ..traced_cfg(seed)
        };
        let outcome = run_scenario(&torrent(19), &cfg);
        let dir = base.join(format!("s{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = bt_repro::stat::artifacts::manifest_json(
            "torrent-19",
            seed,
            (outcome.scaled.seeds + outcome.scaled.leechers) as u64,
            outcome.scaled.pieces as u64,
            outcome.result.events_processed,
            outcome.result.completed_peers as u64,
            &format!("{:016x}", outcome.result.digest()),
        );
        std::fs::write(dir.join("run.json"), manifest).unwrap();
        let last = outcome.result.metrics.last().expect("metrics requested");
        std::fs::write(dir.join("metrics.jsonl"), last.to_jsonl_line() + "\n").unwrap();
        std::fs::write(dir.join("series.json"), outcome.series.unwrap()).unwrap();
        std::fs::write(dir.join("profile.json"), outcome.profile.unwrap().to_json()).unwrap();
        std::fs::write(dir.join("trace.jsonl"), outcome.trace_jsonl.unwrap()).unwrap();
        dirs.push(dir);
    }

    let runs: Vec<RunArtifacts> = dirs
        .iter()
        .map(|d| RunArtifacts::load(d).unwrap())
        .collect();
    assert_eq!(runs[0].key(), "torrent-19-s42");
    assert_eq!(runs[1].key(), "torrent-19-s43");
    assert_ne!(runs[0].digest, runs[1].digest, "seed flip kept the digest");
    for run in &runs {
        assert!(run.metrics.is_some() && run.series.is_some());
        assert!(run.profile.is_some() && run.trace_jsonl.is_some());
        assert!(run.events_processed > 0);
    }

    let report = FleetReport::merge(runs.clone());
    let json = report.to_json();
    let parsed = bt_repro::obs::parse_json(&json).unwrap();
    assert_eq!(parsed.get("runs").unwrap().as_array().unwrap().len(), 2);
    assert!(!report.verdicts().is_empty());
    // The fleet counter is the sum of both runs' final snapshots.
    let fleet_events = report.metrics.counters["sim.events"];
    let per_run: u64 = runs
        .iter()
        .map(|r| r.metrics.as_ref().unwrap().counters["sim.events"])
        .sum();
    assert_eq!(fleet_events, per_run);
    let _ = std::fs::remove_dir_all(&base);
}
