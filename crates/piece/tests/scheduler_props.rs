//! Property-based tests for the request scheduler: under arbitrary
//! interleavings of requests, deliveries, chokes and hash failures, the
//! core invariants of §II-C.1 hold.

use bt_piece::{Availability, Bitfield, Geometry, PickContext, RandomPicker, RequestScheduler};
use bt_wire::metainfo::BLOCK_LEN;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

type Peer = u32;

#[derive(Debug, Clone)]
enum Op {
    /// Ask for up to `max` new requests for peer `p`.
    Request { p: Peer, max: usize },
    /// Deliver the `i`-th oldest outstanding block of peer `p`.
    Deliver { p: Peer, i: usize },
    /// Peer `p` chokes us.
    Choke { p: Peer },
    /// Peer `p` disconnects.
    Gone { p: Peer },
}

fn arb_op(peers: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..peers, 1usize..12).prop_map(|(p, max)| Op::Request { p, max }),
        4 => (0..peers, 0usize..8).prop_map(|(p, i)| Op::Deliver { p, i }),
        1 => (0..peers).prop_map(|p| Op::Choke { p }),
        1 => (0..peers).prop_map(|p| Op::Gone { p }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive the scheduler with arbitrary operation sequences and check:
    /// outside end game no block is outstanding twice; every accepted
    /// delivery is unique; completed pieces complete exactly once; and
    /// the local bitfield ends consistent with the deliveries.
    #[test]
    fn scheduler_invariants(ops in proptest::collection::vec(arb_op(4), 1..120), seed in 0u64..1000) {
        let pieces = 6u32;
        let geometry = Geometry::new(u64::from(pieces) * u64::from(2 * BLOCK_LEN), 2 * BLOCK_LEN);
        let mut sched: RequestScheduler<Peer> = RequestScheduler::new(geometry);
        let mut picker = RandomPicker;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut own = Bitfield::new(pieces);
        let mut availability = Availability::new(pieces);
        availability.add_peer(&Bitfield::full(pieces));
        let remote = Bitfield::full(pieces);

        // Shadow state: what we believe is outstanding per peer.
        let mut outstanding: HashMap<Peer, Vec<bt_wire::message::BlockRef>> = HashMap::new();
        let mut received: HashSet<(u32, u32)> = HashSet::new();
        let mut completed: HashSet<u32> = HashSet::new();

        for op in ops {
            match op {
                Op::Request { p, max } => {
                    let never = |_q: u32| false;
                    let ctx = PickContext {
                        own: &own,
                        remote: &remote,
                        availability: &availability,
                        in_progress: &never,
                        downloaded_pieces: own.count_ones(),
                    };
                    let reqs = sched.next_requests(p, &ctx, &mut picker, &mut rng, max);
                    prop_assert!(reqs.len() <= max);
                    let entry = outstanding.entry(p).or_default();
                    for r in reqs {
                        prop_assert!(!own.get(r.piece), "requested an owned piece");
                        prop_assert!(!received.contains(&(r.piece, r.offset)),
                            "requested an already received block");
                        prop_assert!(!entry.contains(&r), "duplicate request to same peer");
                        entry.push(r);
                    }
                    if !sched.in_endgame() {
                        // Outside end game, a block is outstanding at most
                        // once across ALL peers.
                        let mut seen = HashSet::new();
                        for blocks in outstanding.values() {
                            for b in blocks {
                                prop_assert!(seen.insert((b.piece, b.offset)),
                                    "block outstanding twice outside endgame");
                            }
                        }
                    }
                    prop_assert_eq!(sched.outstanding_to(p), outstanding[&p].len());
                }
                Op::Deliver { p, i } => {
                    let Some(blocks) = outstanding.get_mut(&p) else { continue };
                    if blocks.is_empty() { continue; }
                    let block = blocks.remove(i % blocks.len());
                    let receipt = sched.on_block_received(p, block);
                    let fresh = received.insert((block.piece, block.offset));
                    prop_assert_eq!(receipt.accepted, fresh,
                        "acceptance must equal novelty");
                    for (other, cancel) in receipt.cancels {
                        let o = outstanding.get_mut(&other).expect("cancel target known");
                        let pos = o.iter().position(|b| *b == cancel).expect("cancel was outstanding");
                        o.remove(pos);
                    }
                    if let Some(piece) = receipt.completed_piece {
                        prop_assert!(completed.insert(piece), "piece completed twice");
                        sched.on_piece_verified(piece);
                        own.set(piece);
                    }
                }
                Op::Choke { p } => {
                    let dropped = sched.on_choked(p);
                    let expected = outstanding.remove(&p).unwrap_or_default();
                    prop_assert_eq!(dropped.len(), expected.len());
                }
                Op::Gone { p } => {
                    let dropped = sched.on_peer_gone(p);
                    let expected = outstanding.remove(&p).unwrap_or_default();
                    prop_assert_eq!(dropped.len(), expected.len());
                }
            }
        }
        // Final consistency: every completed piece had all blocks received.
        for piece in &completed {
            for blk in 0..geometry.blocks_in_piece(*piece) {
                let offset = blk * BLOCK_LEN;
                prop_assert!(received.contains(&(*piece, offset)));
            }
        }
    }

    /// Driving a single peer to completion always terminates with the
    /// full bitfield, whatever the pipeline width.
    #[test]
    fn single_peer_download_terminates(max in 1usize..20, seed in 0u64..500) {
        let pieces = 5u32;
        let geometry = Geometry::new(u64::from(pieces) * u64::from(2 * BLOCK_LEN), 2 * BLOCK_LEN);
        let mut sched: RequestScheduler<Peer> = RequestScheduler::new(geometry);
        let mut picker = RandomPicker;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut own = Bitfield::new(pieces);
        let mut availability = Availability::new(pieces);
        availability.add_peer(&Bitfield::full(pieces));
        let remote = Bitfield::full(pieces);
        let mut steps = 0;
        while !own.is_complete() {
            steps += 1;
            prop_assert!(steps < 1000, "download did not terminate");
            let never = |_q: u32| false;
            let ctx = PickContext {
                own: &own,
                remote: &remote,
                availability: &availability,
                in_progress: &never,
                downloaded_pieces: own.count_ones(),
            };
            let reqs = sched.next_requests(0, &ctx, &mut picker, &mut rng, max);
            prop_assert!(!reqs.is_empty() || sched.total_outstanding() > 0,
                "stalled with nothing outstanding");
            for r in reqs {
                let receipt = sched.on_block_received(0, r);
                prop_assert!(receipt.accepted);
                if let Some(piece) = receipt.completed_piece {
                    sched.on_piece_verified(piece);
                    own.set(piece);
                }
            }
        }
        prop_assert_eq!(own.count_ones(), pieces);
    }
}
