//! Named scenario presets beyond Table I.
//!
//! The Table I runner reproduces the paper's torrents; these presets
//! package the *situations* the paper and its ablations reason about —
//! flash crowds, free-rider swarms, rationed trackers, super-seeded
//! starts — as ready-made [`SwarmSpec`] builders for library users and
//! tests.

use bt_core::Config;
use bt_sim::behavior::{BehaviorProfile, CapacityClass, Role};
use bt_sim::swarm::SwarmSpec;
use bt_sim::{NetModel, TopologySpec};
use bt_wire::peer_id::ClientKind;
use bt_wire::time::Duration;

/// Common knobs for the preset builders.
#[derive(Debug, Clone)]
pub struct PresetOptions {
    /// Master PRNG seed.
    pub seed: u64,
    /// Content size in 256 kB pieces.
    pub pieces: u32,
    /// Session length.
    pub duration: Duration,
    /// Base engine configuration.
    pub config: Config,
}

impl Default for PresetOptions {
    fn default() -> Self {
        PresetOptions {
            seed: 42,
            pieces: 48,
            duration: Duration::from_secs(2 * 3600),
            config: Config::default(),
        }
    }
}

fn base_spec(opts: &PresetOptions, peers: Vec<BehaviorProfile>) -> SwarmSpec {
    SwarmSpec::builder()
        .seed(opts.seed)
        .pieces(opts.pieces, 256 * 1024)
        .duration(opts.duration)
        .base_config(opts.config.clone())
        .peers(peers)
        .build()
}

fn dsl_leecher(join_secs: u64) -> BehaviorProfile {
    BehaviorProfile {
        role: Role::Leecher,
        client: ClientKind::Mainline402,
        capacity: CapacityClass::Dsl,
        join_at: Duration::from_secs(join_secs),
        seed_linger: Some(Duration::from_secs(900)),
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    }
}

/// A flash crowd: one fresh 20 kB/s initial seed, `leechers` empty peers
/// arriving within the first minute — §IV-A.2.a's transient regime. The
/// first leecher (index 1) is instrumented.
pub fn flash_crowd(leechers: usize, opts: &PresetOptions) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile::seed()];
    for i in 0..leechers {
        peers.push(dsl_leecher(i as u64 % 60));
    }
    let mut spec = base_spec(opts, peers);
    spec.local = Some(1);
    spec.available_fraction = 0.0; // every piece starts rare
    spec
}

/// A mega-swarm flash crowd: one fresh seed and `leechers` empty peers
/// arriving within the first minute, tuned so peer count is the only
/// scale axis. Content is small (`opts.pieces` × 64 kB), per-peer
/// connectivity is capped well below the mainline defaults, the tracker
/// rations its responses and uses the O(num_want) sampling path, peers
/// seed briefly after completing, and nothing is instrumented. This is
/// the shape behind the `flash_crowd_10k` / `flash_crowd_100k` scenarios.
pub fn mega_flash_crowd(leechers: usize, opts: &PresetOptions) -> SwarmSpec {
    let mut config = opts.config.clone();
    config.max_peer_set = 12;
    config.min_peer_set = 4;
    config.max_initiated = 6;
    let mut peers = Vec::with_capacity(leechers + 1);
    peers.push(BehaviorProfile::seed());
    for i in 0..leechers {
        let mut p = dsl_leecher(i as u64 % 60);
        p.seed_linger = Some(Duration::from_secs(180));
        peers.push(p);
    }
    SwarmSpec::builder()
        .seed(opts.seed)
        .pieces(opts.pieces, 64 * 1024)
        .duration(opts.duration)
        .base_config(config)
        .peers(peers)
        .available_fraction(0.0)
        .tracker_response_cap(Some(10))
        .scalable_tracker(true)
        .build()
}

/// Resolve a topology by built-in preset name, panicking with the
/// valid names on a typo — scenario presets are developer-facing.
fn named_topology(name: &str) -> TopologySpec {
    TopologySpec::preset(name).unwrap_or_else(|| {
        panic!(
            "unknown topology preset `{name}` (expected one of {:?})",
            bt_sim::PRESET_NAMES
        )
    })
}

/// A WAN flash crowd: [`flash_crowd`] running over a named full-duplex
/// topology preset (`homogeneous`, `asymmetric_dsl`,
/// `two_isp_bottleneck`) — per-direction bandwidth, asymmetric delay
/// and loss shape who unchokes whom, as on the paper's real torrents.
pub fn wan_flash_crowd(leechers: usize, topology: &str, opts: &PresetOptions) -> SwarmSpec {
    let mut spec = flash_crowd(leechers, opts);
    spec.net = Some(NetModel::FullDuplex(named_topology(topology)));
    spec
}

/// A WAN mega-swarm flash crowd: [`mega_flash_crowd`] over a named
/// topology preset. The shape behind `swarmrun --scenario
/// flash_crowd_10k --topology asymmetric_dsl`.
pub fn wan_mega_flash_crowd(leechers: usize, topology: &str, opts: &PresetOptions) -> SwarmSpec {
    let mut spec = mega_flash_crowd(leechers, opts);
    spec.net = Some(NetModel::FullDuplex(named_topology(topology)));
    spec
}

/// A steady-state swarm: `seeds` seeds plus a prepopulated leecher
/// population with ongoing arrivals; a fresh instrumented peer joins at
/// `join_secs`. The paper's torrent-7 regime in miniature.
pub fn steady_state(
    seeds: usize,
    leechers: usize,
    join_secs: u64,
    opts: &PresetOptions,
) -> SwarmSpec {
    let mut peers = Vec::new();
    for _ in 0..seeds {
        peers.push(BehaviorProfile::seed());
    }
    for i in 0..leechers {
        let mut p = dsl_leecher(i as u64 % 60);
        p.prepopulate = true;
        peers.push(p);
    }
    // A trickle of fresh arrivals keeps the population alive.
    for i in 0..leechers / 2 {
        peers.push(dsl_leecher(
            60 + (i as u64 * opts.duration.0 / 1_000_000) / (leechers as u64 / 2 + 1),
        ));
    }
    peers.push(BehaviorProfile {
        role: Role::Leecher,
        client: ClientKind::Mainline402,
        capacity: CapacityClass::Default,
        join_at: Duration::from_secs(join_secs),
        seed_linger: None,
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    });
    let mut spec = base_spec(opts, peers);
    spec.local = Some(spec.peers.len() - 1);
    spec
}

/// A swarm with a fraction of free riders among the leechers (§IV-B's
/// robustness question). No instrumented peer by default.
pub fn free_rider_swarm(honest: usize, free_riders: usize, opts: &PresetOptions) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile::seed(), BehaviorProfile::seed()];
    for i in 0..honest {
        peers.push(dsl_leecher(i as u64));
    }
    for i in 0..free_riders {
        peers.push(BehaviorProfile {
            role: Role::FreeRider,
            client: ClientKind::FreeRider,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(i as u64),
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    base_spec(opts, peers)
}

/// A super-seeded start: the initial seed runs the §IV-A.4 super-seeding
/// policy and is instrumented (index 0), serving a flash crowd.
pub fn super_seeded_start(leechers: usize, opts: &PresetOptions) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile {
        role: Role::SuperSeed,
        client: ClientKind::SuperSeeder,
        capacity: CapacityClass::Default,
        join_at: Duration::ZERO,
        seed_linger: None,
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    }];
    for i in 0..leechers {
        peers.push(dsl_leecher(i as u64 % 60));
    }
    let mut spec = base_spec(opts, peers);
    spec.local = Some(0);
    spec.available_fraction = 0.0;
    spec
}

/// A rationed-tracker swarm (2 peers per announce) with peer exchange
/// enabled — the `ablation-pex` situation as a reusable preset. The last
/// peer is an instrumented late joiner.
pub fn rationed_tracker(leechers: usize, opts: &PresetOptions) -> SwarmSpec {
    let mut opts = opts.clone();
    opts.config.pex_enabled = true;
    let mut spec = steady_state(2, leechers, 120, &opts);
    spec.tracker_response_cap = Some(2);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_sim::Swarm;

    fn opts() -> PresetOptions {
        PresetOptions {
            pieces: 12,
            duration: Duration::from_secs(4000),
            ..PresetOptions::default()
        }
    }

    #[test]
    fn flash_crowd_runs_to_completion() {
        let spec = flash_crowd(8, &opts());
        assert_eq!(spec.local, Some(1));
        assert_eq!(spec.available_fraction, 0.0);
        let result = Swarm::new(spec).run();
        assert!(
            result.completed_peers >= 7,
            "completed {}",
            result.completed_peers
        );
        assert!(result.trace.is_some());
    }

    #[test]
    fn steady_state_instruments_the_late_joiner() {
        let spec = steady_state(1, 10, 90, &opts());
        let local = spec.local.unwrap();
        assert_eq!(local, spec.peers.len() - 1);
        assert_eq!(spec.peers[local].join_at, Duration::from_secs(90));
        let result = Swarm::new(spec).run();
        assert!(result.completion[local].is_some(), "late joiner finished");
    }

    #[test]
    fn free_rider_swarm_shapes() {
        let spec = free_rider_swarm(6, 2, &opts());
        let riders = spec
            .peers
            .iter()
            .filter(|p| matches!(p.role, Role::FreeRider))
            .count();
        assert_eq!(riders, 2);
        let result = Swarm::new(spec).run();
        assert!(result.completed_peers >= 6);
    }

    #[test]
    fn super_seeded_start_instruments_the_seed() {
        let spec = super_seeded_start(6, &opts());
        assert_eq!(spec.local, Some(0));
        let result = Swarm::new(spec).run();
        let trace = result.trace.unwrap();
        // The instrumented peer is the (super) seed: it uploads, never
        // downloads.
        use bt_instrument::trace::TraceEvent;
        assert!(trace
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::BlockSent { .. })));
        assert!(!trace
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::BlockReceived { .. })));
    }

    #[test]
    fn wan_flash_crowd_attaches_the_topology_and_completes() {
        let spec = wan_flash_crowd(8, "asymmetric_dsl", &opts());
        match &spec.net {
            Some(NetModel::FullDuplex(t)) => assert_eq!(t.name, "asymmetric_dsl"),
            other => panic!("expected a full-duplex net model, got {other:?}"),
        }
        let mut spec = spec;
        spec.duration = Duration::from_secs(12_000);
        let result = Swarm::new(spec).run();
        assert!(
            result.completed_peers >= 7,
            "completed {}",
            result.completed_peers
        );
    }

    #[test]
    #[should_panic(expected = "unknown topology preset")]
    fn wan_presets_reject_typos() {
        let _ = wan_mega_flash_crowd(10, "asymetric_dsl", &opts());
    }

    #[test]
    fn rationed_tracker_enables_pex() {
        let spec = rationed_tracker(8, &opts());
        assert!(spec.base_config.pex_enabled);
        assert_eq!(spec.tracker_response_cap, Some(2));
        let result = Swarm::new(spec).run();
        assert!(result.completed_peers > 0);
    }
}
