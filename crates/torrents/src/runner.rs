//! Scenario runner: Table I rows → swarm specs → instrumented traces.
//!
//! Real torrents with thousands of peers and gigabytes of content cannot
//! be replayed at full scale on one machine, so the runner applies an
//! explicit, printed *scaling*: peer counts shrink proportionally
//! (preserving Table I's seed/leecher ratio — the quantity the paper
//! argues actually stresses the algorithms, §III-E.2) and content size
//! maps to a bounded piece count at the real 256 kB piece size. No
//! silent truncation: [`ScaledParams`] records exactly what ran.

use crate::table1::ScenarioSpec;
use bt_core::Config;
use bt_instrument::trace::Trace;
use bt_sim::behavior::{BehaviorProfile, CapacityClass, Role};
use bt_sim::swarm::{Swarm, SwarmResult, SwarmSpec};
use bt_wire::peer_id::ClientKind;
use bt_wire::time::Duration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scaling and session parameters for a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Master seed (scenario seeds derive from it and the torrent ID).
    pub seed: u64,
    /// Cap on simulated peers (seeds + leechers, before arrivals).
    pub max_peers: usize,
    /// Piece-count bounds for the scaled content.
    pub min_pieces: u32,
    /// Upper bound on pieces.
    pub max_pieces: u32,
    /// Simulated session length. The paper ran 8 hours; the default here
    /// is shorter but long past the local peer's completion.
    pub session: Duration,
    /// Fraction of leechers that are free riders (§IV-B robustness).
    pub free_rider_fraction: f64,
    /// Fraction of extra churner joins (the <10 s noise peers).
    pub churner_fraction: f64,
    /// Fraction of initial leechers that crash and restart mid-session,
    /// returning with the same IP and a fresh peer-ID suffix (the §III-D
    /// multi-ID noise: the paper saw 0–26 % of IPs with several IDs,
    /// mean ≈ 9 %).
    pub restarter_fraction: f64,
    /// Extra leechers arriving during the session, as a fraction of the
    /// initial leecher population.
    pub arrival_fraction: f64,
    /// Fraction of pieces pre-replicated beyond the initial seed for
    /// *transient* torrents (the rest stay rare).
    pub transient_available: f64,
    /// Engine configuration shared by all peers (the local peer included).
    pub base_config: Config,
    /// Carry real bytes and verify hashes (slower; for small scenarios).
    pub real_data: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 42,
            max_peers: 120,
            min_pieces: 64,
            max_pieces: 256,
            session: Duration::from_secs(3600),
            free_rider_fraction: 0.05,
            churner_fraction: 0.05,
            restarter_fraction: 0.08,
            arrival_fraction: 1.0,
            transient_available: 0.35,
            base_config: Config::default(),
            real_data: false,
        }
    }
}

impl RunConfig {
    /// A smaller, faster profile for tests and examples.
    pub fn quick() -> RunConfig {
        RunConfig {
            max_peers: 40,
            min_pieces: 24,
            max_pieces: 48,
            session: Duration::from_secs(1800),
            ..RunConfig::default()
        }
    }
}

/// What actually ran after scaling (printed by every harness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledParams {
    /// Torrent ID.
    pub id: u32,
    /// Simulated seeds.
    pub seeds: u32,
    /// Simulated leechers (initial population, local peer excluded).
    pub leechers: u32,
    /// Pieces in the scaled content.
    pub pieces: u32,
    /// Piece length (bytes).
    pub piece_len: u32,
    /// Scale factor applied to the peer population.
    pub peer_scale: f64,
    /// Session length in seconds.
    pub session_secs: u64,
}

/// A completed scenario: the local peer's trace plus swarm-level results.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The Table I row that was simulated.
    pub spec: ScenarioSpec,
    /// The scaling that was applied.
    pub scaled: ScaledParams,
    /// The instrumented local peer's trace.
    pub trace: Trace,
    /// Swarm-level results (completions, tracker stats).
    pub result: SwarmResult,
}

/// Scale a Table I row under `cfg`.
pub fn scale(spec: &ScenarioSpec, cfg: &RunConfig) -> ScaledParams {
    let total = spec.seeds + spec.leechers;
    let peer_scale = if total as usize <= cfg.max_peers {
        1.0
    } else {
        cfg.max_peers as f64 / f64::from(total)
    };
    let mut seeds = (f64::from(spec.seeds) * peer_scale).round() as u32;
    if spec.seeds > 0 {
        seeds = seeds.max(1);
    }
    let mut leechers = (f64::from(spec.leechers) * peer_scale).round() as u32;
    if spec.leechers > 0 {
        leechers = leechers.max(2);
    }
    // 256 kB pieces: size → piece count, clamped. (Table I's sizes range
    // 6 MB – 3 GB; the *relative* sizes survive the clamp.)
    let pieces = (spec.size_mb * 4).clamp(cfg.min_pieces, cfg.max_pieces);
    ScaledParams {
        id: spec.id,
        seeds,
        leechers,
        pieces,
        piece_len: 256 * 1024,
        peer_scale,
        session_secs: cfg.session.0 / 1_000_000,
    }
}

/// Build the swarm spec for one Table I row. The *local* (instrumented)
/// peer is always the last entry and joins a torrent that is already
/// running, exactly like the paper's measurement client.
pub fn build_swarm_spec(spec: &ScenarioSpec, cfg: &RunConfig) -> (SwarmSpec, ScaledParams) {
    let scaled = scale(spec, cfg);
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(2654435761)
            .wrapping_add(u64::from(spec.id)),
    );
    let mut peers: Vec<BehaviorProfile> = Vec::new();

    let clients = [
        ClientKind::Mainline402,
        ClientKind::Mainline400,
        ClientKind::Mainline362,
        ClientKind::Azureus,
        ClientKind::BitComet,
        ClientKind::LibTorrent,
    ];
    let pick_client = |rng: &mut SmallRng| clients[rng.random_range(0..clients.len())];

    // Initial seeds. The first is the *initial seed* of the torrent with
    // the paper's default 20 kB/s upload; later seeds get the usual mix.
    for i in 0..scaled.seeds {
        let capacity = if i == 0 {
            CapacityClass::Default
        } else {
            CapacityClass::sample(&mut rng)
        };
        peers.push(BehaviorProfile {
            role: Role::Seed,
            client: pick_client(&mut rng),
            capacity,
            join_at: Duration::ZERO,
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    // Initial leechers: capacity mix, some free riders, staggered joins
    // within the first minute (they were already present; the stagger
    // only avoids a same-instant thundering herd).
    for _ in 0..scaled.leechers {
        let role = if rng.random_range(0.0..1.0) < cfg.free_rider_fraction {
            Role::FreeRider
        } else {
            Role::Leecher
        };
        let restart_after = if rng.random_range(0.0..1.0) < cfg.restarter_fraction {
            Some(Duration::from_secs(rng.random_range(300..1500)))
        } else {
            None
        };
        peers.push(BehaviorProfile {
            role,
            client: pick_client(&mut rng),
            capacity: CapacityClass::sample(&mut rng),
            join_at: Duration::from_millis(rng.random_range(0..60_000)),
            seed_linger: Some(Duration::from_secs(rng.random_range(300..1200))),
            depart_at: None,
            prepopulate: true,
            restart_after,
        });
    }
    // Churners and later arrivals spread over the session.
    let churners = (f64::from(scaled.leechers) * cfg.churner_fraction).round() as u32;
    for _ in 0..churners {
        peers.push(BehaviorProfile {
            role: Role::Churner,
            client: pick_client(&mut rng),
            capacity: CapacityClass::sample(&mut rng),
            join_at: Duration(rng.random_range(0..cfg.session.0)),
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    let arrivals = (f64::from(scaled.leechers) * cfg.arrival_fraction).round() as u32;
    for _ in 0..arrivals {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: pick_client(&mut rng),
            capacity: CapacityClass::sample(&mut rng),
            join_at: Duration(rng.random_range(60_000_000..cfg.session.0.max(120_000_000))),
            seed_linger: Some(Duration::from_secs(rng.random_range(300..1200))),
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    // The instrumented local peer: paper defaults, joins shortly after
    // the initial minute.
    let local_idx = peers.len();
    peers.push(BehaviorProfile {
        role: Role::Leecher,
        client: ClientKind::Mainline402,
        capacity: CapacityClass::Default,
        join_at: Duration::from_secs(90),
        seed_linger: None, // stays for the whole session, like the paper
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    });

    let swarm_spec = SwarmSpec {
        seed: cfg.seed.wrapping_add(u64::from(spec.id) * 1_000_003),
        total_len: u64::from(scaled.pieces) * u64::from(scaled.piece_len),
        piece_len: scaled.piece_len,
        real_data: cfg.real_data,
        duration: cfg.session,
        base_config: cfg.base_config.clone(),
        peers,
        local: Some(local_idx),
        available_fraction: if spec.transient {
            cfg.transient_available
        } else {
            1.0
        },
        prepop_completion_max: 0.9,
        ..SwarmSpec::default()
    };
    (swarm_spec, scaled)
}

/// Run one Table I scenario end to end.
pub fn run_scenario(spec: &ScenarioSpec, cfg: &RunConfig) -> ScenarioOutcome {
    let (mut swarm_spec, scaled) = build_swarm_spec(spec, cfg);
    // Label the trace with the Table I identity.
    let result = Swarm::new(std::mem::take(&mut swarm_spec)).run();
    let mut trace = result.trace.as_ref().expect("local peer recorded").clone();
    trace.meta.torrent = spec.label();
    trace.meta.torrent_id = spec.id;
    ScenarioOutcome {
        spec: *spec,
        scaled,
        trace,
        result,
    }
}

/// Run every Table I scenario in sequence, calling `progress` after each.
pub fn run_table1(
    cfg: &RunConfig,
    mut progress: impl FnMut(&ScenarioOutcome),
) -> Vec<ScenarioOutcome> {
    let mut out = Vec::new();
    for spec in crate::table1::table1() {
        let outcome = run_scenario(&spec, cfg);
        progress(&outcome);
        out.push(outcome);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::torrent;

    #[test]
    fn scaling_preserves_ratio_direction() {
        let cfg = RunConfig::default();
        let s8 = scale(&torrent(8), &cfg); // 1 : 861
        assert_eq!(s8.seeds, 1, "single-seed torrents keep exactly one seed");
        assert!(s8.leechers > 50);
        let s25 = scale(&torrent(25), &cfg); // 11641 : 5418 (seed-heavy)
        assert!(
            s25.seeds > s25.leechers,
            "seed-heavy torrents stay seed-heavy"
        );
        let s2 = scale(&torrent(2), &cfg); // tiny torrent: unscaled
        assert_eq!(s2.peer_scale, 1.0);
        assert_eq!(s2.seeds, 1);
        assert_eq!(s2.leechers, 2);
        let s19 = scale(&torrent(19), &cfg); // 160 : 5, mildly scaled
        assert!(
            s19.seeds > 20 * s19.leechers,
            "ratio 32:1 preserved in direction"
        );
    }

    #[test]
    fn piece_counts_bounded_but_ordered() {
        let cfg = RunConfig::default();
        let small = scale(&torrent(19), &cfg); // 6 MB
        let large = scale(&torrent(8), &cfg); // 3000 MB
        assert_eq!(small.pieces, cfg.min_pieces);
        assert_eq!(large.pieces, cfg.max_pieces);
        assert!(small.pieces < large.pieces);
    }

    #[test]
    fn swarm_spec_marks_transient_availability() {
        let cfg = RunConfig::quick();
        let (spec8, _) = build_swarm_spec(&torrent(8), &cfg);
        assert!((spec8.available_fraction - cfg.transient_available).abs() < 1e-9);
        let (spec7, _) = build_swarm_spec(&torrent(7), &cfg);
        assert_eq!(spec7.available_fraction, 1.0);
    }

    #[test]
    fn local_peer_is_last_and_instrumented() {
        let cfg = RunConfig::quick();
        let (spec, _) = build_swarm_spec(&torrent(3), &cfg);
        assert_eq!(spec.local, Some(spec.peers.len() - 1));
        let local = &spec.peers[spec.peers.len() - 1];
        assert_eq!(local.client, ClientKind::Mainline402);
        assert_eq!(local.capacity, CapacityClass::Default);
    }

    #[test]
    fn quick_scenario_runs_and_labels_trace() {
        let cfg = RunConfig::quick();
        let outcome = run_scenario(&torrent(3), &cfg);
        assert_eq!(outcome.trace.meta.torrent_id, 3);
        assert_eq!(outcome.trace.meta.torrent, "torrent-03");
        assert!(!outcome.trace.is_empty());
        // The local peer should complete this small, seeded torrent.
        let local = outcome.result.completion.last().unwrap();
        assert!(local.is_some(), "local peer did not finish torrent 3");
    }

    #[test]
    fn deterministic_outcomes() {
        let cfg = RunConfig::quick();
        let a = run_scenario(&torrent(2), &cfg);
        let b = run_scenario(&torrent(2), &cfg);
        assert_eq!(a.trace.events, b.trace.events);
    }
}
