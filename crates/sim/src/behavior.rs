//! Peer behaviour profiles.
//!
//! The paper's measurements face a zoo of real clients: standard
//! mainline-like peers, free riders, super-seeding plugins, peers that
//! join with almost all pieces, and "misbehaving clients" that churn
//! through the peer set in seconds (§III-D, §IV-A.1). A
//! [`BehaviorProfile`] bundles those traits for one simulated peer, and
//! [`CapacityClass`] models the asymmetric-access heterogeneity §IV-B.1's
//! fairness discussion depends on.

use bt_core::Config;
use bt_wire::peer_id::ClientKind;
use bt_wire::time::Duration;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Access-link class for a simulated peer (bytes/second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapacityClass {
    /// Paper default: 20 kB/s up, high download (the instrumented client).
    Default,
    /// Slow asymmetric DSL: 16 kB/s up / 128 kB/s down.
    Dsl,
    /// Fast asymmetric cable: 64 kB/s up / 512 kB/s down.
    Cable,
    /// University/backbone peer: 1.5 MB/s symmetric (the "very fast seed"
    /// the paper notes can bias results).
    Campus,
    /// Custom capacities (up, down).
    Custom(u64, u64),
}

impl CapacityClass {
    /// Upload capacity in bytes/second.
    pub fn upload(&self) -> u64 {
        match self {
            CapacityClass::Default => 20 * 1024,
            CapacityClass::Dsl => 16 * 1024,
            CapacityClass::Cable => 64 * 1024,
            CapacityClass::Campus => 1536 * 1024,
            CapacityClass::Custom(up, _) => *up,
        }
    }

    /// Download capacity in bytes/second.
    pub fn download(&self) -> u64 {
        match self {
            CapacityClass::Default => 1500 * 1024,
            CapacityClass::Dsl => 128 * 1024,
            CapacityClass::Cable => 512 * 1024,
            CapacityClass::Campus => 1536 * 1024,
            CapacityClass::Custom(_, down) => *down,
        }
    }

    /// Sample a class from the paper-era Internet mix: mostly DSL, some
    /// cable, a few campus peers.
    pub fn sample(rng: &mut SmallRng) -> CapacityClass {
        match rng.random_range(0..100u32) {
            0..=59 => CapacityClass::Dsl,
            60..=89 => CapacityClass::Cable,
            _ => CapacityClass::Campus,
        }
    }
}

/// What a peer does over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Role {
    /// Starts with every piece and serves until departure.
    Seed,
    /// Starts empty, downloads, then lingers as a seed for a while.
    Leecher,
    /// Leecher that never uploads (§IV-B).
    FreeRider,
    /// Joins already holding this fraction of the pieces (the §IV-A.1
    /// "peers that join the peer set with almost all pieces").
    AlmostDone(f64),
    /// Joins and leaves within seconds without transferring anything —
    /// the noise the paper filters with its 10-second rule.
    Churner,
    /// A seed running the super-seeding option (§IV-A.1 artefact).
    SuperSeed,
}

/// Full behaviour profile of one simulated peer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorProfile {
    /// Lifecycle role.
    pub role: Role,
    /// Client implementation family (drives the peer-ID prefix).
    pub client: ClientKind,
    /// Access-link class.
    pub capacity: CapacityClass,
    /// When the peer joins, relative to simulation start.
    pub join_at: Duration,
    /// How long a leecher lingers as seed after completing; `None` = stays
    /// until the end of the run.
    pub seed_linger: Option<Duration>,
    /// Hard departure time, if any (overrides everything else).
    pub depart_at: Option<Duration>,
    /// Pre-existing swarm member: the swarm builder gives it a random
    /// partial bitfield drawn from the *available* pieces, modelling the
    /// download progress it made before the session began.
    pub prepopulate: bool,
    /// Crash-and-restart interval: the client drops all connections and
    /// comes back a few seconds later with the *same IP but a fresh
    /// random peer-ID suffix* — the §III-D identification noise ("this
    /// random string is regenerated each time the client is restarted").
    /// Downloaded pieces survive the restart, as on a real disk.
    pub restart_after: Option<Duration>,
}

impl BehaviorProfile {
    /// A standard seed present from the start.
    pub fn seed() -> BehaviorProfile {
        BehaviorProfile {
            role: Role::Seed,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Default,
            join_at: Duration::ZERO,
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        }
    }

    /// A standard leecher joining at `join_at`.
    pub fn leecher(join_at: Duration) -> BehaviorProfile {
        BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Default,
            join_at,
            seed_linger: Some(Duration::from_secs(30 * 60)),
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        }
    }

    /// The engine [`Config`] this profile implies.
    pub fn engine_config(&self, base: &Config) -> Config {
        let mut cfg = base.clone();
        cfg.max_upload_rate = self.capacity.upload();
        cfg.max_download_rate = self.capacity.download();
        match self.role {
            Role::FreeRider => cfg.upload_disabled = true,
            Role::SuperSeed => cfg.super_seed = true,
            _ => {}
        }
        cfg
    }

    /// Fraction of pieces held at join time.
    pub fn initial_completion(&self) -> f64 {
        match self.role {
            Role::Seed | Role::SuperSeed => 1.0,
            Role::AlmostDone(f) => f.clamp(0.0, 1.0),
            _ => 0.0,
        }
    }

    /// True for roles that upload nothing.
    pub fn is_free_rider(&self) -> bool {
        matches!(self.role, Role::FreeRider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn capacity_values() {
        assert_eq!(CapacityClass::Default.upload(), 20 * 1024);
        assert_eq!(CapacityClass::Custom(5, 9).upload(), 5);
        assert_eq!(CapacityClass::Custom(5, 9).download(), 9);
        assert!(CapacityClass::Campus.upload() > CapacityClass::Dsl.upload());
    }

    #[test]
    fn sample_covers_classes() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(format!("{:?}", CapacityClass::sample(&mut rng)));
        }
        assert!(
            seen.len() >= 3,
            "expected DSL/Cable/Campus in 200 draws: {seen:?}"
        );
    }

    #[test]
    fn profile_to_config() {
        let base = Config::default();
        let mut p = BehaviorProfile::leecher(Duration::ZERO);
        p.role = Role::FreeRider;
        p.capacity = CapacityClass::Cable;
        let cfg = p.engine_config(&base);
        assert!(cfg.upload_disabled);
        assert_eq!(cfg.max_upload_rate, 64 * 1024);
        assert!(p.is_free_rider());
    }

    #[test]
    fn initial_completion_by_role() {
        assert_eq!(BehaviorProfile::seed().initial_completion(), 1.0);
        assert_eq!(
            BehaviorProfile::leecher(Duration::ZERO).initial_completion(),
            0.0
        );
        let mut p = BehaviorProfile::leecher(Duration::ZERO);
        p.role = Role::AlmostDone(0.95);
        assert!((p.initial_completion() - 0.95).abs() < 1e-12);
        p.role = Role::AlmostDone(2.0);
        assert_eq!(p.initial_completion(), 1.0, "clamped");
    }
}
