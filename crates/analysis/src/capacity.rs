//! Service-capacity analysis.
//!
//! The paper's §I frames content replication through Yang & de Veciana
//! [25]: "the capacity of the network to serve content grows
//! exponentially with time in the case of a flash crowd". The simulator
//! reports per-peer completion times; this module turns them into the
//! completion curve and capacity metrics that check the claim:
//!
//! * the cumulative completion curve `N(t)`;
//! * the early-phase doubling time (exponential growth signature);
//! * the steady completion rate once capacity saturates.

use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};

/// Completion-curve statistics of one swarm run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityCurve {
    /// Sorted completion times (seconds).
    pub completions: Vec<f64>,
}

impl CapacityCurve {
    /// Build from the simulator's per-peer completion times.
    pub fn from_completions(completion: &[Option<Instant>]) -> CapacityCurve {
        let mut completions: Vec<f64> = completion
            .iter()
            .flatten()
            .map(|t| t.as_secs_f64())
            .collect();
        completions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        CapacityCurve { completions }
    }

    /// Number of peers complete at time `t` (the curve `N(t)`).
    pub fn completed_by(&self, t_secs: f64) -> usize {
        self.completions.partition_point(|&c| c <= t_secs)
    }

    /// Time of the `n`-th completion (1-based), if it happened.
    pub fn time_of(&self, n: usize) -> Option<f64> {
        if n == 0 {
            return None;
        }
        self.completions.get(n - 1).copied()
    }

    /// Early-phase doubling times: the gaps t(2) − t(1), t(4) − t(2),
    /// t(8) − t(4)… Exponential capacity growth (Yang & de Veciana)
    /// shows as *roughly constant* doubling times; a client-server
    /// bottleneck would show them doubling too.
    pub fn doubling_times(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut n = 1usize;
        while let (Some(a), Some(b)) = (self.time_of(n), self.time_of(n * 2)) {
            out.push(b - a);
            n *= 2;
        }
        out
    }

    /// Mean completion rate (peers/second) between the `from`-th and
    /// `to`-th completions.
    pub fn rate_between(&self, from: usize, to: usize) -> Option<f64> {
        let (a, b) = (self.time_of(from)?, self.time_of(to)?);
        if b <= a {
            return None;
        }
        Some((to - from) as f64 / (b - a))
    }

    /// True when the early doubling times do *not* grow like a
    /// client-server system's would: the last early doubling time is
    /// under `factor` × the first. With exponential capacity growth the
    /// ratio stays near 1; client-server service makes it ≈ 2 per step.
    pub fn grows_superlinearly(&self, factor: f64) -> bool {
        let d = self.doubling_times();
        match (d.first(), d.last()) {
            (Some(&first), Some(&last)) if d.len() >= 2 && first > 0.0 => last < factor * first,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(times: &[u64]) -> CapacityCurve {
        let completions: Vec<Option<Instant>> =
            times.iter().map(|&t| Some(Instant::from_secs(t))).collect();
        CapacityCurve::from_completions(&completions)
    }

    #[test]
    fn basic_curve_queries() {
        let c = curve(&[100, 50, 200, 400]);
        assert_eq!(c.completions, vec![50.0, 100.0, 200.0, 400.0]);
        assert_eq!(c.completed_by(150.0), 2);
        assert_eq!(c.time_of(1), Some(50.0));
        assert_eq!(c.time_of(5), None);
        assert_eq!(c.time_of(0), None);
    }

    #[test]
    fn exponential_growth_has_constant_doubling() {
        // Completions at 100, 200, …: t(2^k) = 100·(k+1) ⇒ doubling times
        // constant at 100 s.
        let times: Vec<u64> = (0..16)
            .map(|i| 100 * (64 - (i as f64).log2().floor() as u64))
            .collect();
        // Simpler: construct directly — completions such that t(1)=100,
        // t(2)=200, t(4)=300, t(8)=400.
        let mut v = vec![100, 200];
        v.extend([250, 300]); // 3rd, 4th
        v.extend([320, 340, 360, 400]); // 5th..8th
        let c = curve(&v);
        let d = c.doubling_times();
        assert_eq!(d, vec![100.0, 100.0, 100.0]);
        assert!(c.grows_superlinearly(1.5));
        let _ = times;
    }

    #[test]
    fn client_server_growth_detected() {
        // A fixed-capacity server finishing one peer every 100 s:
        // t(n) = 100·n ⇒ doubling times 100, 200, 400 (growing ×2).
        let v: Vec<u64> = (1..=8).map(|n| n * 100).collect();
        let c = curve(&v);
        assert_eq!(c.doubling_times(), vec![100.0, 200.0, 400.0]);
        assert!(!c.grows_superlinearly(1.5));
    }

    #[test]
    fn rates() {
        let v: Vec<u64> = (1..=10).map(|n| n * 10).collect();
        let c = curve(&v);
        assert!((c.rate_between(1, 10).unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(c.rate_between(5, 5), None);
    }

    #[test]
    fn empty_and_tiny_curves() {
        let c = CapacityCurve::from_completions(&[None, None]);
        assert!(c.completions.is_empty());
        assert!(!c.grows_superlinearly(2.0));
        assert_eq!(c.doubling_times(), Vec::<f64>::new());
    }
}
