//! # bt-choke — peer selection strategies
//!
//! The *peer selection* half of the paper's subject matter: the choke
//! algorithm in leecher state, the new and old seed-state algorithms, the
//! bit-level tit-for-tat baseline, and the sliding-window rate estimator
//! their decisions are based on.
//!
//! See [`choker`] for the algorithms and [`rate`] for estimation.

#![warn(missing_docs)]

pub mod choker;
pub mod rate;

pub use choker::{
    ChokeDecision, Choker, ChokerKind, LeecherChoker, PeerKey, PeerSnapshot, SeedChokerNew,
    SeedChokerOld, TitForTatChoker, RECHOKE_PERIOD, REGULAR_SLOTS,
};
pub use rate::{RateEstimator, DEFAULT_WINDOW};
