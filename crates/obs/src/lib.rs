//! Runtime telemetry for the bt-* stack.
//!
//! Two complementary facilities, both deliberately dependency-free:
//!
//! * a **metrics registry** ([`Registry`]) of named counters, gauges and
//!   fixed-bucket histograms. Handles are `Arc`-backed and cheap to
//!   clone; a hot-path increment is one relaxed atomic op. Snapshots
//!   ([`Snapshot`]) are sorted by `(name, label)` so that under a
//!   virtual clock the serialized form is byte-identical run to run.
//! * a **span tracer / self-profiler** ([`Profiler`]): RAII
//!   [`span!`]-guards record nested enter/exit timings into a
//!   per-thread span arena, aggregated into flat and call-tree
//!   profiles ([`Profile`]) with total/self time, call counts and
//!   deterministic p50/p95/p99 per span.
//! * a **structured event log**: leveled typed records emitted through
//!   the [`obs_debug!`], [`obs_info!`] and [`obs_warn!`] macros to a
//!   pluggable [`EventSink`] — stderr text, a JSONL file, or an
//!   in-memory ring buffer for tests. With no sink installed a log call
//!   costs one relaxed atomic load.
//!
//! This is *runtime* telemetry (where time and bytes go), distinct from
//! `bt-instrument`'s paper-facing §III-C traces (what the protocol did).
//! See DESIGN.md §"Observability" for naming conventions.
//!
//! # Example
//!
//! ```
//! use bt_obs::{buckets, Registry, TimeSource};
//!
//! let reg = Registry::new(TimeSource::manual());
//! let ticks = reg.counter("core.inputs.tick");
//! let lat = reg.histogram("core.choke_round_us", buckets::LATENCY_US);
//! ticks.inc();
//! lat.observe(250);
//! reg.time().advance_to(1_000_000);
//! let snap = reg.snapshot();
//! assert_eq!(snap.at_micros, 1_000_000);
//! assert!(snap.to_jsonl_line().contains("\"core.inputs.tick\":1"));
//! ```

pub mod event;
pub mod export;
pub mod registry;
pub mod schema;
pub mod series;
pub mod span;
pub mod time;
pub mod trace;

pub use event::{
    EventSink, FieldValue, JsonlSink, Level, OwnedRecord, Record, RingSink, StderrSink,
};
pub use export::{summary_text, to_prometheus};
pub use registry::{buckets, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use schema::{
    parse_json, HistogramDoc, JsonValue, MetricsDoc, ProfileDoc, SchemaError, SeriesDoc,
    SeriesEntry, SpanDoc, TraceEventDoc,
};
pub use series::{SeriesStore, SeriesView};
pub use span::{Profile, Profiler, SpanGuard, SpanStat};
pub use time::TimeSource;
pub use trace::{DumpContext, FlightGuard, FlightRecorder, TraceCat, TraceEvent, Tracer};

/// Emit a structured event at an explicit [`Level`].
///
/// The field list is `"key" = value` pairs; values may be unsigned or
/// signed integers, floats, bools, or `&str`. The whole call compiles
/// to a single atomic load when no sink is installed at that level.
#[macro_export]
macro_rules! obs_event {
    ($reg:expr, $level:expr, $target:expr, $name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        if $reg.log_enabled($level) {
            $reg.log(
                $level,
                $target,
                $name,
                &[$(($k, $crate::event::FieldValue::from($v))),*],
            );
        }
    };
}

/// Emit a [`Level::Debug`] structured event. See [`obs_event!`].
#[macro_export]
macro_rules! obs_debug {
    ($reg:expr, $target:expr, $name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        $crate::obs_event!($reg, $crate::Level::Debug, $target, $name $(, $k = $v)*)
    };
}

/// Emit a [`Level::Info`] structured event. See [`obs_event!`].
#[macro_export]
macro_rules! obs_info {
    ($reg:expr, $target:expr, $name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        $crate::obs_event!($reg, $crate::Level::Info, $target, $name $(, $k = $v)*)
    };
}

/// Emit a [`Level::Warn`] structured event. See [`obs_event!`].
#[macro_export]
macro_rules! obs_warn {
    ($reg:expr, $target:expr, $name:expr $(, $k:literal = $v:expr)* $(,)?) => {
        $crate::obs_event!($reg, $crate::Level::Warn, $target, $name $(, $k = $v)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn macros_emit_to_ring_sink() {
        let reg = Registry::new(TimeSource::manual());
        let ring = Arc::new(RingSink::new(8));
        reg.set_sink(ring.clone(), Level::Info);

        reg.time().advance_to(42);
        obs_debug!(reg, "test", "dropped"); // below min level
        obs_info!(reg, "test", "kept", "n" = 3u64, "ok" = true);
        obs_warn!(reg, "test", "warned", "who" = "peer3");

        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "kept");
        assert_eq!(records[0].at_micros, 42);
        assert_eq!(
            records[0].fields,
            vec![
                ("n".to_string(), "3".to_string()),
                ("ok".to_string(), "true".to_string()),
            ]
        );
        assert_eq!(records[1].level, Level::Warn);
        assert_eq!(records[1].fields[0].1, "peer3");
    }

    #[test]
    fn no_sink_is_cheap_and_silent() {
        let reg = Registry::new(TimeSource::manual());
        assert!(!reg.log_enabled(Level::Warn));
        obs_warn!(reg, "test", "nobody_home", "x" = 1u64);
    }

    #[test]
    fn ring_sink_caps_capacity() {
        let reg = Registry::new(TimeSource::manual());
        let ring = Arc::new(RingSink::new(2));
        reg.set_sink(ring.clone(), Level::Debug);
        for i in 0..5u64 {
            obs_debug!(reg, "t", "e", "i" = i);
        }
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].fields[0].1, "3");
        assert_eq!(records[1].fields[0].1, "4");
    }
}
