//! Regression tests for the paper's headline claims at quick scale.
//!
//! These are the reproduction's contract: if a refactor silently changes
//! the simulated protocol dynamics so that a *conclusion* of the paper
//! no longer holds, one of these tests fails. They run scaled-down
//! scenarios (RunConfig::quick-ish), so thresholds are generous; the
//! full-scale shapes live in EXPERIMENTS.md.

use bt_repro::analysis::{entropy, fairness, InterarrivalAnalysis, ReplicationSeries, StateWindow};
use bt_repro::piece::PickerKind;
use bt_repro::sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_repro::torrents::{run_scenario, torrent, RunConfig};
use bt_repro::wire::peer_id::ClientKind;
use bt_repro::wire::time::Duration;

fn cfg() -> RunConfig {
    RunConfig {
        max_peers: 60,
        min_pieces: 48,
        max_pieces: 96,
        session: Duration::from_secs(2700),
        ..RunConfig::default()
    }
}

/// Claim 1 (§IV-A.1): "the rarest first algorithm guarantees a close to
/// ideal entropy" on steady-state torrents — the local peer is
/// interested in (nearly) every remote leecher (nearly) all the time.
#[test]
fn steady_state_entropy_is_close_to_ideal() {
    let outcome = run_scenario(&torrent(7), &cfg());
    let ent = entropy(&outcome.trace);
    assert!(
        ent.local_in_remote.p50 > 0.9,
        "steady torrent a/b median {} — entropy regressed",
        ent.local_in_remote.p50
    );
    assert!(
        ent.local_in_remote.p20 > 0.75,
        "steady torrent a/b p20 {}",
        ent.local_in_remote.p20
    );
}

/// Claim 2 (§IV-A.2): a startup-phase torrent shows the transient
/// signature — some piece missing from the peer set essentially always —
/// and markedly lower entropy than the steady case.
#[test]
fn transient_state_has_low_entropy_and_missing_pieces() {
    // Needs the full population scale: in a small swarm the initial seed
    // sits inside the local peer set, so no piece ever reads as missing
    // (the paper's torrent 8 signature relies on the seed being one of
    // 861 leechers and usually *outside* the 80-peer window).
    let c = RunConfig::default();
    let steady = run_scenario(&torrent(7), &c);
    let transient = run_scenario(&torrent(8), &c);
    let series = ReplicationSeries::from_trace(&transient.trace).leecher_state(&transient.trace);
    assert!(
        series.missing_piece_fraction() > 0.8,
        "torrent 8 must stay transient (missing fraction {})",
        series.missing_piece_fraction()
    );
    let e_steady = entropy(&steady.trace).local_in_remote.p50;
    let e_transient = entropy(&transient.trace).local_in_remote.p50;
    assert!(
        e_transient < e_steady - 0.2,
        "transient entropy ({e_transient}) must sit well below steady ({e_steady})"
    );
}

/// Claim 3 (§IV-A.2.a): the rare-piece drain is linear at a rate bounded
/// by the initial seed's upload capacity.
#[test]
fn rare_pieces_drain_at_bounded_constant_rate() {
    let outcome = run_scenario(&torrent(8), &RunConfig::default());
    let series = ReplicationSeries::from_trace(&outcome.trace).leecher_state(&outcome.trace);
    let slope = series.rarest_set_slope();
    assert!(slope < 0.0, "rarest set must drain, slope {slope}");
    // Implied source rate cannot exceed the 20 kB/s initial seed.
    let implied = -slope * f64::from(outcome.scaled.piece_len);
    assert!(
        implied <= 24.0 * 1024.0,
        "implied drain rate {implied} B/s exceeds the seed's 20 kB/s capacity"
    );
}

/// Claim 4 (§IV-A.3): no last pieces problem in steady state, but a
/// first pieces/blocks problem.
#[test]
fn first_blocks_problem_without_last_pieces_problem() {
    let outcome = run_scenario(&torrent(10), &cfg());
    let blocks = InterarrivalAnalysis::blocks(&outcome.trace);
    assert!(
        blocks.first_slowdown() > 1.5,
        "first blocks problem absent: slowdown {}",
        blocks.first_slowdown()
    );
    assert!(
        blocks.last_slowdown() < 1.5,
        "a last blocks problem appeared: slowdown {}",
        blocks.last_slowdown()
    );
}

/// Claim 5 (§IV-B.3): the new seed-state algorithm spreads service far
/// more evenly than the leecher-state rate competition spreads uploads.
#[test]
fn seed_state_service_is_flatter_than_leecher_state() {
    let outcome = run_scenario(&torrent(10), &cfg());
    let ls = fairness(&outcome.trace, StateWindow::Leecher);
    let ss = fairness(&outcome.trace, StateWindow::Seed);
    assert!(ss.total_uploaded > 0, "local peer must reach seed state");
    assert!(
        ss.top_set_upload_share() < ls.top_set_upload_share(),
        "seed-state top-set share {} must undercut leecher-state {}",
        ss.top_set_upload_share(),
        ls.top_set_upload_share()
    );
}

/// Claim 6 (§IV-A): rarest first never loses to a rarity-blind ordering;
/// sequential selection cannot even keep a single-seed swarm alive.
#[test]
fn rarest_first_beats_sequential() {
    let run = |picker: PickerKind| {
        let mut peers = vec![BehaviorProfile::seed()];
        for i in 0..20 {
            peers.push(BehaviorProfile {
                role: Role::Leecher,
                client: ClientKind::Mainline402,
                capacity: CapacityClass::Dsl,
                join_at: Duration::from_secs(i),
                seed_linger: Some(Duration::from_secs(600)),
                depart_at: None,
                prepopulate: false,
                restart_after: None,
            });
        }
        let base = bt_repro::core::Config {
            picker,
            ..Default::default()
        };
        let spec = SwarmSpec {
            seed: 31,
            total_len: 32 * 256 * 1024,
            piece_len: 256 * 1024,
            duration: Duration::from_secs(3 * 3600),
            base_config: base,
            peers,
            local: None,
            available_fraction: 0.0,
            ..SwarmSpec::default()
        };
        Swarm::new(spec).run().completed_peers
    };
    let rarest = run(PickerKind::RarestFirst);
    let sequential = run(PickerKind::Sequential);
    assert!(
        rarest >= sequential,
        "rarest first ({rarest}) lost to sequential ({sequential})"
    );
    assert!(
        rarest >= 15,
        "rarest first should nearly drain the swarm: {rarest}"
    );
}

/// Claim 7 (§IV-B): free riders are served (excess capacity) but cannot
/// outperform the contributing population.
#[test]
fn free_riders_served_but_not_ahead() {
    let mut peers = vec![BehaviorProfile::seed(), BehaviorProfile::seed()];
    let honest = 8;
    for i in 0..honest {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Dsl,
            join_at: Duration::from_secs(i),
            seed_linger: Some(Duration::from_secs(600)),
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    peers.push(BehaviorProfile {
        role: Role::FreeRider,
        client: ClientKind::FreeRider,
        capacity: CapacityClass::Dsl,
        join_at: Duration::from_secs(4),
        seed_linger: None,
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    });
    let fr_idx = peers.len() - 1;
    let spec = SwarmSpec {
        // The claim is statistical; this seed gives the widest margin
        // (~35 simulated seconds) over nearby seeds under the workspace
        // RNG. A choked-down population can let the free rider squeak
        // ahead on unlucky seeds without contradicting the paper.
        seed: 2,
        total_len: 24 * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(4 * 3600),
        peers,
        local: None,
        ..SwarmSpec::default()
    };
    let result = Swarm::new(spec).run();
    let fr_done = result.completion[fr_idx];
    assert!(fr_done.is_some(), "free rider starved outright");
    let honest_times: Vec<_> = (2..2 + honest as usize)
        .filter_map(|i| result.completion[i])
        .collect();
    let best_honest = honest_times.iter().min().copied().unwrap();
    assert!(
        fr_done.unwrap() >= best_honest,
        "the free rider finished before every contributor"
    );
}
