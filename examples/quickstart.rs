//! Quickstart: build a five-peer swarm carrying *real* content bytes,
//! run it to completion, and inspect the instrumented peer's trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bt_repro::instrument::trace::TraceEvent;
use bt_repro::sim::{BehaviorProfile, Swarm, SwarmSpec};
use bt_repro::wire::time::Duration;

fn main() {
    // One seed plus four leechers; peer index 1 is instrumented.
    let mut peers = vec![BehaviorProfile::seed()];
    for _ in 0..4 {
        peers.push(BehaviorProfile::leecher(Duration::ZERO));
    }
    let spec = SwarmSpec {
        seed: 42,
        total_len: 16 * 256 * 1024, // 4 MB in sixteen 256 kB pieces
        piece_len: 256 * 1024,
        real_data: true, // carry and SHA-1-verify every block
        duration: Duration::from_secs(2 * 3600),
        peers,
        local: Some(1),
        ..SwarmSpec::default()
    };

    println!("running a 5-peer swarm (4 MB content, real data + hash verification)...");
    let result = Swarm::new(spec).run();

    println!("peers completed : {}", result.completed_peers);
    for (i, done) in result.completion.iter().enumerate() {
        match done {
            Some(t) => println!("  peer {i}: seed after {:.0} s", t.as_secs_f64()),
            None => println!("  peer {i}: seed from the start"),
        }
    }

    let trace = result.trace.expect("peer 1 was instrumented");
    let mut blocks = 0u32;
    let mut pieces = 0u32;
    let mut unchokes = 0u32;
    for (_, ev) in trace.iter() {
        match ev {
            TraceEvent::BlockReceived { .. } => blocks += 1,
            TraceEvent::PieceCompleted { .. } => pieces += 1,
            TraceEvent::LocalChoke { choked: false, .. } => unchokes += 1,
            _ => {}
        }
    }
    println!("\ninstrumented peer 1:");
    println!("  trace events     : {}", trace.len());
    println!("  blocks received  : {blocks}");
    println!("  pieces verified  : {pieces}");
    println!("  unchokes granted : {unchokes}");
    println!(
        "  became seed at   : {:?} s",
        trace.meta.seed_at.map(|t| t.as_secs())
    );
    assert_eq!(pieces, 16, "every piece must verify");
}
