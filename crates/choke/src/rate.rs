//! Transfer-rate estimation.
//!
//! The choke algorithm ranks peers by "their download rate to the local
//! peer" using "short term download estimations" (§IV-B.1). Mainline
//! estimates rates over a sliding window of recent transfers (20 s in the
//! 4.x series). [`RateEstimator`] reproduces that: it remembers
//! (timestamp, bytes) samples and reports bytes-per-second over the
//! window. The instrumented client logs these estimates (§III-C), so the
//! estimator is also what trace records carry.

use bt_wire::time::{Duration, Instant};
use std::collections::VecDeque;

/// Default estimation window used by mainline 4.x.
pub const DEFAULT_WINDOW: Duration = Duration(20_000_000);

/// Sliding-window rate estimator.
///
/// ```
/// use bt_choke::RateEstimator;
/// use bt_wire::time::{Duration, Instant};
/// let mut est = RateEstimator::new(Duration::from_secs(20));
/// est.record(Instant::from_secs(0), 20_000);
/// assert!(est.rate(Instant::from_secs(1)) > 0.0);
/// assert_eq!(est.rate(Instant::from_secs(60)), 0.0); // window slid past
/// assert_eq!(est.total(), 20_000); // lifetime counter survives
/// ```
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window: Duration,
    samples: VecDeque<(Instant, u64)>,
    /// Sum of bytes currently inside the window.
    in_window: u64,
    /// Lifetime byte total (never pruned) — fairness analysis needs it.
    total: u64,
}

impl Default for RateEstimator {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl RateEstimator {
    /// Create an estimator with the given window.
    pub fn new(window: Duration) -> RateEstimator {
        assert!(window.0 > 0, "window must be positive");
        RateEstimator {
            window,
            samples: VecDeque::new(),
            in_window: 0,
            total: 0,
        }
    }

    /// Record `bytes` transferred at `now`.
    ///
    /// Timestamps must be non-decreasing (the simulator's clock is
    /// monotonic); violating that only degrades accuracy, never panics.
    pub fn record(&mut self, now: Instant, bytes: u64) {
        self.samples.push_back((now, bytes));
        self.in_window += bytes;
        self.total += bytes;
        self.prune(now);
    }

    /// Estimated rate in bytes/second at `now`.
    pub fn rate(&mut self, now: Instant) -> f64 {
        self.prune(now);
        self.in_window as f64 / self.window.as_secs_f64()
    }

    /// Lifetime bytes recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn prune(&mut self, now: Instant) {
        let cutoff = Instant(now.0.saturating_sub(self.window.0));
        while let Some(&(t, bytes)) = self.samples.front() {
            if t < cutoff {
                self.samples.pop_front();
                self.in_window -= bytes;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_rate() {
        let mut est = RateEstimator::new(Duration::from_secs(10));
        // 1000 bytes every second for 30 s → 100 B/s over a 10 s window.
        for s in 0..30 {
            est.record(Instant::from_secs(s), 1000);
        }
        let r = est.rate(Instant::from_secs(29));
        assert!((r - 1000.0).abs() < 150.0, "rate {r}");
        assert_eq!(est.total(), 30_000);
    }

    #[test]
    fn rate_decays_to_zero() {
        let mut est = RateEstimator::default();
        est.record(Instant::from_secs(0), 10_000);
        assert!(est.rate(Instant::from_secs(1)) > 0.0);
        assert_eq!(est.rate(Instant::from_secs(100)), 0.0);
        assert_eq!(est.total(), 10_000, "total survives pruning");
    }

    #[test]
    fn burst_then_silence() {
        let mut est = RateEstimator::new(Duration::from_secs(20));
        est.record(Instant::from_secs(0), 20_000);
        let early = est.rate(Instant::from_secs(1));
        assert!((early - 1000.0).abs() < 1.0);
        // Still inside the window at t=19.
        assert!(est.rate(Instant::from_secs(19)) > 0.0);
        // Outside at t=21.
        assert_eq!(est.rate(Instant::from_secs(21)), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = RateEstimator::new(Duration::ZERO);
    }
}
