//! The observatory must be a free observer, exactly like the metrics
//! registry it rides on: attaching a `SeriesStore` and the live health
//! monitors to a simulated swarm changes nothing about the run, and the
//! exported time-series JSON is a pure function of the spec and seed.
//!
//! Three contracts, all enforced by CI:
//!
//! 1. **Series determinism** — the `/series` JSON for a scenario is
//!    byte-identical whether the sweep runs on 1, 2, or 8 workers
//!    (rings fill from virtual-clock sampling events, never wall time).
//! 2. **Non-perturbation** — traces with the observatory on equal
//!    traces with it off, so the golden fingerprints are untouched.
//! 3. **Paper invariants hold live** — a flash crowd reaches the end of
//!    its session with every online monitor healthy: availability
//!    entropy near 1 (§III "entropy of the torrent"), no starving
//!    peers, reciprocation above the floor.

use bt_repro::obs::{Registry, SeriesStore};
use bt_repro::sim::Swarm;
use bt_repro::torrents::{run_scenarios_parallel, torrent, RunConfig};

#[test]
fn series_json_is_byte_identical_across_job_counts() {
    let cfg = RunConfig {
        series: true,
        ..RunConfig::quick()
    };
    let specs = [torrent(2), torrent(19), torrent(3)];
    let baseline = run_scenarios_parallel(&cfg, &specs, 1, |_| {});
    for o in &baseline {
        let json = o.series.as_ref().expect("series requested");
        assert!(
            json.contains("\"name\":\"live.entropy\""),
            "torrent {}: health series missing",
            o.spec.id
        );
        assert!(json.contains("\"name\":\"sim.live_peers\""));
        assert!(
            o.result.health.is_some(),
            "torrent {}: no health report",
            o.spec.id
        );
    }
    for jobs in [2, 8] {
        let parallel = run_scenarios_parallel(&cfg, &specs, jobs, |_| {});
        for (seq, par) in baseline.iter().zip(&parallel) {
            assert_eq!(
                seq.series, par.series,
                "jobs={jobs} torrent {}: series JSON drifted",
                seq.spec.id
            );
        }
    }
}

#[test]
fn series_and_health_do_not_perturb_scenario_traces() {
    let quick = RunConfig::quick();
    let observed_cfg = RunConfig {
        series: true,
        ..RunConfig::quick()
    };
    for id in [2, 3] {
        let bare = bt_repro::torrents::run_scenario(&torrent(id), &quick);
        let observed = bt_repro::torrents::run_scenario(&torrent(id), &observed_cfg);
        assert_eq!(
            bare.trace.events, observed.trace.events,
            "torrent {id}: the observatory changed the trace"
        );
        assert_eq!(bare.result.completion, observed.result.completion);
        assert_eq!(
            bare.result.events_processed,
            observed.result.events_processed
        );
    }
}

#[test]
fn flash_crowd_ends_healthy_with_entropy_near_one() {
    let opts = bt_repro::torrents::PresetOptions {
        pieces: 8,
        duration: bt_repro::wire::time::Duration::from_secs(900),
        ..bt_repro::torrents::PresetOptions::default()
    };
    let spec = bt_repro::torrents::scenarios::mega_flash_crowd(300, &opts);
    let registry = Registry::new_manual();
    let store = SeriesStore::new(&registry);
    let swarm = Swarm::new(spec)
        .with_metrics(registry)
        .with_series(store.clone())
        .with_health(Default::default());
    let result = swarm.run();
    let health = result.health.expect("health monitors attached");
    assert!(
        health.healthy(),
        "flash crowd ended unhealthy: {}",
        health.summary_line()
    );
    let entropy = health
        .monitors
        .iter()
        .find(|m| m.name == "entropy")
        .expect("entropy monitor present");
    assert!(
        entropy.healthy && entropy.value > 0.9,
        "flash crowd entropy {} below the paper's near-ideal regime",
        entropy.value
    );
    // The dashboard's main sparkline exists and is non-trivial.
    let live = store.views(Some("live.entropy"));
    assert!(!live.is_empty() && live[0].points.len() > 5);
}
