//! Per-connection state.
//!
//! One [`Connection`] tracks the four BitTorrent state bits (am-choking,
//! am-interested, peer-choking, peer-interested), the remote bitfield,
//! rate estimators in both directions, and the counters the choke
//! algorithm and the fairness analysis need.

use bt_choke::{PeerSnapshot, RateEstimator};
use bt_piece::Bitfield;
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::time::Instant;

/// Dense connection handle within one engine (also the trace handle).
pub type ConnId = u32;

/// State of one remote peer connection.
#[derive(Debug)]
pub struct Connection {
    /// Handle of this connection.
    pub id: ConnId,
    /// Remote address.
    pub ip: IpAddr,
    /// Remote peer ID from the handshake.
    pub peer_id: PeerId,
    /// True if the local peer initiated the TCP connection.
    pub initiated_by_us: bool,
    /// The remote's advertised pieces.
    pub bitfield: Bitfield,
    /// Local → remote choke state (starts choked).
    pub am_choking: bool,
    /// Local → remote interest (starts not interested).
    pub am_interested: bool,
    /// Remote → local choke state (starts choked).
    pub peer_choking: bool,
    /// Remote → local interest (starts not interested).
    pub peer_interested: bool,
    /// Download-rate estimator (remote → local).
    pub download: RateEstimator,
    /// Upload-rate estimator (local → remote).
    pub upload: RateEstimator,
    /// When the local peer last unchoked this peer.
    pub last_unchoked: Option<Instant>,
    /// When any message was last sent on this connection (keep-alives).
    pub last_sent: Instant,
    /// When the connection entered the peer set.
    pub joined: Instant,
    /// Fast Extension negotiated on this connection (both sides set the
    /// reserved bit).
    pub fast: bool,
    /// Pieces the local peer granted this peer as allowed-fast.
    pub allowed_fast_sent: Vec<u32>,
    /// Pieces this peer granted the local peer as allowed-fast.
    pub allowed_fast_received: std::collections::HashSet<u32>,
    /// Virtual time of the last block received from this peer, for
    /// snub detection.
    pub last_block_received: Option<Instant>,
    /// Extension protocol (BEP 10) negotiated on this connection.
    pub extended: bool,
    /// The inner ID under which the remote accepts `ut_pex` gossip.
    pub remote_pex_id: Option<u8>,
    /// Peer addresses already gossiped to this peer (delta tracking).
    pub pex_sent: std::collections::HashSet<IpAddr>,
    /// When `ut_pex` was last sent on this connection.
    pub last_pex: Instant,
}

impl Connection {
    /// Fresh connection in the initial protocol state (both sides choked,
    /// neither interested).
    pub fn new(
        id: ConnId,
        ip: IpAddr,
        peer_id: PeerId,
        initiated_by_us: bool,
        num_pieces: u32,
        now: Instant,
    ) -> Connection {
        Connection {
            id,
            ip,
            peer_id,
            initiated_by_us,
            bitfield: Bitfield::new(num_pieces),
            am_choking: true,
            am_interested: false,
            peer_choking: true,
            peer_interested: false,
            download: RateEstimator::default(),
            upload: RateEstimator::default(),
            last_unchoked: None,
            last_sent: now,
            joined: now,
            fast: false,
            allowed_fast_sent: Vec::new(),
            allowed_fast_received: std::collections::HashSet::new(),
            last_block_received: None,
            extended: false,
            remote_pex_id: None,
            pex_sent: std::collections::HashSet::new(),
            last_pex: Instant::ZERO,
        }
    }

    /// Snapshot for the choke algorithm.
    pub fn snapshot(&mut self, now: Instant) -> PeerSnapshot {
        PeerSnapshot {
            key: self.id,
            interested: self.peer_interested,
            unchoked: !self.am_choking,
            download_rate: self.download.rate(now),
            upload_rate: self.upload.rate(now),
            last_unchoked: self.last_unchoked,
            uploaded_to: self.upload.total(),
            downloaded_from: self.download.total(),
            snubbed: self.is_snubbing(now),
        }
    }

    /// Anti-snubbing (mainline): the remote has unchoked the local peer,
    /// the local peer is interested, and yet no block has arrived for
    /// [`bt_choke::choker::SNUB_THRESHOLD`].
    pub fn is_snubbing(&self, now: Instant) -> bool {
        if self.peer_choking || !self.am_interested {
            return false;
        }
        let last = self.last_block_received.unwrap_or(self.joined);
        now.saturating_since(last) >= bt_choke::choker::SNUB_THRESHOLD
    }

    /// This peer is in the active peer set (§II-A: unchoked by the local
    /// peer *and* interested in the local peer).
    pub fn in_active_set(&self) -> bool {
        !self.am_choking && self.peer_interested
    }

    /// The remote holds every piece (it is a seed).
    pub fn is_seed(&self) -> bool {
        self.bitfield.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::peer_id::ClientKind;

    fn conn() -> Connection {
        Connection::new(
            3,
            IpAddr(0x0A000001),
            PeerId::new(ClientKind::Mainline402, 1),
            true,
            16,
            Instant::from_secs(5),
        )
    }

    #[test]
    fn initial_protocol_state() {
        let c = conn();
        assert!(c.am_choking && c.peer_choking);
        assert!(!c.am_interested && !c.peer_interested);
        assert!(!c.in_active_set());
        assert!(!c.is_seed());
        assert_eq!(c.joined, Instant::from_secs(5));
    }

    #[test]
    fn active_set_requires_unchoked_and_interested() {
        let mut c = conn();
        c.am_choking = false;
        assert!(!c.in_active_set());
        c.peer_interested = true;
        assert!(c.in_active_set());
        c.am_choking = true;
        assert!(!c.in_active_set());
    }

    #[test]
    fn snub_detection() {
        let mut c = conn();
        let t0 = Instant::from_secs(5);
        // Not snubbing while choked or uninterested.
        assert!(!c.is_snubbing(t0 + bt_wire::time::Duration::from_secs(300)));
        c.peer_choking = false;
        c.am_interested = true;
        // Unchoked + interested + silence ≥ 60 s → snubbed.
        assert!(!c.is_snubbing(t0 + bt_wire::time::Duration::from_secs(59)));
        assert!(c.is_snubbing(t0 + bt_wire::time::Duration::from_secs(61)));
        // A block resets the clock.
        c.last_block_received = Some(t0 + bt_wire::time::Duration::from_secs(100));
        assert!(!c.is_snubbing(t0 + bt_wire::time::Duration::from_secs(120)));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let mut c = conn();
        c.download.record(Instant::from_secs(6), 2000);
        c.upload.record(Instant::from_secs(6), 500);
        let s = c.snapshot(Instant::from_secs(6));
        assert_eq!(s.key, 3);
        assert_eq!(s.downloaded_from, 2000);
        assert_eq!(s.uploaded_to, 500);
        assert!(s.download_rate > 0.0);
    }
}
