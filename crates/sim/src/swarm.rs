//! The swarm simulator.
//!
//! A [`Swarm`] wires many [`bt_core::Engine`]s together through virtual
//! links, a simulated tracker, and a bandwidth model, advancing a
//! discrete-event clock. It substitutes for the live Internet torrents of
//! the paper (see DESIGN.md §2): the protocol code is the real engine;
//! only the transport is modelled.
//!
//! ## Bandwidth model
//!
//! Data transfers advance in fixed *transfer rounds* (default 1 s): each
//! round, a peer's upload capacity is split equally across connections
//! with queued blocks, capped by each receiver's download budget for the
//! round (progressive filling, one pass). Whole 16 kB blocks complete
//! when their byte budget accumulates — matching the paper's observation
//! granularity, which is also the block (§IV-A.3).
//!
//! ## Determinism
//!
//! One seeded PRNG drives the swarm; engines get derived seeds. Events at
//! equal timestamps pop FIFO. Same spec + same seed ⇒ identical traces.

use crate::behavior::{BehaviorProfile, Role};
use crate::builder::SwarmSpecBuilder;
use crate::events::EventQueue;
use crate::links::{LinkModel, LinkParams, NetModel};
use crate::metrics::SimMetrics;
use crate::tracker::{PeerIdx, SimTracker};
use bt_analysis::live::{HealthMonitor, HealthReport, LiveSample, Thresholds};
use bt_core::{Action, Config, ConnId, DataMode, Engine, EngineBuilder, Input};
use bt_instrument::trace::{Trace, TraceMeta};
use bt_obs::trace::{DumpContext, FlightGuard, FlightRecorder, TraceCat, Tracer};
use bt_piece::{Bitfield, Geometry};
use bt_wire::handshake::Handshake;
use bt_wire::message::{BlockRef, Message};
use bt_wire::metainfo::SyntheticContent;
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::time::{Duration, Instant};
use bt_wire::tracker::{AnnounceEvent, PeerEntry};
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Specification of a swarm run.
///
/// Serialisable, so whole scenarios can live in JSON files and replay
/// bit-for-bit (see the `swarmrun` binary in `bt-bench`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SwarmSpec {
    /// Master PRNG seed.
    pub seed: u64,
    /// Content size in bytes.
    pub total_len: u64,
    /// Piece length in bytes.
    pub piece_len: u32,
    /// Carry and verify real content bytes (see [`DataMode`]).
    pub real_data: bool,
    /// Simulated session length.
    pub duration: Duration,
    /// Base engine configuration; per-peer profiles override capacities
    /// and behaviour flags.
    pub base_config: Config,
    /// Every peer in the swarm, in peer-table order. The *local*
    /// (instrumented) peer is `peers[local]` when `record_local` is set.
    pub peers: Vec<BehaviorProfile>,
    /// Index of the instrumented peer, if any.
    pub local: Option<usize>,
    /// Fraction of pieces considered *available* (already served by the
    /// initial seed) when pre-populating existing leechers. `1.0` models
    /// a steady-state torrent, small values a transient-state torrent
    /// (§IV-A.2).
    pub available_fraction: f64,
    /// Pre-existing leechers hold `U(0, this)` of the available pieces.
    pub prepop_completion_max: f64,
    /// Legacy flat base latency, kept for old JSON specs only.
    ///
    /// The typed [`net`](SwarmSpec::net) section replaced this field;
    /// new code uses `SwarmSpec::builder().uniform_net(..)`. It
    /// survives (hidden, optional) so that pre-link-layer JSON specs
    /// keep replaying byte-identically:
    /// [`net_model`](SwarmSpec::net_model) folds it into a
    /// [`NetModel::Uniform`] when `net` is unset.
    #[doc(hidden)]
    pub latency: Option<Duration>,
    /// Legacy flat latency jitter — see the `latency` field.
    #[doc(hidden)]
    pub latency_jitter: Option<Duration>,
    /// Transfer round length.
    pub transfer_round: Duration,
    /// Availability sampling period for the instrumented peer.
    pub sample_every: Duration,
    /// Probability that a delivered block is corrupted in flight
    /// (exercises hash-failure recovery; only meaningful with real data).
    pub corrupt_block_prob: f64,
    /// Probability that a dial attempt fails before the handshake
    /// (models unreachable peers / NAT timeouts; exercises the engine's
    /// redial path).
    pub dial_failure_prob: f64,
    /// Cap on how many peers the tracker returns per announce (an
    /// overloaded or rationing tracker; `None` = the usual 50). The
    /// regime where BEP 11 peer exchange earns its keep.
    pub tracker_response_cap: Option<usize>,
    /// Use the tracker's O(num_want) incremental-shuffle sampling instead
    /// of the legacy full sort+shuffle per announce. Still deterministic,
    /// but a *different* deterministic draw sequence — existing golden
    /// traces pin the legacy path, so only mega-swarm scenarios enable
    /// this.
    pub scalable_tracker: bool,
    /// Record *global* piece-replication snapshots alongside the local
    /// peer's availability samples. The paper repeatedly notes "we do
    /// not have global knowledge of the torrent"; the simulator does,
    /// which lets the harness validate the local-view inferences
    /// (transient classification, rare-piece counts) against ground
    /// truth.
    pub sample_global: bool,
    /// Typed network model (see [`NetModel`]): per-link delay, loss and
    /// per-direction bandwidth under a topology, or the flat uniform
    /// model. `None` falls back to the legacy flat latency fields —
    /// old JSON specs keep replaying byte-identically.
    pub net: Option<NetModel>,
}

impl SwarmSpec {
    /// Start building a spec with every knob named — the replacement
    /// for sprawling struct literals. See [`SwarmSpecBuilder`].
    pub fn builder() -> SwarmSpecBuilder {
        SwarmSpecBuilder::new()
    }

    /// The effective network model: the typed [`net`](SwarmSpec::net)
    /// section when present, else the legacy flat latency fields as a
    /// [`NetModel::Uniform`] (byte-identical to the pre-link-layer
    /// delivery path).
    pub fn net_model(&self) -> NetModel {
        self.net.clone().unwrap_or(NetModel::Uniform {
            latency: self.latency.unwrap_or(DEFAULT_LATENCY),
            jitter: self.latency_jitter.unwrap_or(DEFAULT_LATENCY_JITTER),
        })
    }
}

/// The pre-link-layer uniform network defaults, applied when neither
/// the typed `net` section nor the legacy JSON fields specify delays.
const DEFAULT_LATENCY: Duration = Duration(50_000);
const DEFAULT_LATENCY_JITTER: Duration = Duration(100_000);

impl Default for SwarmSpec {
    fn default() -> Self {
        SwarmSpec {
            seed: 1,
            total_len: 4 * 1024 * 1024,
            piece_len: 256 * 1024,
            real_data: false,
            duration: Duration::from_secs(3600),
            base_config: Config::default(),
            peers: Vec::new(),
            local: None,
            available_fraction: 1.0,
            prepop_completion_max: 0.9,
            latency: None,
            latency_jitter: None,
            transfer_round: Duration::from_secs(1),
            sample_every: Duration::from_secs(30),
            corrupt_block_prob: 0.0,
            dial_failure_prob: 0.0,
            tracker_response_cap: None,
            scalable_tracker: false,
            sample_global: false,
            net: None,
        }
    }
}

/// A ground-truth replication snapshot over every live peer's verified
/// pieces (seeds included).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GlobalSample {
    /// Snapshot time.
    pub at: Instant,
    /// Copies of the globally least replicated piece.
    pub min: u32,
    /// Mean copies over all pieces.
    pub mean: f64,
    /// Copies of the globally most replicated piece.
    pub max: u32,
    /// Pieces with exactly one global copy — the §II-A *rare pieces*
    /// when that copy sits on the initial seed.
    pub single_copy_pieces: u32,
    /// Live peers at the snapshot.
    pub live_peers: u32,
}

/// Outcome of a swarm run.
#[derive(Debug)]
pub struct SwarmResult {
    /// The instrumented peer's trace, when one was attached.
    pub trace: Option<Trace>,
    /// Per-peer completion times (`None` = did not finish within the run),
    /// indexed like `SwarmSpec::peers`.
    pub completion: Vec<Option<Instant>>,
    /// Number of peers that completed the download during the run.
    pub completed_peers: usize,
    /// Total events processed.
    pub events_processed: u64,
    /// Tracker statistics at the end of the run.
    pub tracker_started: u64,
    /// Completed announces observed by the tracker.
    pub tracker_completed: u64,
    /// Ground-truth replication snapshots (when `sample_global` is set).
    pub global_series: Vec<GlobalSample>,
    /// Deterministic metrics snapshots, one per sampling period plus a
    /// final one, when [`Swarm::with_metrics`] attached a registry.
    pub metrics: Vec<bt_obs::Snapshot>,
    /// Aggregated span profile, when [`Swarm::with_profiler`] attached
    /// an enabled profiler.
    pub profile: Option<bt_obs::Profile>,
    /// Final health verdicts, when [`Swarm::with_health`] attached
    /// live monitors. Not part of [`digest`](SwarmResult::digest):
    /// monitors are read-only observers of the run.
    pub health: Option<HealthReport>,
}

impl SwarmResult {
    /// A 64-bit FNV-1a fingerprint over every deterministic output of the
    /// run: event count, completions (with exact times), tracker tallies,
    /// the encoded trace (when instrumented), and the global replication
    /// series (when sampled). Two runs of the same spec must produce the
    /// same digest, whatever process, thread pool, or job count ran them
    /// — the mega-swarm golden and parallelism tests compare exactly
    /// this value, and `swarmrun` prints it after every simulator run.
    pub fn digest(&self) -> u64 {
        let mut text = String::new();
        use std::fmt::Write as _;
        let _ = write!(
            text,
            "events={} completed={} started={} completed_ann={}",
            self.events_processed,
            self.completed_peers,
            self.tracker_started,
            self.tracker_completed
        );
        for (idx, t) in self.completion.iter().enumerate() {
            if let Some(t) = t {
                let _ = write!(text, " c{idx}={}", t.0);
            }
        }
        for g in &self.global_series {
            let _ = write!(
                text,
                " g{}={}:{}:{}:{}",
                g.at.0, g.min, g.max, g.single_copy_pieces, g.live_peers
            );
        }
        let mut hash = fnv1a64(text.as_bytes());
        if let Some(trace) = &self.trace {
            // Chain rather than concatenate: traces can be large, and the
            // jsonl encoding is already a byte-stable function of the run.
            hash ^= fnv1a64(trace.to_jsonl().as_bytes()).rotate_left(1);
        }
        hash
    }
}

/// FNV-1a, 64-bit — the same dependency-free fingerprint the golden
/// trace fixtures use.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

enum Ev {
    Join(PeerIdx),
    Depart(PeerIdx),
    Restart(PeerIdx),
    Deliver {
        to: PeerIdx,
        conn: ConnId,
        msg: Message,
    },
    DialArrive {
        from: PeerIdx,
        to_ip: IpAddr,
    },
    NotifyDisconnect {
        to: PeerIdx,
        conn: ConnId,
    },
    TrackerResponse {
        to: PeerIdx,
        peers: Vec<PeerEntry>,
    },
    /// A peer's engine timer ([`Action::SetTimer`]) came due: feed
    /// [`Input::Tick`]. Early/stale ticks are harmless no-ops by the
    /// driver contract, so superseded timers need no cancellation.
    EngineTick(PeerIdx),
    TransferRound,
    Sample,
}

/// Pooled per-connection state: the link topology, the upload queue and
/// the partial-block byte credit that used to live in three parallel
/// `HashMap<ConnId, _>`s. Engine connection IDs are small and sequential,
/// so a slot vector indexed by `ConnId` replaces hashing entirely, and
/// iteration in slot order *is* the ascending-`ConnId` order the
/// determinism contract requires (the old code sorted for it).
struct LinkSlot {
    to: PeerIdx,
    remote_conn: ConnId,
    /// This direction's link parameters (delay, loss, bandwidth),
    /// fixed at establishment by the [`LinkModel`].
    params: LinkParams,
    /// Earliest instant the next delivery on this direction may land:
    /// loss redelivery must not let later messages overtake earlier
    /// ones (the TCP in-order contract). On loss-free links delivery
    /// times are already monotonic, so the watermark never binds.
    next_free: Instant,
    /// Per-transfer-round byte cap derived from `params.bandwidth`
    /// (`u64::MAX` = uncapped — the legacy behaviour).
    round_cap: u64,
    /// Blocks the engine asked us to upload on this connection, FIFO.
    queue: VecDeque<BlockRef>,
    /// Bytes granted to the head block but not yet covering it whole.
    head_credit: u64,
}

struct SimPeer {
    engine: Engine,
    profile: BehaviorProfile,
    alive: bool,
    was_seed: bool,
    /// Connection slots indexed by local `ConnId`; `None` = no link.
    links: Vec<Option<LinkSlot>>,
    /// Recycled upload queues from closed links (allocation pooling).
    spare_queues: Vec<VecDeque<BlockRef>>,
    port: u16,
    /// Times this client has crashed and restarted (drives the fresh
    /// peer-ID suffix of §III-D).
    restarts: u32,
}

impl SimPeer {
    fn link(&self, conn: ConnId) -> Option<&LinkSlot> {
        self.links.get(conn as usize).and_then(|s| s.as_ref())
    }

    fn link_mut(&mut self, conn: ConnId) -> Option<&mut LinkSlot> {
        self.links.get_mut(conn as usize).and_then(|s| s.as_mut())
    }

    fn insert_link(
        &mut self,
        conn: ConnId,
        to: PeerIdx,
        remote_conn: ConnId,
        params: LinkParams,
        round_secs: f64,
    ) {
        let i = conn as usize;
        if self.links.len() <= i {
            self.links.resize_with(i + 1, || None);
        }
        let queue = self.spare_queues.pop().unwrap_or_default();
        let round_cap = params
            .bandwidth
            .map_or(u64::MAX, |b| ((b as f64 * round_secs) as u64).max(1));
        self.links[i] = Some(LinkSlot {
            to,
            remote_conn,
            params,
            next_free: Instant(0),
            round_cap,
            queue,
            head_credit: 0,
        });
    }

    /// Close a link, recycling its queue; returns the far end.
    /// Tear down a link; returns its far end plus how many upload blocks
    /// were still queued (the caller keeps the swarm-level queued-block
    /// counters in sync).
    fn remove_link(&mut self, conn: ConnId) -> Option<(PeerIdx, ConnId, Duration, u32)> {
        let slot = self.links.get_mut(conn as usize)?.take()?;
        let LinkSlot {
            to,
            remote_conn,
            params,
            mut queue,
            ..
        } = slot;
        let dropped = queue.len() as u32;
        queue.clear();
        self.spare_queues.push(queue);
        Some((to, remote_conn, params.delay, dropped))
    }
}

/// Causal lifecycle state of one *sampled* piece (see
/// [`Swarm::with_trace`]): only pieces the tracer samples ever get an
/// entry, so the map stays tiny at any swarm scale.
#[derive(Default)]
struct PieceLife {
    /// An `injected` event has been recorded (first holder seen).
    injected: bool,
    /// A `first_have` event has been recorded.
    first_have: bool,
    /// Peers that verifiably hold the piece (join-time holders plus
    /// verified downloads).
    holders: HashSet<PeerIdx>,
    /// `k_replicated` recorded; provenance recording stops here.
    done: bool,
}

/// Piece id a message concerns, if any (the provenance filter).
fn msg_piece(msg: &Message) -> Option<u32> {
    match msg {
        Message::Have(p) => Some(*p),
        Message::Request(b) | Message::Cancel(b) => Some(b.piece),
        Message::Piece { block, .. } => Some(block.piece),
        _ => None,
    }
}

/// Compact wire-kind code for trace args (stable across runs).
fn msg_code(msg: &Message) -> i64 {
    match msg {
        Message::Have(_) => 0,
        Message::Request(_) => 1,
        Message::Piece { .. } => 2,
        Message::Cancel(_) => 3,
        _ => 4,
    }
}

/// The swarm simulator. Build with [`Swarm::new`], run with
/// [`Swarm::run`].
pub struct Swarm {
    spec: SwarmSpec,
    /// The resolved per-link network model (see [`crate::links`]).
    link_model: Box<dyn LinkModel>,
    /// Control-plane one-way delay from the link model: dial setup and
    /// tracker responses (the legacy `spec.latency` role).
    base_delay: Duration,
    /// Transfer-round length in seconds, for per-link byte caps.
    round_secs: f64,
    geometry: Geometry,
    data: DataMode,
    queue: EventQueue<Ev>,
    peers: Vec<SimPeer>,
    ip_of: Vec<IpAddr>,
    by_ip: HashMap<IpAddr, PeerIdx>,
    tracker: SimTracker,
    rng: SmallRng,
    completion: Vec<Option<Instant>>,
    events_processed: u64,
    global_series: Vec<GlobalSample>,
    info_hash: [u8; 20],
    uses_global_picker: bool,
    metrics: Option<SimMetrics>,
    metric_snapshots: Vec<bt_obs::Snapshot>,
    series: Option<bt_obs::SeriesStore>,
    health: Option<HealthMonitor>,
    /// Clock reading (µs) when each peer last received a block (or
    /// joined); feeds the starvation monitor.
    last_progress: Vec<u64>,
    starvation_scratch: Vec<u64>,
    profiler: bt_obs::Profiler,
    // Reused per-round scratch buffers (see `do_transfers`): transfer
    // rounds run every virtual second over every peer, so they must not
    // allocate.
    budget_scratch: Vec<u64>,
    demand_scratch: Vec<(ConnId, PeerIdx, ConnId, u64)>,
    demand_bytes: Vec<u64>,
    grant_scratch: Vec<u64>,
    counts_scratch: Vec<u32>,
    // Dense per-peer round state, kept beside the peers rather than
    // inside them so the per-round sweep touches two small arrays instead
    // of one `SimPeer` cache line per peer (the mega-swarm win: idle
    // peers cost nothing per round).
    /// Upload blocks queued across each peer's links.
    queued_blocks: Vec<u32>,
    /// Static per-round download budget per peer (caps never change).
    download_budget: Vec<u64>,
    /// Static per-round upload budget per peer.
    upload_budget: Vec<u64>,
    /// Causal trace layer ([`Swarm::with_trace`]); disabled = one
    /// branch per hook.
    tracer: Tracer,
    /// Lifecycle state per sampled piece.
    piece_life: HashMap<u32, PieceLife>,
    /// Flight recorder ([`Swarm::with_flight_recorder`]): dumps a
    /// bundle when a live-monitor invariant trips or the run panics.
    flight: Option<FlightRecorder>,
    /// Previous health verdict, to edge-trigger flight dumps.
    was_healthy: bool,
    /// Events processed, mirrored for the panic flight guard.
    events_shared: Arc<AtomicU64>,
}

impl Swarm {
    /// Construct the swarm: builds every engine, pre-populates existing
    /// leechers' bitfields, and schedules joins.
    pub fn new(spec: SwarmSpec) -> Swarm {
        assert!(!spec.peers.is_empty(), "a swarm needs at least one peer");
        let geometry = Geometry::new(spec.total_len, spec.piece_len);
        let mut rng = SmallRng::seed_from_u64(spec.seed);

        let content = Arc::new(SyntheticContent::generate(
            "swarm-content",
            spec.seed,
            if spec.real_data {
                spec.total_len
            } else {
                geometry.piece_len as u64
            },
            spec.piece_len,
        ));
        // In virtual mode, the content object above is a stub used only
        // for its info-hash role; generate the real hash cheaply from the
        // spec parameters instead of hashing the full content.
        let info_hash = content.metainfo.info_hash;
        let data = if spec.real_data {
            DataMode::Real(Arc::new(SyntheticContent::generate(
                "swarm-content",
                spec.seed,
                spec.total_len,
                spec.piece_len,
            )))
        } else {
            DataMode::Virtual
        };

        let num_pieces = geometry.num_pieces();
        // The available-pieces set for pre-population (§IV-A.2: rare
        // pieces exist only on the initial seed during the startup phase).
        let available: Vec<u32> = {
            let n = ((f64::from(num_pieces)) * spec.available_fraction.clamp(0.0, 1.0)).round()
                as usize;
            let mut all: Vec<u32> = (0..num_pieces).collect();
            // Deterministic subset: shuffle then truncate.
            use rand::seq::SliceRandom;
            all.shuffle(&mut rng);
            all.truncate(n);
            all
        };

        let uses_global_picker =
            matches!(spec.base_config.picker, bt_piece::PickerKind::GlobalRarest);

        let mut peers = Vec::with_capacity(spec.peers.len());
        let mut ip_of = Vec::with_capacity(spec.peers.len());
        let mut by_ip = HashMap::new();
        for (idx, profile) in spec.peers.iter().enumerate() {
            let ip = IpAddr(0x0A00_0000 + idx as u32 + 1);
            let peer_id = PeerId::new(profile.client, spec.seed.wrapping_add(idx as u64 * 7919));
            let cfg = profile.engine_config(&spec.base_config);
            let initial = Self::initial_bitfield(
                profile,
                num_pieces,
                &available,
                spec.prepop_completion_max,
                &mut rng,
            );
            let mut builder = EngineBuilder::new(geometry, info_hash, peer_id)
                .config(cfg)
                .data(data.clone())
                .ip(ip)
                .initial_pieces(initial)
                .rng_seed(spec.seed.wrapping_mul(31).wrapping_add(idx as u64));
            if spec.local == Some(idx) {
                let meta = TraceMeta {
                    torrent: "swarm".to_owned(),
                    torrent_id: 0,
                    num_pieces,
                    num_blocks: geometry.total_blocks(),
                    initial_seeds: spec
                        .peers
                        .iter()
                        .filter(|p| matches!(p.role, Role::Seed | Role::SuperSeed))
                        .count() as u32,
                    initial_leechers: spec
                        .peers
                        .iter()
                        .filter(|p| !matches!(p.role, Role::Seed | Role::SuperSeed))
                        .count() as u32,
                    session_end: Instant(spec.duration.0),
                    seed_at: None,
                };
                builder = builder.recorder(meta);
            }
            let engine = builder.build();
            let was_seed = engine.is_seed();
            peers.push(SimPeer {
                engine,
                profile: profile.clone(),
                alive: false,
                was_seed,
                links: Vec::new(),
                spare_queues: Vec::new(),
                port: 6881,
                restarts: 0,
            });
            ip_of.push(ip);
            by_ip.insert(ip, idx);
        }

        let mut queue = EventQueue::new();
        for (idx, p) in spec.peers.iter().enumerate() {
            queue.schedule(Instant(p.join_at.0), Ev::Join(idx));
        }
        queue.schedule(Instant(spec.transfer_round.0), Ev::TransferRound);
        if spec.local.is_some() || spec.sample_global {
            queue.schedule(Instant(spec.sample_every.0), Ev::Sample);
        }

        let n = spec.peers.len();
        let mut tracker = SimTracker::new();
        tracker.scalable_sampling = spec.scalable_tracker;
        let round_secs = spec.transfer_round.as_secs_f64();
        let download_budget: Vec<u64> = peers
            .iter()
            .map(|p| {
                let cap = p.engine.config.max_download_rate;
                if cap == u64::MAX {
                    u64::MAX
                } else {
                    (cap as f64 * round_secs) as u64
                }
            })
            .collect();
        let upload_budget: Vec<u64> = peers
            .iter()
            .map(|p| (p.engine.config.max_upload_rate as f64 * round_secs) as u64)
            .collect();
        let link_model = spec.net_model().build(spec.peers.len(), spec.seed);
        let base_delay = link_model.base_delay();
        Swarm {
            spec,
            link_model,
            base_delay,
            round_secs,
            geometry,
            data,
            queue,
            peers,
            ip_of,
            by_ip,
            tracker,
            rng,
            completion: vec![None; n],
            events_processed: 0,
            global_series: Vec::new(),
            info_hash,
            uses_global_picker,
            metrics: None,
            metric_snapshots: Vec::new(),
            series: None,
            health: None,
            last_progress: vec![0; n],
            starvation_scratch: Vec::new(),
            profiler: bt_obs::Profiler::disabled(),
            budget_scratch: Vec::new(),
            demand_scratch: Vec::new(),
            demand_bytes: Vec::new(),
            grant_scratch: Vec::new(),
            counts_scratch: Vec::new(),
            queued_blocks: vec![0; n],
            download_budget,
            upload_budget,
            tracer: Tracer::disabled(),
            piece_life: HashMap::new(),
            flight: None,
            was_healthy: true,
            events_shared: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Attach a `bt-obs` registry: every engine reports aggregate
    /// `core.*` series into it, the swarm reports `sim.*` series, and
    /// [`SwarmResult::metrics`] carries one snapshot per sampling
    /// period. Pass a manual-clock registry
    /// ([`bt_obs::Registry::new_manual`]) for deterministic snapshots;
    /// the swarm keeps its clock in step with virtual time.
    #[must_use]
    pub fn with_metrics(mut self, registry: bt_obs::Registry) -> Swarm {
        let metrics = SimMetrics::register(&registry);
        for p in &mut self.peers {
            p.engine.set_metrics(metrics.engine.clone());
        }
        // Snapshots ride the sampling period; make sure it fires even
        // when neither a local trace nor global sampling asked for it.
        if self.spec.local.is_none() && !self.spec.sample_global {
            self.queue
                .schedule(Instant(self.spec.sample_every.0), Ev::Sample);
        }
        self.metrics = Some(metrics);
        self
    }

    /// Attach a time-series store: on every sampling period (and at the
    /// end of the run) the current registry snapshot's counters and
    /// gauges are appended as series points. Requires
    /// [`with_metrics`](Swarm::with_metrics) first — the store should be
    /// built on the same registry so timestamps share the virtual clock.
    ///
    /// Under a manual clock the appended series are a pure function of
    /// spec + seed, so the serialized store is byte-identical across
    /// runs and job counts (see `tests/series_determinism.rs`).
    ///
    /// # Panics
    /// If no metrics registry is attached yet.
    #[must_use]
    pub fn with_series(self, store: bt_obs::SeriesStore) -> Swarm {
        assert!(
            self.metrics.is_some(),
            "with_series requires with_metrics first"
        );
        if let Some(h) = &self.health {
            h.set_series(store.clone());
        }
        let mut this = self;
        this.series = Some(store);
        this
    }

    /// Attach live health monitors ([`bt_analysis::live`]): entropy,
    /// replication spread, reciprocation and starvation are re-judged
    /// on every sampling period from ground-truth swarm state, surfaced
    /// as `live.*` gauges (plus float series when
    /// [`with_series`](Swarm::with_series) is also attached), and the
    /// final [`HealthReport`] lands on [`SwarmResult::health`].
    /// Monitors only read swarm state — digests and traces are
    /// unchanged. Requires [`with_metrics`](Swarm::with_metrics) first.
    ///
    /// # Panics
    /// If no metrics registry is attached yet.
    #[must_use]
    pub fn with_health(mut self, thresholds: Thresholds) -> Swarm {
        let registry = self
            .metrics
            .as_ref()
            .expect("with_health requires with_metrics first")
            .registry()
            .clone();
        let monitor = HealthMonitor::new(&registry, thresholds);
        if let Some(store) = &self.series {
            monitor.set_series(store.clone());
        }
        self.health = Some(monitor);
        self
    }

    /// Attach a span profiler: the swarm records `sim.*` spans around
    /// event-queue pops and dispatch, every engine records
    /// `core.handle.*` / `core.choke_round` / `core.piece_pick` spans
    /// nested inside them, and [`SwarmResult::profile`] carries the
    /// aggregated [`bt_obs::Profile`]. Pass a manual-clock profiler
    /// ([`bt_obs::TimeSource::manual`]) for deterministic profiles —
    /// the swarm keeps its clock in step with virtual time, so span
    /// durations are 0 µs (the clock never moves *inside* an event) but
    /// the call tree and counts are byte-identical run to run. A
    /// wall-clock profiler measures real time instead.
    #[must_use]
    pub fn with_profiler(mut self, profiler: bt_obs::Profiler) -> Swarm {
        for p in &mut self.peers {
            p.engine.set_profiler(profiler.clone());
        }
        self.profiler = profiler;
        self
    }

    /// Attach a causal [`Tracer`]: sampled piece lifecycles
    /// (`injected → first_have → block_sent → verified →
    /// k_replicated`), per-round choke-decision audits on sampled
    /// peers, and message provenance (`request → send → deliver`)
    /// while a sampled lifecycle is open. Sampling decisions hash
    /// piece/peer ids (never the swarm RNG), so digests and §III-C
    /// traces are byte-identical whether tracing is on or off.
    #[must_use]
    pub fn with_trace(mut self, tracer: Tracer) -> Swarm {
        if tracer.enabled() {
            // Coverage guarantee: pin the minimal-hash piece and peer so
            // even a sampling rate above the id count (8-piece presets
            // at 1/64) exports ≥ 1 complete lifecycle and ≥ 1 audit.
            tracer.set_universe(
                u64::from(self.geometry.num_pieces()),
                self.peers.len() as u64,
            );
            for (idx, p) in self.peers.iter_mut().enumerate() {
                if tracer.sample_peer(idx as u64) {
                    p.engine.enable_choke_audit();
                }
            }
        }
        self.tracer = tracer;
        self
    }

    /// Attach a [`FlightRecorder`]: a bounded ring of recent trace
    /// events plus a log ring, dumped as a self-contained bundle when
    /// a live-monitor invariant trips ([`with_health`](Swarm::with_health))
    /// or the run panics. Compose with [`with_trace`](Swarm::with_trace)
    /// via [`Tracer::with_flight`] so trace events reach the ring.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: FlightRecorder) -> Swarm {
        self.flight = Some(recorder);
        self
    }

    fn initial_bitfield(
        profile: &BehaviorProfile,
        num_pieces: u32,
        available: &[u32],
        prepop_max: f64,
        rng: &mut SmallRng,
    ) -> Bitfield {
        let completion = profile.initial_completion();
        if completion >= 1.0 {
            return Bitfield::full(num_pieces);
        }
        let mut bf = Bitfield::new(num_pieces);
        let target = if completion > 0.0 {
            // Almost-done joiners hold an explicit fraction of all pieces.
            (f64::from(num_pieces) * completion).round() as usize
        } else if profile.prepopulate && matches!(profile.role, Role::Leecher | Role::FreeRider) {
            // Pre-existing leechers hold a skewed-low fraction of the
            // *available* pieces (pre-session history): in a live swarm,
            // peers spend most of their sojourn at low completion (slow
            // ramp-up) and near-complete peers leave soon, so the peer
            // progress distribution leans young.
            let frac = rng.random_range(0.0..1.0f64).powf(1.5) * prepop_max.max(1e-9);
            (available.len() as f64 * frac).round() as usize
        } else {
            0
        };
        if target == 0 {
            return bf;
        }
        if completion > 0.0 {
            // Draw from all pieces.
            use rand::seq::SliceRandom;
            let mut all: Vec<u32> = (0..num_pieces).collect();
            all.shuffle(rng);
            for &p in all.iter().take(target) {
                bf.set(p);
            }
        } else {
            use rand::seq::SliceRandom;
            let mut avail = available.to_vec();
            avail.shuffle(rng);
            for &p in avail.iter().take(target) {
                bf.set(p);
            }
        }
        bf
    }

    /// Geometry of the simulated torrent.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Run to completion: until the event queue drains or the configured
    /// duration elapses.
    pub fn run(mut self) -> SwarmResult {
        let _flight_guard = self
            .flight
            .clone()
            .map(|fr| FlightGuard::new(fr, self.events_shared.clone()));
        let end = Instant(self.spec.duration.0);
        while let Some(next) = self.queue.peek_time() {
            if next > end {
                break;
            }
            let (now, ev) = {
                let _span_guard = self.profiler.span("sim.event_pop");
                self.queue.pop().expect("peeked")
            };
            self.events_processed += 1;
            if self.flight.is_some() {
                self.events_shared
                    .store(self.events_processed, Ordering::Relaxed);
            }
            if let Some(m) = &self.metrics {
                m.registry().time().advance_to(now.0);
                m.events.inc();
            }
            if let Some(t) = self.profiler.time() {
                t.advance_to(now.0);
            }
            let _span_guard = self.profiler.span("sim.event");
            self.handle(now, ev);
        }
        self.finish(end)
    }

    fn finish(mut self, end: Instant) -> SwarmResult {
        self.tracer.flush_local();
        if let Some(t) = self.profiler.time() {
            t.advance_to(end.0);
        }
        if self.metrics.is_some() {
            if let Some(m) = &self.metrics {
                m.registry().time().advance_to(end.0);
            }
            self.update_metric_gauges(end);
            self.observe_health(end);
            if let Some(m) = &self.metrics {
                let snap = m.registry().snapshot();
                if let Some(store) = &self.series {
                    store.append_snapshot(&snap);
                }
                self.metric_snapshots.push(snap);
            }
        }
        let trace = self
            .spec
            .local
            .and_then(|idx| self.peers[idx].engine.take_trace())
            .map(|mut tr| {
                tr.meta.session_end = end;
                tr
            });
        let completed_peers = self.completion.iter().flatten().count();
        SwarmResult {
            trace,
            completion: self.completion,
            completed_peers,
            events_processed: self.events_processed,
            tracker_started: self.tracker.started,
            tracker_completed: self.tracker.completed,
            global_series: self.global_series,
            metrics: self.metric_snapshots,
            profile: self.profiler.is_enabled().then(|| self.profiler.snapshot()),
            health: self.health.as_ref().map(|m| m.report()),
        }
    }

    /// Refresh the `sim.*` gauges from swarm state: virtual progress,
    /// peer liveness, and the sizes of the interest/unchoke matrices
    /// (directed edges over live connections).
    fn update_metric_gauges(&mut self, now: Instant) {
        let Some(m) = &self.metrics else { return };
        let mut live = 0i64;
        let mut interested = 0i64;
        let mut unchoked = 0i64;
        for p in &self.peers {
            if !p.alive {
                continue;
            }
            live += 1;
            for conn in p.engine.connections() {
                interested += i64::from(conn.am_interested);
                unchoked += i64::from(!conn.am_choking);
            }
        }
        m.virtual_secs.set(now.as_secs_f64() as i64);
        m.live_peers.set(live);
        m.completed_peers
            .set(self.completion.iter().flatten().count() as i64);
        m.interested_pairs.set(interested);
        m.unchoked_pairs.set(unchoked);
    }

    /// The live health monitor, when [`Swarm::with_health`] attached
    /// one. Clone it before [`run`](Swarm::run) to watch verdicts from
    /// another thread (e.g. an HTTP `/health` route).
    pub fn health_monitor(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// Feed the live monitors one ground-truth sample: per-piece
    /// replication over live peers, leecher unchoke reciprocity (local
    /// tit-for-tat view on each engine), and per-leecher starvation
    /// ages. Same O(live peers + connections) cost class as
    /// [`update_metric_gauges`](Self::update_metric_gauges); reads
    /// state only, so digests and traces are unchanged.
    fn observe_health(&mut self, now: Instant) {
        let Some(monitor) = self.health.clone() else {
            return;
        };
        let n = self.geometry.num_pieces() as usize;
        self.counts_scratch.clear();
        self.counts_scratch.resize(n, 0);
        self.starvation_scratch.clear();
        let mut any_live = false;
        let mut leecher_unchokes = 0u64;
        let mut reciprocated = 0u64;
        let mut worst_starved: Option<(PeerIdx, u64)> = None;
        for (idx, p) in self.peers.iter().enumerate() {
            if !p.alive {
                continue;
            }
            any_live = true;
            for piece in p.engine.own_pieces().iter_ones() {
                self.counts_scratch[piece as usize] += 1;
            }
            if p.engine.is_seed() {
                continue;
            }
            let age = now.0.saturating_sub(self.last_progress[idx]) / 1_000_000;
            self.starvation_scratch.push(age);
            if worst_starved.is_none_or(|(_, w)| age > w) {
                worst_starved = Some((idx, age));
            }
            for conn in p.engine.connections() {
                if !conn.am_choking {
                    leecher_unchokes += 1;
                    if !conn.peer_choking {
                        reciprocated += 1;
                    }
                }
            }
        }
        let counts: &[u32] = if any_live { &self.counts_scratch } else { &[] };
        monitor.observe(
            now.0,
            &LiveSample {
                counts,
                leecher_unchokes,
                reciprocated,
                starvation_secs: &self.starvation_scratch,
            },
        );
        // Edge-triggered flight-recorder dump: the first observation
        // where any monitor turns unhealthy writes a bundle.
        if self.flight.is_some() {
            let report = monitor.report();
            let healthy = report.healthy();
            if self.was_healthy && !healthy {
                self.dump_flight(&report, worst_starved);
            }
            self.was_healthy = healthy;
        }
    }

    /// Write a flight-recorder bundle for an invariant trip: reason
    /// names the tripped monitors, and the explanation is derived from
    /// the recorder's recent trace slice (worst-starved peer's choke
    /// history, rarest open sampled piece).
    fn dump_flight(&self, report: &HealthReport, worst: Option<(PeerIdx, u64)>) {
        let Some(fr) = &self.flight else { return };
        let tripped: Vec<&str> = report
            .monitors
            .iter()
            .filter(|m| !m.healthy)
            .map(|m| m.name)
            .collect();
        let reason = format!("invariant:{}", tripped.join("+"));
        let explanation = bt_analysis::explain::explain_unhealthy(report, worst, &fr.trace_slice());
        let health_json = report.to_json();
        let ctx = DumpContext {
            registry: self.metrics.as_ref().map(|m| m.registry()),
            health_json: Some(&health_json),
            explanation: Some(&explanation),
            events_processed: self.events_processed,
        };
        match fr.dump(&reason, &ctx) {
            Ok(path) => eprintln!("flight recorder: {reason} -> {}", path.display()),
            Err(e) => eprintln!("flight recorder: dump failed: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Causal trace hooks
    // ------------------------------------------------------------------

    /// Whether `piece` is sampled and its lifecycle has not reached
    /// `k_replicated` yet — the gate bounding per-message provenance.
    fn lifecycle_open(&self, piece: u32) -> bool {
        self.tracer.sample_piece(piece) && self.piece_life.get(&piece).is_none_or(|l| !l.done)
    }

    /// Record `injected` for sampled pieces a joining peer already
    /// holds (seeds and prepopulated leechers) and count the peer as a
    /// holder toward `k_replicated`.
    fn trace_join_pieces(&mut self, now: Instant, idx: PeerIdx) {
        let sampled: Vec<u32> = self.peers[idx]
            .engine
            .own_pieces()
            .iter_ones()
            .filter(|&p| self.tracer.sample_piece(p))
            .collect();
        for piece in sampled {
            let life = self.piece_life.entry(piece).or_default();
            if life.done || !life.holders.insert(idx) {
                continue;
            }
            if !life.injected {
                life.injected = true;
                self.tracer.record(
                    now.0,
                    TraceCat::Piece,
                    "injected",
                    piece.into(),
                    &[("by", idx as i64)],
                );
            }
            self.check_k_replicated(now, piece);
        }
    }

    /// Close the lifecycle with `k_replicated` once enough verified
    /// holders exist.
    fn check_k_replicated(&mut self, now: Instant, piece: u32) {
        let k = self.tracer.k_target() as usize;
        let Some(life) = self.piece_life.get_mut(&piece) else {
            return;
        };
        if !life.done && life.injected && life.holders.len() >= k {
            life.done = true;
            self.tracer.record(
                now.0,
                TraceCat::Piece,
                "k_replicated",
                piece.into(),
                &[("copies", life.holders.len() as i64)],
            );
        }
    }

    /// A sampled piece passed hash verification on `idx`.
    fn on_piece_verified(&mut self, now: Instant, idx: PeerIdx, piece: u32) {
        let life = self.piece_life.entry(piece).or_default();
        if life.done || !life.holders.insert(idx) {
            return;
        }
        let copies = life.holders.len();
        self.tracer.record(
            now.0,
            TraceCat::Piece,
            "verified",
            piece.into(),
            &[("peer", idx as i64), ("copies", copies as i64)],
        );
        self.check_k_replicated(now, piece);
    }

    /// Message provenance on delivery, plus the `first_have` lifecycle
    /// edge (where rarest-first advertising becomes visible).
    fn trace_delivery(&mut self, now: Instant, to: PeerIdx, msg: &Message) {
        let Some(piece) = msg_piece(msg) else { return };
        if !self.lifecycle_open(piece) {
            return;
        }
        self.tracer.record(
            now.0,
            TraceCat::Msg,
            "deliver",
            piece.into(),
            &[("msg", msg_code(msg)), ("to", to as i64)],
        );
        if matches!(msg, Message::Have(_)) {
            let life = self.piece_life.entry(piece).or_default();
            if !life.first_have {
                life.first_have = true;
                self.tracer.record(
                    now.0,
                    TraceCat::Piece,
                    "first_have",
                    piece.into(),
                    &[("to", to as i64)],
                );
            }
        }
    }

    /// Drain the engine's audit surfaces: piece-pick provenance
    /// (`request` events carrying the availability the picker saw) and
    /// the per-round choke audit (`round` plus one `audit` per ranked
    /// peer, remote resolved from the link table).
    fn trace_engine_audit(&mut self, now: Instant, idx: PeerIdx) {
        let picks = self.peers[idx].engine.take_pick_log();
        for pick in picks {
            if self.lifecycle_open(pick.piece) {
                self.tracer.record(
                    now.0,
                    TraceCat::Msg,
                    "request",
                    pick.piece.into(),
                    &[
                        ("peer", idx as i64),
                        ("avail", i64::from(pick.availability)),
                    ],
                );
            }
        }
        let Some(audit) = self.peers[idx].engine.take_choke_audit() else {
            return;
        };
        let remote =
            |conn: ConnId| -> i64 { self.peers[idx].link(conn).map_or(-1, |s| s.to as i64) };
        let optimistic = audit.optimistic.map_or(-1, remote);
        self.tracer.record(
            now.0,
            TraceCat::Choke,
            "round",
            idx as u64,
            &[
                ("is_seed", i64::from(audit.is_seed)),
                ("flips", i64::from(audit.flips)),
                ("peers", audit.entries.len() as i64),
                ("optimistic", optimistic),
            ],
        );
        for e in &audit.entries {
            self.tracer.record(
                now.0,
                TraceCat::Choke,
                "audit",
                idx as u64,
                &[
                    ("peer", remote(e.conn)),
                    ("rank", i64::from(e.rank)),
                    ("down_bps", e.download_rate as i64),
                    ("up_bps", e.upload_rate as i64),
                    ("interested", i64::from(e.interested)),
                    ("snubbed", i64::from(e.snubbed)),
                    ("outcome", e.outcome.as_code()),
                ],
            );
        }
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: Instant, ev: Ev) {
        match ev {
            Ev::Join(idx) => self.on_join(now, idx),
            Ev::Depart(idx) => self.on_depart(now, idx),
            Ev::Restart(idx) => self.on_restart(now, idx),
            Ev::Deliver { to, conn, msg } => {
                if self.peers[to].alive {
                    if matches!(msg, Message::Piece { .. }) {
                        self.last_progress[to] = now.0;
                    }
                    // A watched piece: sampled, lifecycle open, and not
                    // yet held by the receiver — if the engine holds it
                    // after `handle`, this delivery verified it.
                    let watched = if self.tracer.enabled() {
                        self.trace_delivery(now, to, &msg);
                        match &msg {
                            Message::Piece { block, .. } if self.lifecycle_open(block.piece) => {
                                let piece = block.piece;
                                (!self.peers[to].engine.own_pieces().get(piece)).then_some(piece)
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    self.peers[to]
                        .engine
                        .handle(now, Input::Message { conn, msg });
                    if let Some(piece) = watched {
                        if self.peers[to].engine.own_pieces().get(piece) {
                            self.on_piece_verified(now, to, piece);
                        }
                    }
                    self.process_actions(now, to);
                }
            }
            Ev::DialArrive { from, to_ip } => self.on_dial(now, from, to_ip),
            Ev::NotifyDisconnect { to, conn } => {
                let p = &mut self.peers[to];
                if p.alive {
                    p.engine.handle(now, Input::PeerDisconnected { conn });
                    if let Some((.., dropped)) = p.remove_link(conn) {
                        self.queued_blocks[to] -= dropped;
                    }
                    self.process_actions(now, to);
                }
            }
            Ev::TrackerResponse { to, peers } => {
                if self.peers[to].alive {
                    self.peers[to]
                        .engine
                        .handle(now, Input::TrackerResponse { peers });
                    self.process_actions(now, to);
                }
            }
            Ev::EngineTick(idx) => {
                if self.peers[idx].alive {
                    self.peers[idx].engine.handle(now, Input::Tick);
                    self.process_actions(now, idx);
                }
            }
            Ev::TransferRound => {
                self.do_transfers(now);
                if self.uses_global_picker {
                    self.push_global_counts();
                }
                if let Some(m) = &self.metrics {
                    m.transfer_rounds.inc();
                }
                self.queue
                    .schedule(now + self.spec.transfer_round, Ev::TransferRound);
            }
            Ev::Sample => {
                if let Some(idx) = self.spec.local {
                    if self.peers[idx].alive {
                        self.peers[idx].engine.sample_availability(now);
                    }
                }
                if self.spec.sample_global {
                    self.sample_global_truth(now);
                }
                if self.metrics.is_some() {
                    self.update_metric_gauges(now);
                    self.observe_health(now);
                    if let Some(m) = &self.metrics {
                        let snap = m.registry().snapshot();
                        if let Some(store) = &self.series {
                            store.append_snapshot(&snap);
                        }
                        self.metric_snapshots.push(snap);
                    }
                }
                self.queue
                    .schedule(now + self.spec.sample_every, Ev::Sample);
            }
        }
    }

    fn on_join(&mut self, now: Instant, idx: PeerIdx) {
        {
            let p = &mut self.peers[idx];
            if p.alive {
                return;
            }
            p.alive = true;
        }
        self.last_progress[idx] = now.0;
        if self.tracer.enabled() {
            self.trace_join_pieces(now, idx);
        }
        self.peers[idx].engine.handle(now, Input::Start);
        self.process_actions(now, idx);
        // Stagger rechoke phases so the swarm's choke rounds do not all
        // fire on the same instant. This overrides the default first
        // deadline `Start` armed; the superseded timer event becomes a
        // stale no-op tick.
        let phase = Duration(self.rng.random_range(0..10_000_000));
        self.peers[idx]
            .engine
            .schedule_rechoke(now + phase + Duration::from_secs(1));
        self.process_actions(now, idx);
        // Scheduled departures.
        let depart = match self.peers[idx].profile.role {
            Role::Churner => Some(now + Duration::from_millis(self.rng.random_range(1500..8000))),
            _ => self.peers[idx]
                .profile
                .depart_at
                .map(|d| Instant(d.0).max(now)),
        };
        if let Some(at) = depart {
            self.queue.schedule(at, Ev::Depart(idx));
        }
        if let Some(period) = self.peers[idx].profile.restart_after {
            self.queue.schedule(now + period, Ev::Restart(idx));
        }
    }

    /// Crash-and-restart: drop every connection, then come back with the
    /// same IP, the downloaded pieces intact, and a *fresh peer-ID
    /// suffix* — the §III-D identification noise.
    fn on_restart(&mut self, now: Instant, idx: PeerIdx) {
        if !self.peers[idx].alive {
            return;
        }
        debug_assert!(
            self.spec.local != Some(idx),
            "restarting the instrumented peer would discard its trace"
        );
        // Tear down like a departure...
        self.tracker.remove(idx);
        self.drop_all_links(now, idx);
        let audited = self.tracer.enabled() && self.tracer.sample_peer(idx as u64);
        // ...then rebuild the engine: same IP, same disk (bitfield), new
        // random peer-ID suffix.
        let p = &mut self.peers[idx];
        p.restarts += 1;
        let cfg = p.profile.engine_config(&self.spec.base_config);
        let new_id = PeerId::new(
            p.profile.client,
            self.spec
                .seed
                .wrapping_add(idx as u64 * 7919)
                .wrapping_add(u64::from(p.restarts) * 104_729),
        );
        let surviving = p.engine.own_pieces().clone();
        let pending = p.engine.next_wakeup();
        p.engine = EngineBuilder::new(self.geometry, self.info_hash, new_id)
            .config(cfg)
            .data(self.data.clone())
            .ip(self.ip_of[idx])
            .initial_pieces(surviving)
            .rng_seed(
                self.spec
                    .seed
                    .wrapping_mul(31)
                    .wrapping_add(idx as u64)
                    .wrapping_add(u64::from(p.restarts)),
            )
            .build();
        if let Some(m) = &self.metrics {
            p.engine.set_metrics(m.engine.clone());
        }
        p.engine.set_profiler(self.profiler.clone());
        if audited {
            p.engine.enable_choke_audit();
        }
        p.was_seed = p.engine.is_seed();
        p.engine.handle(now, Input::Start);
        if let Some(at) = pending {
            // Continue the established choke-round chain instead of
            // phase-shifting it: a crash must not move the rechoke grid.
            p.engine.schedule_rechoke(at.max(now));
        }
        self.process_actions(now, idx);
        if let Some(period) = self.peers[idx].profile.restart_after {
            self.queue.schedule(now + period, Ev::Restart(idx));
        }
    }

    fn on_depart(&mut self, now: Instant, idx: PeerIdx) {
        if !self.peers[idx].alive {
            return;
        }
        self.peers[idx].alive = false;
        self.tracker.remove(idx);
        self.drop_all_links(now, idx);
    }

    /// Close every link of `idx`, notifying the far ends. Slot order is
    /// ascending `ConnId` — the same order the map-based code sorted
    /// into, so disconnect events keep their sequence numbers.
    fn drop_all_links(&mut self, now: Instant, idx: PeerIdx) {
        for conn in 0..self.peers[idx].links.len() {
            if let Some((to, remote_conn, lat, dropped)) =
                self.peers[idx].remove_link(conn as ConnId)
            {
                self.queued_blocks[idx] -= dropped;
                self.queue.schedule(
                    now + lat,
                    Ev::NotifyDisconnect {
                        to,
                        conn: remote_conn,
                    },
                );
            }
        }
    }

    fn on_dial(&mut self, now: Instant, from: PeerIdx, to_ip: IpAddr) {
        if self.spec.dial_failure_prob > 0.0
            && self.rng.random_range(0.0..1.0) < self.spec.dial_failure_prob
        {
            self.fail_dial(now, from);
            return;
        }
        let Some(&to) = self.by_ip.get(&to_ip) else {
            self.fail_dial(now, from);
            return;
        };
        if !self.peers[from].alive || !self.peers[to].alive || from == to {
            self.fail_dial(now, from);
            return;
        }
        // Real handshakes cross the wire (and the codec) in both
        // directions before the engines learn of the connection; reserved
        // bits carry the Fast Extension advertisement.
        let mut hs_a = Handshake::new(self.info_hash, self.peers[from].engine.peer_id());
        hs_a.reserved = self.peers[from].engine.handshake_reserved();
        let mut hs_b = Handshake::new(self.info_hash, self.peers[to].engine.peer_id());
        hs_b.reserved = self.peers[to].engine.handshake_reserved();
        let decoded_a = Handshake::decode(&hs_a.encode()).expect("handshake roundtrip");
        let decoded_b = Handshake::decode(&hs_b.encode()).expect("handshake roundtrip");
        debug_assert_eq!(decoded_a.info_hash, decoded_b.info_hash);
        let caps_a = bt_core::engine::PeerCaps::from_reserved(&decoded_a.reserved);
        let caps_b = bt_core::engine::PeerCaps::from_reserved(&decoded_b.reserved);

        let from_ip = self.ip_of[from];
        let to_conn = self.peers[to]
            .engine
            .handle(
                now,
                Input::PeerConnected {
                    ip: from_ip,
                    peer_id: decoded_a.peer_id,
                    initiated_by_us: false,
                    caps: caps_a,
                },
            )
            .take_accepted();
        let Some(to_conn) = to_conn else {
            self.fail_dial(now, from);
            return;
        };
        let from_conn = self.peers[from]
            .engine
            .handle(
                now,
                Input::PeerConnected {
                    ip: to_ip,
                    peer_id: decoded_b.peer_id,
                    initiated_by_us: true,
                    caps: caps_b,
                },
            )
            .take_accepted();
        let Some(from_conn) = from_conn else {
            // The initiator refused its own dial (duplicate IP race):
            // tear down the acceptor side.
            self.peers[to]
                .engine
                .handle(now, Input::PeerDisconnected { conn: to_conn });
            self.process_actions(now, to);
            return;
        };
        // The link model fixes both directions' parameters now, with
        // the master PRNG — the same point in the draw sequence where
        // the legacy jitter sample happened.
        let (fwd, rev) = self.link_model.establish(from, to, &mut self.rng);
        self.peers[from].insert_link(from_conn, to, to_conn, fwd, self.round_secs);
        self.peers[to].insert_link(to_conn, from, from_conn, rev, self.round_secs);
        self.process_actions(now, to);
        self.process_actions(now, from);
    }

    fn fail_dial(&mut self, now: Instant, from: PeerIdx) {
        if self.peers[from].alive {
            self.peers[from].engine.handle(now, Input::ConnectFailed);
            self.process_actions(now, from);
        }
    }

    // ------------------------------------------------------------------
    // Engine action processing
    // ------------------------------------------------------------------

    fn process_actions(&mut self, now: Instant, idx: PeerIdx) {
        // Seed transition bookkeeping (tracker stats + scheduled linger).
        if self.peers[idx].engine.is_seed() && !self.peers[idx].was_seed {
            self.peers[idx].was_seed = true;
            self.completion[idx] = Some(now);
            self.tracker.mark_seed(idx);
            if let Some(linger) = self.peers[idx].profile.seed_linger {
                self.queue.schedule(now + linger, Ev::Depart(idx));
            }
        }
        if self.tracer.enabled() {
            self.trace_engine_audit(now, idx);
        }
        let actions = self.peers[idx].engine.drain_actions();
        for action in actions {
            match action {
                Action::Send { conn, msg } => {
                    if matches!(msg, Message::Choke) {
                        // Choking drops this connection's queued uploads.
                        if let Some(slot) = self.peers[idx].link_mut(conn) {
                            self.queued_blocks[idx] -= slot.queue.len() as u32;
                            slot.queue.clear();
                            slot.head_credit = 0;
                        }
                    }
                    self.send_on_link(now, idx, conn, msg);
                }
                Action::SendBlock { conn, block } => {
                    if let Some(slot) = self.peers[idx].link_mut(conn) {
                        slot.queue.push_back(block);
                        self.queued_blocks[idx] += 1;
                    }
                }
                Action::CancelBlock { conn, block } => {
                    if let Some(slot) = self.peers[idx].link_mut(conn) {
                        if let Some(pos) = slot.queue.iter().position(|b| *b == block) {
                            // Keep the head's partial credit if the head
                            // itself is cancelled; the credit simply goes
                            // to the next block (capacity was spent).
                            slot.queue.remove(pos);
                            self.queued_blocks[idx] -= 1;
                        }
                    }
                }
                Action::Disconnect { conn } => {
                    if let Some((to, remote_conn, lat, dropped)) = self.peers[idx].remove_link(conn)
                    {
                        self.queued_blocks[idx] -= dropped;
                        self.queue.schedule(
                            now + lat,
                            Ev::NotifyDisconnect {
                                to,
                                conn: remote_conn,
                            },
                        );
                    }
                }
                Action::Announce { event } => self.do_announce(now, idx, event),
                Action::Connect { peer } => {
                    self.queue.schedule(
                        now + self.base_delay,
                        Ev::DialArrive {
                            from: idx,
                            to_ip: peer.ip,
                        },
                    );
                }
                Action::SetTimer { at } => {
                    self.queue.schedule(at, Ev::EngineTick(idx));
                }
            }
        }
    }

    /// Schedule `msg` for delivery over `idx`'s link `conn`: constant
    /// one-way delay, then the seeded loss draw (a lost transmission is
    /// redelivered one RTO late), then the per-link in-order watermark
    /// (later sends never overtake earlier ones — TCP above a lossy
    /// path). No-op when the link is already gone, like the old direct
    /// schedule. Loss draws only happen on links with `loss > 0`, so
    /// loss-free models consume no extra randomness.
    fn send_on_link(&mut self, now: Instant, idx: PeerIdx, conn: ConnId, msg: Message) {
        let Some(slot) = self.peers[idx]
            .links
            .get_mut(conn as usize)
            .and_then(|s| s.as_mut())
        else {
            return;
        };
        let mut at = now + slot.params.delay;
        let mut lost = false;
        if slot.params.loss > 0.0 && self.rng.random_range(0.0..1.0) < slot.params.loss {
            at += slot.params.rto;
            lost = true;
            if let Some(m) = &self.metrics {
                m.link_losses.inc();
            }
        }
        if at < slot.next_free {
            at = slot.next_free;
        }
        slot.next_free = at;
        let (to, remote_conn) = (slot.to, slot.remote_conn);
        if self.tracer.enabled() {
            if let Some(piece) = msg_piece(&msg) {
                if self.lifecycle_open(piece) {
                    self.tracer.record(
                        now.0,
                        TraceCat::Msg,
                        "send",
                        piece.into(),
                        &[
                            ("msg", msg_code(&msg)),
                            ("from", idx as i64),
                            ("to", to as i64),
                            ("delay_us", (at.0 - now.0) as i64),
                            ("lost", i64::from(lost)),
                        ],
                    );
                }
            }
        }
        self.queue.schedule(
            at,
            Ev::Deliver {
                to,
                conn: remote_conn,
                msg,
            },
        );
    }

    fn do_announce(&mut self, now: Instant, idx: PeerIdx, event: AnnounceEvent) {
        let ip = self.ip_of[idx];
        let port = self.peers[idx].port;
        let is_seed = self.peers[idx].engine.is_seed();
        let num_want = self
            .spec
            .tracker_response_cap
            .unwrap_or(bt_wire::tracker::DEFAULT_NUM_WANT as usize)
            .min(bt_wire::tracker::DEFAULT_NUM_WANT as usize);
        let response =
            self.tracker
                .announce(idx, ip, port, is_seed, event, num_want, &mut self.rng);
        if let Some(resp) = response {
            self.queue.schedule(
                now + self.base_delay,
                Ev::TrackerResponse {
                    to: idx,
                    peers: resp.peers,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Bandwidth model
    // ------------------------------------------------------------------

    fn do_transfers(&mut self, now: Instant) {
        let n = self.peers.len();
        // Per-receiver download budget for this round: a memcpy of the
        // precomputed caps (they never change mid-run).
        let mut budgets = std::mem::take(&mut self.budget_scratch);
        budgets.clone_from(&self.download_budget);
        let mut demand = std::mem::take(&mut self.demand_scratch);
        let mut demand_bytes = std::mem::take(&mut self.demand_bytes);
        let mut grants = std::mem::take(&mut self.grant_scratch);

        for idx in 0..n {
            // The dense queued-block counters make idle peers free: the
            // sweep reads one small array instead of every `SimPeer`.
            if self.queued_blocks[idx] == 0 {
                continue;
            }
            debug_assert!(self.peers[idx].alive, "queued uploads on a dead peer");
            // Max-min (water-filling) allocation: each connection demands
            // at most its queued bytes and its receiver's remaining
            // download budget; the sender's budget is split equally among
            // unsaturated connections, surplus flowing to the rest — the
            // fluid analogue of TCP filling whatever pipes have room.
            // Slot order is ascending ConnId, as the sort used to ensure.
            demand.clear();
            demand_bytes.clear();
            for (c, slot) in self.peers[idx].links.iter().enumerate() {
                let Some(slot) = slot else { continue };
                if slot.queue.is_empty() || !self.peers[slot.to].alive {
                    continue;
                }
                let queued: u64 = slot.queue.iter().map(|b| u64::from(b.length)).sum();
                // Demand is bounded by the receiver's round budget and
                // by this direction's own bandwidth (`round_cap`;
                // `u64::MAX` on uncapped links, i.e. a no-op).
                let d = queued
                    .saturating_sub(slot.head_credit)
                    .min(budgets[slot.to])
                    .min(slot.round_cap);
                if d > 0 {
                    demand.push((c as ConnId, slot.to, slot.remote_conn, d));
                    demand_bytes.push(d);
                }
            }
            if demand.is_empty() {
                continue;
            }
            water_fill_into(self.upload_budget[idx], &demand_bytes, &mut grants);
            for di in 0..demand.len() {
                let (conn, to, remote_conn, _) = demand[di];
                let grant = grants[di];
                if grant == 0 {
                    continue;
                }
                if budgets[to] != u64::MAX {
                    budgets[to] -= grant.min(budgets[to]);
                }
                // The link may have been torn down by an earlier grant's
                // engine reaction; credit on a gone link is simply lost
                // (capacity was spent), as with the map-based state.
                if let Some(slot) = self.peers[idx].link_mut(conn) {
                    slot.head_credit += grant;
                }
                // Complete as many whole blocks as the credit covers.
                while let Some(slot) = self.peers[idx].link_mut(conn) {
                    let Some(&head) = slot.queue.front() else {
                        slot.head_credit = 0;
                        break;
                    };
                    if slot.head_credit < u64::from(head.length) {
                        break;
                    }
                    slot.head_credit -= u64::from(head.length);
                    slot.queue.pop_front();
                    self.queued_blocks[idx] -= 1;
                    self.deliver_block(now, idx, conn, to, remote_conn, head);
                }
            }
        }
        self.budget_scratch = budgets;
        self.demand_scratch = demand;
        self.demand_bytes = demand_bytes;
        self.grant_scratch = grants;
    }

    fn deliver_block(
        &mut self,
        now: Instant,
        from: PeerIdx,
        from_conn: ConnId,
        to: PeerIdx,
        to_conn: ConnId,
        block: BlockRef,
    ) {
        if self.tracer.enabled() && self.lifecycle_open(block.piece) {
            self.tracer.record(
                now.0,
                TraceCat::Piece,
                "block_sent",
                block.piece.into(),
                &[
                    ("from", from as i64),
                    ("to", to as i64),
                    ("offset", i64::from(block.offset)),
                ],
            );
        }
        let mut data = self.data.block_bytes(block.piece, block.block_index());
        if self.spec.corrupt_block_prob > 0.0
            && !data.is_empty()
            && self.rng.random_range(0.0..1.0) < self.spec.corrupt_block_prob
        {
            let mut v = data.to_vec();
            let pos = self.rng.random_range(0..v.len());
            v[pos] ^= 0xFF;
            data = Bytes::from(v);
        }
        if let Some(m) = &self.metrics {
            m.blocks_delivered.inc();
        }
        self.peers[from].engine.handle(
            now,
            Input::BlockSent {
                conn: from_conn,
                block,
            },
        );
        self.process_actions(now, from);
        let msg = Message::Piece { block, data };
        if self.peers[from].link(from_conn).is_some() {
            self.send_on_link(now, from, from_conn, msg);
        } else {
            // The engine's reaction to `BlockSent` tore the link down;
            // the block was already on the wire, so it still arrives,
            // at the control-plane delay (the legacy fallback).
            self.queue.schedule(
                now + self.base_delay,
                Ev::Deliver {
                    to,
                    conn: to_conn,
                    msg,
                },
            );
        }
    }

    /// Record a ground-truth replication snapshot over all live peers.
    fn sample_global_truth(&mut self, now: Instant) {
        let n = self.geometry.num_pieces() as usize;
        let counts = &mut self.counts_scratch;
        counts.clear();
        counts.resize(n, 0);
        let mut live = 0u32;
        for p in &self.peers {
            if !p.alive {
                continue;
            }
            live += 1;
            for piece in p.engine.own_pieces().iter_ones() {
                counts[piece as usize] += 1;
            }
        }
        if live == 0 {
            return;
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / n as f64;
        let single = counts.iter().filter(|&&c| c == 1).count() as u32;
        self.global_series.push(GlobalSample {
            at: now,
            min,
            mean,
            max,
            single_copy_pieces: single,
            live_peers: live,
        });
    }

    fn push_global_counts(&mut self) {
        let num = self.geometry.num_pieces() as usize;
        let counts = &mut self.counts_scratch;
        counts.clear();
        counts.resize(num, 0);
        for p in &self.peers {
            if !p.alive {
                continue;
            }
            for piece in p.engine.own_pieces().iter_ones() {
                counts[piece as usize] += 1;
            }
        }
        for p in self.peers.iter_mut() {
            if p.alive {
                p.engine.update_global_counts(counts);
            }
        }
    }
}

/// Max-min fair allocation of `budget` over `demands`: repeatedly split
/// the remaining budget equally among unsaturated entries; entries whose
/// demand is below their share are granted in full and their leftover is
/// redistributed. Exposed for property tests; the transfer rounds use it
/// every second.
pub fn water_fill(budget: u64, demands: &[u64]) -> Vec<u64> {
    let mut grants = Vec::new();
    water_fill_into(budget, demands, &mut grants);
    grants
}

/// [`water_fill`] into a caller-owned buffer, so the per-second transfer
/// rounds allocate nothing.
fn water_fill_into(budget: u64, demands: &[u64], grants: &mut Vec<u64>) {
    grants.clear();
    grants.resize(demands.len(), 0);
    let mut remaining = budget;
    let mut open: Vec<usize> = (0..demands.len()).filter(|&i| demands[i] > 0).collect();
    while remaining > 0 && !open.is_empty() {
        let share = (remaining / open.len() as u64).max(1);
        let mut saturated = Vec::new();
        for &i in &open {
            let want = demands[i] - grants[i];
            if want <= share {
                saturated.push(i);
            }
        }
        if saturated.is_empty() {
            // Everyone can absorb a full share: grant and finish.
            for &i in &open {
                let g = share.min(remaining);
                grants[i] += g;
                remaining -= g;
                if remaining == 0 {
                    break;
                }
            }
            break;
        }
        for i in saturated {
            let want = demands[i] - grants[i];
            let g = want.min(remaining);
            grants[i] += g;
            remaining -= g;
            open.retain(|&j| j != i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64) -> SwarmSpec {
        let mut peers = vec![BehaviorProfile::seed()];
        for _ in 0..4 {
            peers.push(BehaviorProfile::leecher(Duration::ZERO));
        }
        SwarmSpec {
            seed,
            total_len: 8 * 256 * 1024, // 8 pieces
            piece_len: 256 * 1024,
            duration: Duration::from_secs(4000),
            peers,
            local: Some(1),
            ..SwarmSpec::default()
        }
    }

    #[test]
    fn water_fill_properties() {
        // Budget below total demand: equal shares to the unsaturated.
        assert_eq!(water_fill(90, &[100, 100, 100]), vec![30, 30, 30]);
        // Small demands are granted in full; surplus flows on.
        assert_eq!(water_fill(90, &[10, 100, 100]), vec![10, 40, 40]);
        // Budget above total demand: everyone saturated.
        assert_eq!(water_fill(1000, &[10, 20, 30]), vec![10, 20, 30]);
        // Zero demand gets nothing.
        assert_eq!(water_fill(100, &[0, 50]), vec![0, 50]);
        assert_eq!(water_fill(0, &[10, 10]), vec![0, 0]);
        // Conservation: grants never exceed budget or demands.
        for (budget, demands) in [
            (77u64, vec![13u64, 5, 99, 42]),
            (1, vec![3, 3]),
            (12, vec![7]),
        ] {
            let g = water_fill(budget, &demands);
            assert!(g.iter().sum::<u64>() <= budget);
            for (gi, di) in g.iter().zip(&demands) {
                assert!(gi <= di);
            }
        }
    }

    #[test]
    fn dial_failures_are_survivable() {
        let mut spec = tiny_spec(9);
        spec.dial_failure_prob = 0.5;
        spec.duration = Duration::from_secs(8000);
        let result = Swarm::new(spec).run();
        // Half the dials fail, the redial path keeps the swarm connected
        // and everyone still finishes.
        assert_eq!(
            result.completed_peers, 4,
            "completed {}",
            result.completed_peers
        );
    }

    #[test]
    fn fast_extension_swarm_completes() {
        let mut spec = tiny_spec(10);
        spec.base_config.fast_extension = true;
        spec.real_data = true;
        let result = Swarm::new(spec).run();
        assert_eq!(result.completed_peers, 4);
        // The instrumented peer must have seen allowed-fast grants.
        let trace = result.trace.unwrap();
        // (Grants are sent, not received-events; check the first block
        // arrives earlier than the 30 s optimistic-unchoke horizon.)
        let first_block = trace
            .iter()
            .find(|(_, e)| matches!(e, bt_instrument::trace::TraceEvent::BlockReceived { .. }))
            .map(|(t, _)| t.as_secs_f64());
        assert!(first_block.is_some());
    }

    #[test]
    fn restarting_client_reappears_with_fresh_peer_id() {
        let mut spec = tiny_spec(12);
        // Peer 4 crashes and restarts every 150 s — early enough that
        // the swarm (and the instrumented peer) is still downloading.
        spec.peers[4].restart_after = Some(Duration::from_secs(150));
        spec.duration = Duration::from_secs(6000);
        let result = Swarm::new(spec).run();
        let trace = result.trace.unwrap();
        let reg = bt_instrument::identify::PeerRegistry::from_trace(&trace);
        // The local peer observed the restarting client under more than
        // one peer ID on the same IP (§III-D, footnote 3)...
        assert!(
            reg.multi_id_ip_fraction() > 0.0,
            "restart should produce multi-ID IPs"
        );
        // ...and the (IP, client-ID) rule folds them back together.
        assert!(reg.unique_peers() < reg.memberships.len());
        // Restarts keep downloaded pieces, so the swarm still finishes.
        assert!(
            result.completed_peers >= 3,
            "completed {}",
            result.completed_peers
        );
    }

    #[test]
    fn global_sampling_tracks_truth() {
        let mut spec = tiny_spec(14);
        spec.sample_global = true;
        let result = Swarm::new(spec).run();
        assert!(!result.global_series.is_empty());
        for g in &result.global_series {
            assert!(g.min <= g.max);
            assert!(f64::from(g.min) <= g.mean && g.mean <= f64::from(g.max));
            assert!(g.live_peers <= 5);
            // With the seed always alive, every piece has ≥ 1 copy.
            assert!(g.min >= 1);
        }
        // Early snapshots have rare (single-copy) pieces. While all five
        // peers are seeds (before linger expiry empties the swarm), none
        // remain; after everyone but the original seed departs, every
        // piece is single-copy again.
        let first = result.global_series.first().unwrap();
        let last = result.global_series.last().unwrap();
        assert!(
            first.single_copy_pieces > 0,
            "fresh swarm starts with rare pieces"
        );
        assert!(
            result
                .global_series
                .iter()
                .any(|g| g.live_peers == 5 && g.single_copy_pieces == 0),
            "a fully replicated phase must exist"
        );
        assert_eq!(last.live_peers, 1, "only the lingering seed remains");
        assert_eq!(
            last.single_copy_pieces, 8,
            "a lone seed holds every piece singly"
        );
    }

    #[test]
    fn metrics_are_deterministic_and_do_not_perturb_the_run() {
        let run = |with_metrics: bool| {
            let swarm = Swarm::new(tiny_spec(7));
            if with_metrics {
                swarm.with_metrics(bt_obs::Registry::new_manual()).run()
            } else {
                swarm.run()
            }
        };
        let a = run(true);
        let b = run(true);
        let bare = run(false);
        // Same spec + same seed ⇒ byte-identical snapshot lines.
        let lines_a: Vec<String> = a.metrics.iter().map(|s| s.to_jsonl_line()).collect();
        let lines_b: Vec<String> = b.metrics.iter().map(|s| s.to_jsonl_line()).collect();
        assert!(!lines_a.is_empty());
        assert_eq!(lines_a, lines_b);
        // Attaching metrics must not change what the engines do.
        assert_eq!(a.completion, bare.completion);
        assert_eq!(a.events_processed, bare.events_processed);
        assert_eq!(a.trace.unwrap().events, bare.trace.unwrap().events);
        // The aggregate engine and swarm series actually accumulated.
        let last = a.metrics.last().unwrap();
        assert!(last.counter_sum("core.inputs.message") > 0);
        assert!(last.counter_sum("core.actions.send") > 0);
        assert!(last.counter_sum("core.pieces_completed") > 0);
        assert!(last.counter_sum("sim.events") > 0);
        assert!(last.counter_sum("sim.blocks_delivered") > 0);
        assert_eq!(last.gauge("sim.completed_peers", ""), Some(4));
        // Virtual-clock registry: choke rounds observed, zero-width.
        let hist = last
            .histogram("core.choke_round_us", "")
            .expect("histogram");
        assert!(hist.count > 0);
    }

    #[test]
    fn series_and_health_are_deterministic_and_do_not_perturb_the_run() {
        let run = |with_obs: bool| {
            let swarm = Swarm::new(tiny_spec(7));
            if with_obs {
                let registry = bt_obs::Registry::new_manual();
                let store = bt_obs::SeriesStore::new(&registry);
                let swarm = swarm
                    .with_metrics(registry)
                    .with_series(store.clone())
                    .with_health(bt_analysis::live::Thresholds::default());
                (swarm.run(), Some(store))
            } else {
                (swarm.run(), None)
            }
        };
        let (a, store_a) = run(true);
        let (_b, store_b) = run(true);
        let (bare, _) = run(false);
        // Same spec + seed ⇒ byte-identical series JSON, filtered or not.
        let json_a = store_a.as_ref().unwrap().to_json(None);
        assert_eq!(json_a, store_b.as_ref().unwrap().to_json(None));
        assert_eq!(
            store_a.unwrap().to_json(Some("live.")),
            store_b.unwrap().to_json(Some("live."))
        );
        // Observers must not change what the engines do.
        assert_eq!(a.completion, bare.completion);
        assert_eq!(a.events_processed, bare.events_processed);
        assert_eq!(a.trace.unwrap().events, bare.trace.unwrap().events);
        assert!(bare.health.is_none());
        // Series carry both sampled instruments and monitor floats.
        assert!(json_a.contains("\"name\":\"sim.live_peers\""));
        assert!(json_a.contains("\"name\":\"core.choke.rounds\""));
        assert!(json_a.contains("\"name\":\"live.entropy\""));
        // The tiny swarm is healthy: seed present, tit-for-tat running.
        let health = a.health.expect("health attached");
        assert!(health.samples > 0);
        assert!(health.healthy(), "{}", health.summary_line());
        let snap = a.metrics.last().unwrap();
        assert!(snap.gauge("live.entropy_milli", "").unwrap() > 700);
        assert!(snap.counter_sum("core.choke.flips") > 0);
    }

    #[test]
    fn profiling_is_deterministic_and_does_not_perturb_the_run() {
        let run = |with_profiler: bool| {
            let swarm = Swarm::new(tiny_spec(7));
            if with_profiler {
                swarm
                    .with_profiler(bt_obs::Profiler::new(bt_obs::TimeSource::manual()))
                    .run()
            } else {
                swarm.run()
            }
        };
        let a = run(true);
        let b = run(true);
        let bare = run(false);
        // Same spec + same seed ⇒ byte-identical profile JSON.
        let pa = a.profile.as_ref().expect("profile attached");
        let pb = b.profile.as_ref().expect("profile attached");
        assert_eq!(pa.to_json(), pb.to_json());
        // Attaching a profiler must not change what the engines do.
        assert!(bare.profile.is_none());
        assert_eq!(a.completion, bare.completion);
        assert_eq!(a.events_processed, bare.events_processed);
        assert_eq!(a.trace.unwrap().events, bare.trace.unwrap().events);
        // The instrumented hot paths all recorded, with engine spans
        // nested under the sim dispatch span.
        assert_eq!(
            pa.get(&["sim.event_pop"]).expect("pop span").count,
            a.events_processed
        );
        assert!(pa.get(&["sim.event", "core.handle.message"]).is_some());
        assert!(pa
            .get(&["sim.event", "core.handle.tick", "core.choke_round"])
            .is_some());
        let flat: std::collections::BTreeMap<_, _> = pa.flat().into_iter().collect();
        assert!(flat["core.piece_pick"].count > 0);
    }

    #[test]
    fn small_swarm_completes() {
        let result = Swarm::new(tiny_spec(42)).run();
        assert_eq!(result.completed_peers, 4, "all four leechers finish");
        assert!(result.completion[1].is_some());
        assert!(result.tracker_started >= 5);
        assert!(result.tracker_completed >= 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Swarm::new(tiny_spec(7)).run();
        let b = Swarm::new(tiny_spec(7)).run();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.completion, b.completion);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.events, tb.events);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Swarm::new(tiny_spec(1)).run();
        let b = Swarm::new(tiny_spec(2)).run();
        // Completion *times* will almost surely differ somewhere.
        assert_ne!(
            a.completion, b.completion,
            "two seeds giving identical completions is vanishingly unlikely"
        );
    }

    #[test]
    fn real_data_mode_verifies_hashes() {
        let mut spec = tiny_spec(3);
        spec.real_data = true;
        let result = Swarm::new(spec).run();
        assert_eq!(result.completed_peers, 4);
    }

    #[test]
    fn corruption_is_recovered_from() {
        let mut spec = tiny_spec(4);
        spec.real_data = true;
        spec.corrupt_block_prob = 0.05;
        spec.duration = Duration::from_secs(8000);
        let result = Swarm::new(spec).run();
        // Hash failures force re-downloads but the swarm still finishes.
        assert!(
            result.completed_peers >= 3,
            "completed {}",
            result.completed_peers
        );
        let trace = result.trace.unwrap();
        let failures = trace
            .iter()
            .filter(|(_, e)| matches!(e, bt_instrument::trace::TraceEvent::PieceFailed { .. }))
            .count();
        // With 5% corruption over ~128 blocks, some piece failures are
        // overwhelmingly likely across the swarm; the local peer sees a
        // share of them. (Not asserting > 0 strictly for tiny traces.)
        let _ = failures;
    }

    #[test]
    fn trace_records_essentials() {
        let result = Swarm::new(tiny_spec(5)).run();
        let trace = result.trace.unwrap();
        use bt_instrument::trace::TraceEvent as E;
        let has = |f: &dyn Fn(&E) -> bool| trace.iter().any(|(_, e)| f(e));
        assert!(has(&|e| matches!(e, E::PeerJoined { .. })));
        assert!(has(&|e| matches!(e, E::BlockReceived { .. })));
        assert!(has(&|e| matches!(e, E::PieceCompleted { .. })));
        assert!(has(&|e| matches!(e, E::BecameSeed)));
        assert!(has(&|e| matches!(e, E::LocalChoke { .. })));
        assert!(has(&|e| matches!(e, E::AvailabilitySample { .. })));
        assert_eq!(trace.meta.seed_at, result.completion[1]);
    }

    #[test]
    fn churners_leave_quickly() {
        let mut spec = tiny_spec(6);
        spec.peers.push(BehaviorProfile {
            role: Role::Churner,
            ..BehaviorProfile::leecher(Duration::from_secs(5))
        });
        let result = Swarm::new(spec).run();
        // The churner (index 5) must not complete.
        assert_eq!(result.completion[5], None);
        assert_eq!(result.completed_peers, 4);
    }

    #[test]
    fn free_rider_still_completes_via_excess_capacity() {
        let mut spec = tiny_spec(8);
        spec.peers.push(BehaviorProfile {
            role: Role::FreeRider,
            ..BehaviorProfile::leecher(Duration::ZERO)
        });
        spec.duration = Duration::from_secs(12_000);
        let result = Swarm::new(spec).run();
        // §IV-B: the choke algorithm lets free riders use excess capacity
        // (they are not starved outright), they just must not beat
        // contributors. In this tiny swarm it should eventually finish.
        assert!(
            result.completion[5].is_some(),
            "free rider starved entirely"
        );
    }
}
