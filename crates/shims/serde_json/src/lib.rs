//! Offline stand-in for `serde_json`, backed by the workspace's
//! JSON-only `serde` shim (the parser, [`Value`], and [`Error`] live
//! there so derive-generated code can reach them).

pub use serde::json::{Error, Value};

/// Serialise `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialise `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let tree = serde::json::parse(&compact)?;
    let mut out = String::new();
    serde::json::write_value_pretty(&mut out, &tree, 0);
    Ok(out)
}

/// Parse `input` into a `T`.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let tree = serde::json::parse(input)?;
    T::deserialize_json(&tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v: Value = from_str("{\"a\":[1,2.5,\"x\"],\"b\":null}").unwrap();
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str("{\"a\":[1,2],\"b\":{\"c\":true}}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }
}
