//! The JSON tree, parser, and writers shared by the `serde` and
//! `serde_json` shims.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Integers keep their exact magnitude (`PosInt`/`NegInt`) so `u64`
/// seeds and microsecond timestamps survive a round trip; anything with
/// a fraction or exponent becomes `Float`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (sorted keys — deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// As `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::PosInt(n) => Some(*n),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// As `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::PosInt(n) => i64::try_from(*n).ok(),
            Value::NegInt(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// As `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::PosInt(n) => Some(*n as f64),
            Value::NegInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            Value::Null => Some(f64::NAN), // non-finite floats serialise as null
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::PosInt(_) | Value::NegInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialisation / deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Error from a plain message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "expected X while reading CTX, got KIND".
    pub fn expected(what: &str, ctx: &str, got: &Value) -> Error {
        Error::msg(format!("{ctx}: expected {what}, got {}", got.kind()))
    }

    /// Unknown enum variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Error {
        Error::msg(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append the JSON string literal for `s` (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append compact JSON for a [`Value`].
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::PosInt(n) => out.push_str(&n.to_string()),
        Value::NegInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, v);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Append pretty-printed JSON (two-space indent) for a [`Value`].
pub fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_value_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => expect_lit(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect_lit(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect_lit(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(input, bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(input, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::msg(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(input, bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(input, bytes, pos),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::msg(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = input
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(Error::msg(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = &input[*pos..];
                let c = rest.chars().next().expect("in-bounds char");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = &input[start..*pos];
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<u64>() {
                if let Ok(neg) = i64::try_from(n).map(|v| -v) {
                    return Ok(Value::NegInt(neg));
                }
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::PosInt(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "18446744073709551615",
            "0.5",
            "\"hi\\nthere\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ];
        for c in cases {
            let v = parse(c).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v);
            assert_eq!(parse(&out).unwrap(), v, "case {c}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn u64_precision_survives() {
        let v = parse("12345678901234567890").unwrap();
        assert_eq!(v.as_u64(), Some(12345678901234567890));
    }
}
