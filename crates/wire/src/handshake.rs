//! The BitTorrent connection handshake.
//!
//! `<pstrlen=19><"BitTorrent protocol"><8 reserved bytes><20-byte info_hash>
//! <20-byte peer_id>`. Both sides send one; a receiver drops the connection
//! on info-hash mismatch. The paper's client additionally refuses multiple
//! concurrent connections from one IP address (§III-D) — that policy lives
//! in `bt-core`; the codec here is policy-free.

use crate::peer_id::{PeerId, PEER_ID_LEN};
use crate::sha1::Digest;

/// Protocol string for BitTorrent v1.
pub const PROTOCOL: &[u8; 19] = b"BitTorrent protocol";

/// Total encoded handshake length: 1 + 19 + 8 + 20 + 20.
pub const HANDSHAKE_LEN: usize = 68;

/// A decoded handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Reserved feature bits (all zero for the paper's client).
    pub reserved: [u8; 8],
    /// Info-hash of the torrent this connection is for.
    pub info_hash: Digest,
    /// The sender's peer ID.
    pub peer_id: PeerId,
}

/// Handshake decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// Fewer than [`HANDSHAKE_LEN`] bytes provided.
    Truncated(usize),
    /// Protocol string mismatch.
    BadProtocol,
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Truncated(n) => write!(f, "handshake truncated at {n} bytes"),
            HandshakeError::BadProtocol => write!(f, "unknown protocol string"),
        }
    }
}

impl std::error::Error for HandshakeError {}

impl Handshake {
    /// Build a plain v1 handshake (no extensions).
    pub fn new(info_hash: Digest, peer_id: PeerId) -> Handshake {
        Handshake {
            reserved: [0u8; 8],
            info_hash,
            peer_id,
        }
    }

    /// Encode into the 68-byte wire form.
    pub fn encode(&self) -> [u8; HANDSHAKE_LEN] {
        let mut out = [0u8; HANDSHAKE_LEN];
        out[0] = PROTOCOL.len() as u8;
        out[1..20].copy_from_slice(PROTOCOL);
        out[20..28].copy_from_slice(&self.reserved);
        out[28..48].copy_from_slice(&self.info_hash);
        out[48..68].copy_from_slice(&self.peer_id.0);
        out
    }

    /// Decode from exactly [`HANDSHAKE_LEN`] bytes.
    pub fn decode(data: &[u8]) -> Result<Handshake, HandshakeError> {
        if data.len() < HANDSHAKE_LEN {
            return Err(HandshakeError::Truncated(data.len()));
        }
        if data[0] as usize != PROTOCOL.len() || &data[1..20] != PROTOCOL {
            return Err(HandshakeError::BadProtocol);
        }
        let mut reserved = [0u8; 8];
        reserved.copy_from_slice(&data[20..28]);
        let mut info_hash = [0u8; 20];
        info_hash.copy_from_slice(&data[28..48]);
        let mut peer_id = [0u8; PEER_ID_LEN];
        peer_id.copy_from_slice(&data[48..68]);
        Ok(Handshake {
            reserved,
            info_hash,
            peer_id: PeerId(peer_id),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer_id::ClientKind;

    #[test]
    fn roundtrip() {
        let hs = Handshake::new([7u8; 20], PeerId::new(ClientKind::Mainline402, 3));
        let enc = hs.encode();
        assert_eq!(enc.len(), HANDSHAKE_LEN);
        assert_eq!(Handshake::decode(&enc).unwrap(), hs);
    }

    #[test]
    fn rejects_truncated() {
        let hs = Handshake::new([1u8; 20], PeerId::new(ClientKind::Azureus, 1));
        let enc = hs.encode();
        assert!(matches!(
            Handshake::decode(&enc[..67]),
            Err(HandshakeError::Truncated(67))
        ));
    }

    #[test]
    fn rejects_wrong_protocol() {
        let hs = Handshake::new([1u8; 20], PeerId::new(ClientKind::Azureus, 1));
        let mut enc = hs.encode();
        enc[1] = b'X';
        assert_eq!(Handshake::decode(&enc), Err(HandshakeError::BadProtocol));
    }
}
