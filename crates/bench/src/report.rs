//! Plain-text rendering of experiment results: fixed-width tables,
//! unicode bar charts and sparkline series, so every figure of the paper
//! has a terminal-readable counterpart.

/// Render a fixed-width table: header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// A horizontal bar of `frac` (0–1) out of `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let f = frac.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// A sparkline over `values`, scaled to their own min/max.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Downsample `values` to at most `n` points (mean per bucket) for
/// sparkline rendering of long series.
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n || n == 0 {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i * values.len() / n;
        let hi = ((i + 1) * values.len() / n).max(lo + 1);
        let bucket = &values[lo..hi.min(values.len())];
        out.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    out
}

/// Format seconds compactly (`432s` / `1.2h`).
pub fn secs(s: f64) -> String {
    if !s.is_finite() {
        "-".to_owned()
    } else if s >= 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 100.0 {
        format!("{:.0}s", s)
    } else {
        format!("{:.1}s", s)
    }
}

/// Format a ratio with two decimals; NaN renders as "-".
pub fn ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.2}")
    } else {
        "-".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["id", "value"],
            &[
                vec!["1".into(), "short".into()],
                vec!["22".into(), "longer-cell".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("id"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("longer-cell"));
    }

    #[test]
    fn bar_extremes() {
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██··");
        assert_eq!(bar(7.0, 3), "███", "clamped above 1");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars[0] < chars[3]);
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let v: Vec<f64> = (0..100).map(f64::from).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        assert!(d[0] < d[9]);
        assert_eq!(downsample(&v, 200).len(), 100, "short series untouched");
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(30.0), "30.0s");
        assert_eq!(secs(7200.0), "2.0h");
        assert_eq!(secs(f64::NAN), "-");
        assert_eq!(ratio(0.5), "0.50");
        assert_eq!(ratio(f64::NAN), "-");
    }
}
