//! Wall-clock to virtual-clock mapping.
//!
//! The engine reasons in virtual [`Instant`]s (microseconds). The
//! simulator advances them by event scheduling; the socket runtime maps
//! real elapsed wall time onto the same axis, optionally accelerated so
//! that protocol timescales (10 s choke rounds, 30 min announces)
//! compress into a test-friendly wall budget while every peer still
//! observes one consistent timeline.

use bt_wire::time::Instant;

/// Default acceleration: 1 ms of wall time is 1 s of virtual time.
pub const DEFAULT_ACCEL: u64 = 1000;

/// A shared, monotonically increasing virtual clock.
///
/// All peers of one swarm copy the same `AccelClock` so their traces
/// share a time base. `now()` is `elapsed_wall_µs × accel` since the
/// clock's epoch.
#[derive(Debug, Clone, Copy)]
pub struct AccelClock {
    epoch: std::time::Instant,
    accel: u64,
}

impl AccelClock {
    /// A clock whose virtual time zero is "now", running `accel`× faster
    /// than wall time. `accel == 1` is real time.
    pub fn new(accel: u64) -> AccelClock {
        AccelClock {
            epoch: std::time::Instant::now(),
            accel: accel.max(1),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        let micros = self.epoch.elapsed().as_micros();
        Instant((micros as u64).saturating_mul(self.accel))
    }

    /// The acceleration factor.
    pub fn accel(&self) -> u64 {
        self.accel
    }
}

impl Default for AccelClock {
    fn default() -> AccelClock {
        AccelClock::new(DEFAULT_ACCEL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_accelerated() {
        let clock = AccelClock::new(1000);
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a);
        // 2 ms of wall time is at least 2 virtual seconds at 1000x.
        assert!((b - a).as_secs_f64() >= 2.0);
    }

    #[test]
    fn copies_share_a_time_base() {
        let clock = AccelClock::new(10);
        let copy = clock;
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = clock.now().0;
        let b = copy.now().0;
        // Same epoch: the two reads are within a few virtual ms.
        assert!(a.abs_diff(b) < 100_000);
    }
}
