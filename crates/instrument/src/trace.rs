//! Trace records for the instrumented local peer.
//!
//! §III-C: "The instrumentation consists of: a log of each BitTorrent
//! message sent or received with the detailed content of the message, a
//! log of each state change in the choke algorithm, a log of the rate
//! estimation used by the choke algorithm, and a log of important events
//! (end game mode, seed state)."
//!
//! The viewpoint is strictly *local-peer oriented* — exactly what the
//! paper argues distinguishes it from tracker-based studies. A [`Trace`]
//! is an ordered sequence of timestamped [`TraceEvent`]s about one
//! instrumented peer's session, plus a registry mapping the engine's
//! dense peer handles to the identification data (§III-D) the analysis
//! needs to de-duplicate peers.

use bt_wire::message::{BlockRef, MessageKind};
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};

/// Dense handle for a remote peer *connection* within one session.
/// Reconnections get fresh handles; [`super::identify`] folds them back
/// into unique peers.
pub type PeerHandle = u32;

/// Which unchoke slot a peer was given (for figure 10's RU/OU split and
/// the seed-state SKU/SRU accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnchokeRole {
    /// Regular unchoke: one of the 3 rate-ordered slots in leecher state.
    Regular,
    /// Optimistic unchoke (leecher state, rotates every 30 s).
    Optimistic,
    /// Seed kept unchoke: recency-ordered slot in the new seed algorithm.
    SeedKept,
    /// Seed random unchoke: the random fourth slot in the new seed
    /// algorithm.
    SeedRandom,
}

/// Whether the local peer was leecher or seed when an event occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalState {
    /// Still downloading.
    Leecher,
    /// Has every piece.
    Seed,
}

/// One timestamped observation from the instrumented client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A remote peer entered the local peer set.
    PeerJoined {
        /// Connection handle (unique within the session).
        peer: PeerHandle,
        /// Remote address.
        ip: IpAddr,
        /// Remote peer ID as presented in the handshake.
        peer_id: PeerId,
        /// Pieces the remote already had on arrival (its bitfield weight).
        pieces_on_arrival: u32,
        /// Total pieces in the torrent (so analysis can spot seeds and
        /// almost-done joiners).
        total_pieces: u32,
    },
    /// A remote peer left the local peer set.
    PeerLeft {
        /// Connection handle.
        peer: PeerHandle,
    },
    /// The local peer's interest in a remote peer changed.
    LocalInterest {
        /// Connection handle.
        peer: PeerHandle,
        /// New interest state.
        interested: bool,
    },
    /// A remote peer's interest in the local peer changed.
    RemoteInterest {
        /// Connection handle.
        peer: PeerHandle,
        /// New interest state.
        interested: bool,
    },
    /// The local peer choked or unchoked a remote peer.
    LocalChoke {
        /// Connection handle.
        peer: PeerHandle,
        /// True = choked, false = unchoked.
        choked: bool,
        /// Slot role when unchoking.
        role: Option<UnchokeRole>,
    },
    /// A remote peer choked or unchoked the local peer.
    RemoteChoke {
        /// Connection handle.
        peer: PeerHandle,
        /// True = choked, false = unchoked.
        choked: bool,
    },
    /// A block arrived (piece message received and accepted).
    BlockReceived {
        /// Sender.
        peer: PeerHandle,
        /// Which block.
        block: BlockRef,
    },
    /// A block was served to a remote peer.
    BlockSent {
        /// Recipient.
        peer: PeerHandle,
        /// Which block.
        block: BlockRef,
    },
    /// A piece completed and passed hash verification.
    PieceCompleted {
        /// Piece index.
        piece: u32,
    },
    /// A completed piece failed verification and was discarded.
    PieceFailed {
        /// Piece index.
        piece: u32,
    },
    /// The local peer finished the download (leecher → seed transition).
    BecameSeed,
    /// End game mode was entered (§II-C.1).
    EndGameEntered,
    /// Periodic snapshot of piece availability over the peer set
    /// (source data for figures 2–6).
    AvailabilitySample {
        /// Copies of the least replicated piece.
        min: u32,
        /// Mean copies over all pieces.
        mean: f64,
        /// Copies of the most replicated piece.
        max: u32,
        /// Size of the rarest-pieces set.
        rarest_set_size: u32,
        /// Current peer set size.
        peer_set_size: u32,
    },
    /// Periodic rate-estimator log for one peer (§III-C).
    RateSample {
        /// Connection handle.
        peer: PeerHandle,
        /// Estimated download rate from the peer (B/s).
        download_rate: f64,
        /// Estimated upload rate to the peer (B/s).
        upload_rate: f64,
    },
    /// A wire message of this kind crossed the connection (compact tally;
    /// payloads are captured by the dedicated events above).
    Message {
        /// Connection handle.
        peer: PeerHandle,
        /// Message kind.
        kind: MessageKind,
        /// True if sent by the local peer, false if received.
        sent: bool,
    },
}

/// Session-level metadata for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Scenario / torrent label (e.g. `"torrent-08"`).
    pub torrent: String,
    /// Torrent ID in Table I when applicable (1–26), else 0.
    pub torrent_id: u32,
    /// Number of pieces in the content.
    pub num_pieces: u32,
    /// Number of 16 kB blocks in the content.
    pub num_blocks: u64,
    /// Seeds in the torrent at experiment start (Table I column 2).
    pub initial_seeds: u32,
    /// Leechers in the torrent at experiment start (Table I column 3).
    pub initial_leechers: u32,
    /// Duration of the recorded session.
    pub session_end: Instant,
    /// When the local peer became a seed, if it did.
    pub seed_at: Option<Instant>,
}

/// A full instrumented session: metadata plus ordered events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Session metadata.
    pub meta: TraceMeta,
    /// Timestamped events in non-decreasing time order.
    pub events: Vec<(Instant, TraceEvent)>,
}

impl Trace {
    /// Create an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Trace {
        Trace {
            meta,
            events: Vec::new(),
        }
    }

    /// Append an event at `now`. Events must arrive in time order.
    pub fn push(&mut self, now: Instant, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|(t, _)| *t <= now),
            "trace events out of order"
        );
        self.events.push((now, event));
    }

    /// The local peer's state at time `t` (leecher until `BecameSeed`).
    pub fn local_state_at(&self, t: Instant) -> LocalState {
        match self.meta.seed_at {
            Some(s) if t >= s => LocalState::Seed,
            _ => LocalState::Leecher,
        }
    }

    /// Iterate events with their timestamps.
    pub fn iter(&self) -> impl Iterator<Item = (Instant, &TraceEvent)> {
        self.events.iter().map(|(t, e)| (*t, e))
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialise to JSON-lines: one metadata line then one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&serde_json::to_string(&self.meta).expect("meta serialises"));
        out.push('\n');
        for ev in &self.events {
            out.push_str(&serde_json::to_string(ev).expect("event serialises"));
            out.push('\n');
        }
        out
    }

    /// Parse the JSON-lines form produced by [`Trace::to_jsonl`].
    pub fn from_jsonl(data: &str) -> Result<Trace, serde_json::Error> {
        let mut lines = data.lines().filter(|l| !l.trim().is_empty());
        let meta: TraceMeta = serde_json::from_str(lines.next().unwrap_or("null"))?;
        let mut events = Vec::new();
        for line in lines {
            events.push(serde_json::from_str(line)?);
        }
        Ok(Trace { meta, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::peer_id::ClientKind;

    fn meta() -> TraceMeta {
        TraceMeta {
            torrent: "t".into(),
            torrent_id: 7,
            num_pieces: 100,
            num_blocks: 1600,
            initial_seeds: 1,
            initial_leechers: 713,
            session_end: Instant::from_secs(100),
            seed_at: Some(Instant::from_secs(60)),
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut tr = Trace::new(meta());
        tr.push(Instant::from_secs(1), TraceEvent::BecameSeed);
        tr.push(Instant::from_secs(2), TraceEvent::EndGameEntered);
        assert_eq!(tr.len(), 2);
        let times: Vec<u64> = tr.iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn local_state_transitions_at_seed_time() {
        let tr = Trace::new(meta());
        assert_eq!(
            tr.local_state_at(Instant::from_secs(59)),
            LocalState::Leecher
        );
        assert_eq!(tr.local_state_at(Instant::from_secs(60)), LocalState::Seed);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut tr = Trace::new(meta());
        tr.push(
            Instant::from_secs(1),
            TraceEvent::PeerJoined {
                peer: 0,
                ip: IpAddr(0x01020304),
                peer_id: PeerId::new(ClientKind::Azureus, 5),
                pieces_on_arrival: 10,
                total_pieces: 100,
            },
        );
        tr.push(
            Instant::from_secs(2),
            TraceEvent::BlockReceived {
                peer: 0,
                block: BlockRef {
                    piece: 1,
                    offset: 0,
                    length: 16384,
                },
            },
        );
        tr.push(
            Instant::from_secs(3),
            TraceEvent::AvailabilitySample {
                min: 0,
                mean: 12.5,
                max: 80,
                rarest_set_size: 17,
                peer_set_size: 80,
            },
        );
        let text = tr.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order_events() {
        let mut tr = Trace::new(meta());
        tr.push(Instant::from_secs(5), TraceEvent::BecameSeed);
        tr.push(Instant::from_secs(1), TraceEvent::EndGameEntered);
    }
}
