//! Offline stand-in for `criterion`.
//!
//! Implements the `benchmark_group` API over a plain wall-clock timer.
//! Because `cargo test` executes `harness = false` bench binaries, the
//! default mode is **smoke**: each benchmark body runs once, verifying
//! it doesn't panic, and reports nothing. Set `CRITERION_FULL=1` to get
//! timed runs with a mean-per-iteration report (no statistics beyond
//! that — this is a shim, not a measurement tool).
//!
//! A third mode, [`Criterion::collecting`], times every benchmark but
//! hands the measurements back as [`BenchResult`]s instead of printing,
//! so harnesses (`benchrun`) can run bench bodies programmatically and
//! serialise the numbers.

use std::time::Instant;

/// Re-exported for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// One timed measurement captured by a [`Criterion::collecting`] driver.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark name (with any `BenchmarkId` parameter suffix).
    pub name: String,
    /// Mean wall nanoseconds per iteration.
    pub ns_per_iter: u128,
    /// Throughput annotation active when the benchmark ran.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Bytes processed per second, when annotated with
    /// [`Throughput::Bytes`] and the measurement is non-zero.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if self.ns_per_iter > 0 => {
                Some(bytes as f64 / (self.ns_per_iter as f64 / 1e9))
            }
            _ => None,
        }
    }

    /// Iterations per second, when the measurement is non-zero.
    pub fn iters_per_sec(&self) -> Option<f64> {
        (self.ns_per_iter > 0).then(|| 1e9 / self.ns_per_iter as f64)
    }
}

/// Top-level benchmark driver, handed to each `criterion_group!` target.
pub struct Criterion {
    full: bool,
    collect: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            full: std::env::var_os("CRITERION_FULL").is_some(),
            collect: false,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// A driver that times every benchmark (like `CRITERION_FULL=1`)
    /// but records the measurements for the caller instead of printing.
    pub fn collecting() -> Criterion {
        Criterion {
            full: true,
            collect: true,
            results: Vec::new(),
        }
    }

    /// Measurements captured so far (collection mode only).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// Throughput annotation for a benchmark (reported in full mode).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

/// A named group of benchmarks; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Iterations per timed sample in full mode (ignored in smoke mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name.into(), |b| f(b));
        self
    }

    /// Run one benchmark that closes over an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}

    fn run(&mut self, name: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: if self.criterion.full {
                self.sample_size as u64
            } else {
                1
            },
            elapsed_ns: 0,
        };
        f(&mut bencher);
        if self.criterion.collect && bencher.iters > 0 {
            self.criterion.results.push(BenchResult {
                group: self.name.clone(),
                name,
                ns_per_iter: bencher.elapsed_ns / u128::from(bencher.iters),
                throughput: self.throughput,
            });
            return;
        }
        if self.criterion.full && bencher.iters > 0 {
            let per_iter = bencher.elapsed_ns / bencher.iters as u128;
            let rate = match self.throughput {
                Some(Throughput::Bytes(bytes)) if per_iter > 0 => {
                    let gib_s = bytes as f64 / (per_iter as f64 / 1e9) / (1u64 << 30) as f64;
                    format!("  {gib_s:.3} GiB/s")
                }
                Some(Throughput::Elements(n)) if per_iter > 0 => {
                    let elem_s = n as f64 / (per_iter as f64 / 1e9);
                    format!("  {elem_s:.0} elem/s")
                }
                _ => String::new(),
            };
            println!("{}/{name}: {per_iter} ns/iter{rate}", self.name);
        }
    }
}

/// Runs the benchmark body; handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `f` over this bencher's iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Declare a group-of-benchmarks function list.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut calls = 0u32;
        let mut c = Criterion {
            full: false,
            collect: false,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("two", 7), &7u32, |b, &x| {
            b.iter(|| calls += x)
        });
        group.finish();
        assert_eq!(calls, 8);
    }

    #[test]
    fn collecting_mode_records_measurements() {
        let mut c = Criterion::collecting();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function("spin", |b| {
            b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)))
        });
        group.finish();
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(
            (results[0].group.as_str(), results[0].name.as_str()),
            ("g", "spin")
        );
        assert!(results[0].ns_per_iter >= 50_000, "slept 50µs per iter");
        let rate = results[0].bytes_per_sec().unwrap();
        assert!(rate > 0.0 && rate.is_finite());
        assert!(results[0].iters_per_sec().unwrap() > 0.0);
    }
}
