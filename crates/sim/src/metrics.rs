//! Swarm-level runtime telemetry (`bt-obs` integration).
//!
//! Attached with [`Swarm::with_metrics`](crate::swarm::Swarm::with_metrics).
//! The registry should run on a *manual* clock
//! ([`bt_obs::Registry::new_manual`]): the swarm advances it in lock
//! step with the event queue, so snapshots are a pure function of the
//! spec and seed — byte-identical across runs and across parallel jobs.
//!
//! Engine-level series (`core.*`) register unlabeled, so every peer's
//! engine shares one aggregate set of counters; swarm-level series live
//! under `sim.*`.

use bt_core::EngineMetrics;
use bt_obs::{Counter, Gauge, Registry};

/// Pre-registered `bt-obs` handles for one [`Swarm`](crate::swarm::Swarm).
#[derive(Clone, Debug)]
pub struct SimMetrics {
    registry: Registry,
    /// Shared (aggregate) engine instruments, cloned into every peer.
    pub(crate) engine: EngineMetrics,

    pub(crate) events: Counter,
    pub(crate) transfer_rounds: Counter,
    pub(crate) blocks_delivered: Counter,
    /// Transmissions the link model lost (and redelivered one RTO
    /// late); stays zero under loss-free models.
    pub(crate) link_losses: Counter,

    pub(crate) virtual_secs: Gauge,
    pub(crate) live_peers: Gauge,
    pub(crate) completed_peers: Gauge,
    pub(crate) interested_pairs: Gauge,
    pub(crate) unchoked_pairs: Gauge,
}

impl SimMetrics {
    /// Register (or re-acquire) the swarm instruments on `registry`.
    pub fn register(registry: &Registry) -> SimMetrics {
        SimMetrics {
            registry: registry.clone(),
            engine: EngineMetrics::register(registry),
            events: registry.counter("sim.events"),
            transfer_rounds: registry.counter("sim.transfer_rounds"),
            blocks_delivered: registry.counter("sim.blocks_delivered"),
            link_losses: registry.counter("sim.link_losses"),
            virtual_secs: registry.gauge("sim.virtual_secs"),
            live_peers: registry.gauge("sim.live_peers"),
            completed_peers: registry.gauge("sim.completed_peers"),
            interested_pairs: registry.gauge("sim.interested_pairs"),
            unchoked_pairs: registry.gauge("sim.unchoked_pairs"),
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}
