//! Causal trace layer + crash flight recorder.
//!
//! Where the registry aggregates (counters, histograms) and the
//! profiler times spans, this module records *individual* causal
//! events whose ids chain across layers:
//!
//! * **piece lifecycle** — one trace per piece id:
//!   `injected → first_have → block_sent(from,to) → verified →
//!   k_replicated`;
//! * **choke audit** — per rechoke round, per peer: the upload-rate
//!   inputs, the rank the choker assigned, and the
//!   unchoke/optimistic/snub outcome;
//! * **message provenance** — `request → send (delay/loss/cap
//!   outcome) → deliver → have` propagation.
//!
//! Three invariants, all CI-enforced:
//!
//! 1. **Determinism** — sampling decisions are pure
//!    [`splitmix64`] hashes of `(seed, id)`; a [`Tracer`] never draws
//!    from any simulation RNG, so golden traces and digests are
//!    byte-identical with tracing off *and* with sampling on.
//! 2. **Zero cost when off** — [`Tracer::disabled`] is a `None`
//!    inner; every hot-path call is a single branch.
//! 3. **Deterministic export** — events buffer in per-thread arenas
//!    (the profiler's discipline) and export as a stably-sorted JSONL
//!    plus Chrome trace-event JSON (open in Perfetto / `chrome://tracing`).
//!
//! The [`FlightRecorder`] keeps a bounded ring of the most recent
//! trace events plus a [`RingSink`](crate::RingSink) of recent log
//! records, and dumps a self-contained JSON bundle — trace slice,
//! registry snapshot, health verdicts, RNG seed + event count for
//! replay — when a live-monitor invariant trips, on panic (via
//! [`FlightGuard`]), or on demand (`ObsServer GET /flightrec`).

use crate::event::RingSink;
use crate::registry::Registry;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// SplitMix64 finalizer — the same injective mixer `PeerId::new` and
/// the PR 8 peer-class placement use. Sampling decisions hash through
/// this so they cost no RNG draws and never perturb a run.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash-domain separators so piece ids and peer ids sample
/// independently even when the integer ids collide.
const DOMAIN_PIECE: u64 = 0x7069_6563_6500_0001;
const DOMAIN_PEER: u64 = 0x7065_6572_0000_0002;

/// Trace category: which causal chain an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceCat {
    /// Piece lifecycle; `id` is the piece index.
    Piece = 0,
    /// Choke-decision audit; `id` is the deciding (local) peer index.
    Choke = 1,
    /// Message provenance; `id` is the piece the message concerns.
    Msg = 2,
}

impl TraceCat {
    /// Lowercase category name used by both exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceCat::Piece => "piece",
            TraceCat::Choke => "choke",
            TraceCat::Msg => "msg",
        }
    }
}

/// One causal trace event. `id` is the chain the event belongs to
/// (piece index for `Piece`/`Msg`, deciding peer for `Choke`); `args`
/// carry the small named integers that make the record self-contained
/// (peers, rates, ranks, delays in µs, outcomes).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual-clock reading (µs).
    pub at_micros: u64,
    /// Causal chain category.
    pub cat: TraceCat,
    /// Event name, e.g. `"block_sent"` or `"audit"`.
    pub name: &'static str,
    /// Chain id.
    pub id: u64,
    /// Named integer payload.
    pub args: Vec<(&'static str, i64)>,
}

impl TraceEvent {
    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"t\":{},\"cat\":\"{}\",\"name\":\"{}\",\"id\":{}",
            self.at_micros,
            self.cat.as_str(),
            self.name,
            self.id
        );
        for (k, v) in &self.args {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        out.push('}');
    }
}

/// The sort key that makes export order independent of which thread's
/// arena flushed first. Stable-sorting by it preserves single-thread
/// insertion order inside equal keys — deliberately *not* keyed on the
/// event name, so a chain's causal emission order (`injected` before
/// `first_have` at the same instant) survives the sort.
fn sort_key(e: &TraceEvent) -> (u64, TraceCat, u64) {
    (e.at_micros, e.cat, e.id)
}

const ARENA_FLUSH: usize = 512;

struct TraceArena {
    tracer_id: u64,
    pending: Vec<TraceEvent>,
}

thread_local! {
    static ARENAS: RefCell<Vec<TraceArena>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// Sentinel for "no pinned id" in the coverage-guarantee atomics.
const UNPINNED: u64 = u64::MAX;

struct TracerInner {
    id: u64,
    seed: u64,
    /// Sample 1-in-`rate` chains; 1 = everything.
    rate: u64,
    /// Replication count that closes a piece lifecycle.
    k_target: u32,
    /// Coverage guarantee ([`Tracer::set_universe`]): the piece id with
    /// the minimal sampling hash is always sampled, so a rate far above
    /// the piece count still exports ≥ 1 complete lifecycle.
    /// Interior-mutable (set once by the driver after clones exist);
    /// `UNPINNED` = no guarantee.
    pinned_piece: AtomicU64,
    /// Same guarantee for choke audits: the minimal-hash peer id.
    pinned_peer: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
    flight: Option<FlightRecorder>,
}

/// Handle to the causal trace buffer. Cheap to clone (`Arc`-backed);
/// [`Tracer::disabled`] is a no-op handle whose every call is one
/// branch.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(i) => write!(f, "Tracer(seed={}, rate={})", i.seed, i.rate),
        }
    }
}

impl Tracer {
    /// An enabled tracer sampling 1-in-`rate` chains (`rate` 0 and 1
    /// both mean "every chain"). `seed` keys the sampling hash — use
    /// the swarm seed so reruns sample identical chains.
    pub fn new(seed: u64, rate: u64) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                seed,
                rate: rate.max(1),
                k_target: 4,
                pinned_piece: AtomicU64::new(UNPINNED),
                pinned_peer: AtomicU64::new(UNPINNED),
                events: Mutex::new(Vec::new()),
                flight: None,
            })),
        }
    }

    /// The no-op tracer: records nothing, samples nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Attach a flight recorder: every recorded event is also pushed
    /// into its bounded ring. Consumes `self` so the recorder is wired
    /// before the tracer is cloned into drivers.
    #[must_use]
    pub fn with_flight(self, recorder: FlightRecorder) -> Tracer {
        match self.inner {
            None => Tracer { inner: None },
            Some(arc) => {
                let inner = Arc::try_unwrap(arc).unwrap_or_else(|arc| TracerInner {
                    id: arc.id,
                    seed: arc.seed,
                    rate: arc.rate,
                    k_target: arc.k_target,
                    pinned_piece: AtomicU64::new(arc.pinned_piece.load(Ordering::Relaxed)),
                    pinned_peer: AtomicU64::new(arc.pinned_peer.load(Ordering::Relaxed)),
                    events: Mutex::new(arc.events.lock().unwrap().clone()),
                    flight: None,
                });
                Tracer {
                    inner: Some(Arc::new(TracerInner {
                        flight: Some(recorder),
                        ..inner
                    })),
                }
            }
        }
    }

    /// Replication target that closes a piece lifecycle (default 4).
    #[must_use]
    pub fn with_k_target(self, k: u32) -> Tracer {
        match self.inner {
            None => Tracer { inner: None },
            Some(arc) => {
                let inner = Arc::try_unwrap(arc).unwrap_or_else(|arc| TracerInner {
                    id: arc.id,
                    seed: arc.seed,
                    rate: arc.rate,
                    k_target: arc.k_target,
                    pinned_piece: AtomicU64::new(arc.pinned_piece.load(Ordering::Relaxed)),
                    pinned_peer: AtomicU64::new(arc.pinned_peer.load(Ordering::Relaxed)),
                    events: Mutex::new(arc.events.lock().unwrap().clone()),
                    flight: arc.flight.clone(),
                });
                Tracer {
                    inner: Some(Arc::new(TracerInner {
                        k_target: k.max(1),
                        ..inner
                    })),
                }
            }
        }
    }

    /// Whether any recording can happen at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Replication target that closes a piece lifecycle.
    pub fn k_target(&self) -> u32 {
        self.inner.as_ref().map_or(4, |i| i.k_target)
    }

    /// The flight recorder wired via [`with_flight`](Tracer::with_flight).
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.as_ref().and_then(|i| i.flight.as_ref())
    }

    /// Coverage guarantee: given the id universes (`0..num_pieces`,
    /// `0..num_peers`), pin the piece and the peer whose sampling hash
    /// is minimal so they are *always* sampled — a rate far above the
    /// id count still exports ≥ 1 complete lifecycle and ≥ 1 audited
    /// choker. The argmin is over the same splitmix64 hashes sampling
    /// already uses, so it is a pure function of (seed, universe):
    /// deterministic across runs and `--jobs`, and it never consumes
    /// RNG draws. Drivers call this once before the run on a shared
    /// handle (interior mutation — clones see the pin).
    pub fn set_universe(&self, num_pieces: u64, num_peers: u64) {
        let Some(i) = &self.inner else { return };
        if i.rate > 1 {
            if let Some(p) = (0..num_pieces).min_by_key(|&p| splitmix64(i.seed ^ DOMAIN_PIECE ^ p))
            {
                i.pinned_piece.store(p, Ordering::Relaxed);
            }
            if let Some(p) = (0..num_peers).min_by_key(|&p| splitmix64(i.seed ^ DOMAIN_PEER ^ p)) {
                i.pinned_peer.store(p, Ordering::Relaxed);
            }
        }
    }

    fn sample(&self, domain: u64, id: u64, pin: u64) -> bool {
        match &self.inner {
            None => false,
            Some(i) => {
                i.rate == 1 || id == pin || splitmix64(i.seed ^ domain ^ id).is_multiple_of(i.rate)
            }
        }
    }

    /// Is piece `piece`'s lifecycle (and its message provenance) traced?
    pub fn sample_piece(&self, piece: u32) -> bool {
        let pin = self
            .inner
            .as_ref()
            .map_or(UNPINNED, |i| i.pinned_piece.load(Ordering::Relaxed));
        self.sample(DOMAIN_PIECE, u64::from(piece), pin)
    }

    /// Are peer `peer`'s choke decisions audited?
    pub fn sample_peer(&self, peer: u64) -> bool {
        let pin = self
            .inner
            .as_ref()
            .map_or(UNPINNED, |i| i.pinned_peer.load(Ordering::Relaxed));
        self.sample(DOMAIN_PEER, peer, pin)
    }

    /// Record one event into this thread's arena. Callers gate on the
    /// `sample_*` predicates; `record` itself never filters.
    pub fn record(
        &self,
        at_micros: u64,
        cat: TraceCat,
        name: &'static str,
        id: u64,
        args: &[(&'static str, i64)],
    ) {
        let Some(inner) = &self.inner else { return };
        let ev = TraceEvent {
            at_micros,
            cat,
            name,
            id,
            args: args.to_vec(),
        };
        if let Some(fr) = &inner.flight {
            fr.observe(&ev);
        }
        ARENAS.with(|cell| {
            let mut arenas = cell.borrow_mut();
            let arena = match arenas.iter_mut().find(|a| a.tracer_id == inner.id) {
                Some(a) => a,
                None => {
                    arenas.push(TraceArena {
                        tracer_id: inner.id,
                        pending: Vec::with_capacity(ARENA_FLUSH),
                    });
                    arenas.last_mut().unwrap()
                }
            };
            arena.pending.push(ev);
            if arena.pending.len() >= ARENA_FLUSH {
                inner.events.lock().unwrap().append(&mut arena.pending);
            }
        });
    }

    /// Flush this thread's arena into the shared buffer. Drivers call
    /// it at end of run (the profiler flushes at root-span exit the
    /// same way); [`snapshot_sorted`](Tracer::snapshot_sorted) calls it
    /// for the exporting thread automatically.
    pub fn flush_local(&self) {
        let Some(inner) = &self.inner else { return };
        ARENAS.with(|cell| {
            let mut arenas = cell.borrow_mut();
            if let Some(a) = arenas.iter_mut().find(|a| a.tracer_id == inner.id) {
                if !a.pending.is_empty() {
                    inner.events.lock().unwrap().append(&mut a.pending);
                }
            }
            arenas.retain(|a| a.tracer_id != inner.id || !a.pending.is_empty());
        });
    }

    /// All recorded events in the canonical export order (stable sort
    /// by time, category, chain id). Non-destructive.
    pub fn snapshot_sorted(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        self.flush_local();
        let mut events = inner.events.lock().unwrap().clone();
        events.sort_by_key(sort_key);
        events
    }

    /// Sorted deterministic JSONL export: one event object per line.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.snapshot_sorted())
    }

    /// Chrome trace-event JSON export (open in Perfetto or
    /// `chrome://tracing`). Piece lifecycles render as async tracks
    /// (`b`/`n`/`e` per piece id), choke audits and message provenance
    /// as instant events on per-id tracks.
    pub fn to_chrome_json(&self) -> String {
        events_to_chrome_json(&self.snapshot_sorted())
    }
}

/// Render pre-sorted events as JSONL (one object per line, trailing
/// newline when non-empty).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        e.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Render pre-sorted events in the Chrome trace-event JSON format.
pub fn events_to_chrome_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    // Name the three pid tracks once up front.
    for (i, (pid, pname)) in [
        (1, "piece lifecycle"),
        (2, "choke audit"),
        (3, "message provenance"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{pname}\"}}}}"
        );
    }
    // The metadata records above always precede the events, so every
    // event needs a leading separator — including the first, whose
    // absence used to leave a dangling comma on empty snapshots.
    for e in events {
        out.push(',');
        let (pid, ph) = match e.cat {
            TraceCat::Piece => match e.name {
                "injected" => (1, "b"),
                "k_replicated" => (1, "e"),
                _ => (1, "n"),
            },
            TraceCat::Choke => (2, "i"),
            TraceCat::Msg => (3, "i"),
        };
        let _ = write!(
            out,
            "{{\"ph\":\"{ph}\",\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{},\"pid\":{pid},\
             \"tid\":{}",
            e.cat.as_str(),
            if ph == "b" || ph == "e" {
                "lifecycle"
            } else {
                e.name
            },
            e.at_micros,
            e.id
        );
        if ph == "b" || ph == "n" || ph == "e" {
            let _ = write!(out, ",\"id\":{}", e.id);
        }
        if ph == "i" {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"event\":\"{}\"", e.name);
        for (k, v) in &e.args {
            let _ = write!(out, ",\"{k}\":{v}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Context handed to [`FlightRecorder::dump`]: everything the bundle
/// snapshots besides the recorder's own rings.
#[derive(Default)]
pub struct DumpContext<'a> {
    /// Registry whose snapshot is embedded, when one is attached.
    pub registry: Option<&'a Registry>,
    /// Health verdicts JSON (`HealthReport::to_json`), verbatim.
    pub health_json: Option<&'a str>,
    /// Human-readable causal explanation (`bt-analysis` explainer).
    pub explanation: Option<&'a str>,
    /// Events processed so far — with the seed, enough to replay.
    pub events_processed: u64,
}

struct FlightInner {
    dir: PathBuf,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    log: Arc<RingSink>,
    seed: u64,
    dumps: AtomicU64,
}

/// Bounded ring of recent trace events + recent log records that can
/// dump a self-contained crash bundle at any moment. Clone-cheap.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlightRecorder(dir={}, cap={})",
            self.inner.dir.display(),
            self.inner.capacity
        )
    }
}

impl FlightRecorder {
    /// Recorder writing bundles under `dir`, retaining the last
    /// `capacity` trace events and `capacity` log records.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize, seed: u64) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(FlightInner {
                dir: dir.into(),
                capacity,
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                log: Arc::new(RingSink::new(capacity)),
                seed,
                dumps: AtomicU64::new(0),
            }),
        }
    }

    /// The log ring; install it as the registry's event sink so recent
    /// `obs_warn!`/`obs_info!` records land in the bundle.
    pub fn log_sink(&self) -> Arc<RingSink> {
        self.inner.log.clone()
    }

    /// Directory bundles are written to.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Seed recorded for replay.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Push one trace event into the bounded ring (oldest evicted).
    pub fn observe(&self, ev: &TraceEvent) {
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(ev.clone());
    }

    /// Copy of the retained trace slice, oldest first.
    pub fn trace_slice(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Bundles dumped so far.
    pub fn dumps(&self) -> u64 {
        self.inner.dumps.load(Ordering::Relaxed)
    }

    /// The self-contained bundle as a JSON string: reason, seed and
    /// event count (replay coordinates), the trace slice, recent log
    /// records, the registry snapshot, health verdicts, and the
    /// causal explanation.
    pub fn bundle_json(&self, reason: &str, ctx: &DumpContext<'_>) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        out.push_str("{\"reason\":\"");
        crate::export::escape_json_into(&mut out, reason);
        let _ = write!(
            out,
            "\",\"seed\":{},\"events_processed\":{},\"trace\":[",
            self.inner.seed, ctx.events_processed
        );
        for (i, e) in self.trace_slice().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("],\"log\":[");
        for (i, r) in self.inner.log.records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t\":{},\"level\":\"{}\",\"target\":\"{}\",\"event\":\"{}\"",
                r.at_micros,
                r.level.as_str().trim_end(),
                r.target,
                r.name
            );
            for (k, v) in &r.fields {
                out.push_str(",\"");
                crate::export::escape_json_into(&mut out, k);
                out.push_str("\":\"");
                crate::export::escape_json_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("],\"registry\":");
        match ctx.registry {
            Some(reg) => out.push_str(&reg.snapshot().to_jsonl_line()),
            None => out.push_str("null"),
        }
        out.push_str(",\"health\":");
        match ctx.health_json {
            Some(h) => out.push_str(h),
            None => out.push_str("null"),
        }
        out.push_str(",\"explanation\":");
        match ctx.explanation {
            Some(e) => {
                out.push('"');
                crate::export::escape_json_into(&mut out, e);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Write the bundle to `dir/flightrec-<n>.json` (`n` = dump
    /// ordinal — deterministic, no wall clock) and return its path.
    pub fn dump(&self, reason: &str, ctx: &DumpContext<'_>) -> std::io::Result<PathBuf> {
        let bundle = self.bundle_json(reason, ctx);
        std::fs::create_dir_all(&self.inner.dir)?;
        let n = self.inner.dumps.fetch_add(1, Ordering::Relaxed);
        let path = self.inner.dir.join(format!("flightrec-{n}.json"));
        std::fs::write(&path, bundle)?;
        Ok(path)
    }
}

/// Drop guard that dumps a `"panic"` bundle while unwinding, so a
/// crash mid-run still leaves the black box behind. Hold one for the
/// duration of a run; dropping it normally does nothing.
pub struct FlightGuard {
    recorder: FlightRecorder,
    /// Event count shared with the driver so the panic bundle carries
    /// the replay coordinate even though `dump` runs during unwind.
    events_processed: Arc<AtomicU64>,
}

impl FlightGuard {
    /// Guard `recorder`; `events_processed` is read at dump time.
    pub fn new(recorder: FlightRecorder, events_processed: Arc<AtomicU64>) -> FlightGuard {
        FlightGuard {
            recorder,
            events_processed,
        }
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let ctx = DumpContext {
                events_processed: self.events_processed.load(Ordering::Relaxed),
                ..DumpContext::default()
            };
            if let Ok(path) = self.recorder.dump("panic", &ctx) {
                eprintln!("flight recorder: panic bundle at {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeSource;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.sample_piece(0));
        assert!(!t.sample_peer(0));
        t.record(1, TraceCat::Piece, "injected", 0, &[]);
        assert!(t.snapshot_sorted().is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn rate_one_samples_everything() {
        let t = Tracer::new(42, 1);
        for i in 0..100 {
            assert!(t.sample_piece(i));
            assert!(t.sample_peer(u64::from(i)));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_rate() {
        let a = Tracer::new(7, 16);
        let b = Tracer::new(7, 16);
        let hits: Vec<u32> = (0..10_000).filter(|&i| a.sample_piece(i)).collect();
        let hits_b: Vec<u32> = (0..10_000).filter(|&i| b.sample_piece(i)).collect();
        assert_eq!(hits, hits_b, "same seed+rate must sample identically");
        // 10_000 / 16 = 625 expected; allow a generous band.
        assert!(
            (300..1000).contains(&hits.len()),
            "1-in-16 sampling hit {} of 10000",
            hits.len()
        );
        // Different seed samples a different set.
        let c = Tracer::new(8, 16);
        let hits_c: Vec<u32> = (0..10_000).filter(|&i| c.sample_piece(i)).collect();
        assert_ne!(hits, hits_c);
    }

    #[test]
    fn universe_pin_guarantees_one_piece_and_peer_at_any_rate() {
        // 8 pieces at 1-in-1024: hash sampling alone would almost
        // certainly pick nothing; the pin must still cover one of each.
        let t = Tracer::new(42, 1024);
        t.set_universe(8, 16);
        let pieces: Vec<u32> = (0..8).filter(|&p| t.sample_piece(p)).collect();
        let peers: Vec<u64> = (0..16).filter(|&p| t.sample_peer(p)).collect();
        assert!(!pieces.is_empty(), "no piece pinned");
        assert!(!peers.is_empty(), "no peer pinned");
        // The pin is a pure function of (seed, universe): same again.
        let u = Tracer::new(42, 1024);
        u.set_universe(8, 16);
        assert_eq!(
            pieces,
            (0..8).filter(|&p| u.sample_piece(p)).collect::<Vec<_>>()
        );
        assert_eq!(
            peers,
            (0..16).filter(|&p| u.sample_peer(p)).collect::<Vec<_>>()
        );
        // A different seed pins differently (piece domain, 1 of 8 — use
        // a universe large enough that equal argmins are implausible).
        let v = Tracer::new(43, 1 << 30);
        v.set_universe(100_000, 100_000);
        let w = Tracer::new(44, 1 << 30);
        w.set_universe(100_000, 100_000);
        let vp: Vec<u32> = (0..100_000).filter(|&p| v.sample_piece(p)).collect();
        let wp: Vec<u32> = (0..100_000).filter(|&p| w.sample_piece(p)).collect();
        assert_ne!(vp, wp);
        // An empty universe pins nothing and samples nothing.
        let e = Tracer::new(1, 64);
        e.set_universe(0, 0);
        assert!((0..1000).all(|p| !e.sample_piece(p) || splitmix_hit(1, p)));
    }

    /// Whether plain hash sampling (rate 64, seed 1) would hit `p`.
    fn splitmix_hit(seed: u64, p: u32) -> bool {
        splitmix64(seed ^ super::DOMAIN_PIECE ^ u64::from(p)).is_multiple_of(64)
    }

    #[test]
    fn export_sorts_stably_and_renders_jsonl() {
        let t = Tracer::new(1, 1);
        t.record(20, TraceCat::Msg, "deliver", 3, &[("to", 2)]);
        t.record(10, TraceCat::Piece, "injected", 3, &[]);
        t.record(10, TraceCat::Piece, "first_have", 3, &[("to", 1)]);
        let events = t.snapshot_sorted();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "injected");
        assert_eq!(events[1].name, "first_have");
        assert_eq!(events[2].name, "deliver");
        let jsonl = t.to_jsonl();
        assert_eq!(
            jsonl,
            "{\"t\":10,\"cat\":\"piece\",\"name\":\"injected\",\"id\":3}\n\
             {\"t\":10,\"cat\":\"piece\",\"name\":\"first_have\",\"id\":3,\"to\":1}\n\
             {\"t\":20,\"cat\":\"msg\",\"name\":\"deliver\",\"id\":3,\"to\":2}\n"
        );
    }

    #[test]
    fn arena_flushes_at_batch_size_and_on_snapshot() {
        let t = Tracer::new(1, 1);
        for i in 0..(ARENA_FLUSH as u64 + 10) {
            t.record(i, TraceCat::Choke, "audit", 0, &[]);
        }
        assert_eq!(t.snapshot_sorted().len(), ARENA_FLUSH + 10);
        // Snapshot again: nothing lost, nothing duplicated.
        assert_eq!(t.snapshot_sorted().len(), ARENA_FLUSH + 10);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let t = Tracer::new(1, 1);
        t.record(5, TraceCat::Piece, "injected", 7, &[("by", 0)]);
        t.record(
            9,
            TraceCat::Piece,
            "block_sent",
            7,
            &[("from", 0), ("to", 3)],
        );
        t.record(12, TraceCat::Piece, "k_replicated", 7, &[("copies", 4)]);
        t.record(6, TraceCat::Choke, "audit", 2, &[("peer", 9), ("rank", 1)]);
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"n\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"event\":\"block_sent\",\"from\":0,\"to\":3"));
        // Balanced braces/brackets — cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn chrome_export_of_empty_snapshot_has_no_dangling_comma() {
        // The live /trace route can snapshot before any event lands;
        // the export must still be valid JSON (no `},]` tail).
        let json = events_to_chrome_json(&[]);
        assert!(json.ends_with("}}]}"), "unexpected tail: {json}");
        assert!(!json.contains(",]"));
        let one = [TraceEvent {
            at_micros: 1,
            cat: TraceCat::Msg,
            name: "send",
            id: 0,
            args: vec![],
        }];
        assert!(!events_to_chrome_json(&one).contains(",]"));
    }

    #[test]
    fn flight_ring_keeps_newest_and_bundles() {
        let dir = std::env::temp_dir().join(format!("bt-flightrec-{}", std::process::id()));
        let fr = FlightRecorder::new(&dir, 4, 99);
        let t = Tracer::new(99, 1).with_flight(fr.clone());
        for i in 0..10u64 {
            t.record(i, TraceCat::Msg, "send", i, &[]);
        }
        let slice = fr.trace_slice();
        assert_eq!(slice.len(), 4);
        assert_eq!(
            slice.iter().map(|e| e.at_micros).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        let reg = Registry::new(TimeSource::manual());
        reg.counter("x").add(3);
        let ctx = DumpContext {
            registry: Some(&reg),
            health_json: Some("{\"healthy\":false}"),
            explanation: Some("peer 3 starved"),
            events_processed: 1234,
        };
        let bundle = fr.bundle_json("invariant:starvation", &ctx);
        assert!(bundle.contains("\"reason\":\"invariant:starvation\""));
        assert!(bundle.contains("\"seed\":99"));
        assert!(bundle.contains("\"events_processed\":1234"));
        assert!(bundle.contains("\"healthy\":false"));
        assert!(bundle.contains("peer 3 starved"));
        assert!(bundle.contains("\"x\":3"));
        let path = fr.dump("invariant:starvation", &ctx).unwrap();
        assert!(path.ends_with("flightrec-0.json"));
        let read_back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_back, bundle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_guard_dumps_only_on_panic() {
        let dir = std::env::temp_dir().join(format!("bt-flightguard-{}", std::process::id()));
        let fr = FlightRecorder::new(&dir, 8, 1);
        {
            let _guard = FlightGuard::new(fr.clone(), Arc::new(AtomicU64::new(5)));
        }
        assert_eq!(fr.dumps(), 0, "normal drop must not dump");
        let fr2 = fr.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = FlightGuard::new(fr2, Arc::new(AtomicU64::new(7)));
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(fr.dumps(), 1, "panic must dump exactly once");
        let bundle = std::fs::read_to_string(dir.join("flightrec-0.json")).unwrap();
        assert!(bundle.contains("\"reason\":\"panic\""));
        assert!(bundle.contains("\"events_processed\":7"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
