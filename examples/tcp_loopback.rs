//! The engine over real TCP sockets.
//!
//! `bt_core::Engine` is transport-agnostic: the simulator is only one
//! driver. This example proves it by transferring a real, SHA-1-verified
//! torrent between two engines over an actual TCP connection on
//! localhost — genuine handshake bytes, genuine length-prefixed frames
//! through `bt_wire::message::Decoder`, no simulator involved.
//!
//! Protocol timers are accelerated (1 real millisecond = 1 virtual
//! second) so the 10-second choke rounds pass quickly.
//!
//! ```sh
//! cargo run --release --example tcp_loopback
//! ```

use bt_repro::core::engine::PeerCaps;
use bt_repro::core::{Action, Config, DataMode, Engine};
use bt_repro::piece::{Bitfield, Geometry};
use bt_repro::wire::handshake::{Handshake, HANDSHAKE_LEN};
use bt_repro::wire::message::{Decoder, Message};
use bt_repro::wire::metainfo::SyntheticContent;
use bt_repro::wire::peer_id::{ClientKind, IpAddr, PeerId};
use bt_repro::wire::time::Instant;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Accelerated virtual clock: 1 ms wall time = 1 s virtual time.
fn virtual_now(start: std::time::Instant) -> Instant {
    Instant(start.elapsed().as_millis() as u64 * 1_000_000 / 1_000 * 1000)
}

/// Drive one engine over one TCP stream until `done` says stop.
fn drive(
    mut engine: Engine,
    mut stream: TcpStream,
    content: Arc<SyntheticContent>,
    remote_ip: IpAddr,
    initiated: bool,
    label: &str,
) -> Engine {
    stream.set_nonblocking(true).expect("nonblocking");
    let start = std::time::Instant::now();

    // Handshake: real bytes both ways.
    let mut hs = Handshake::new(content.metainfo.info_hash, engine.peer_id());
    hs.reserved = engine.handshake_reserved();
    let mut blocking = stream.try_clone().expect("clone");
    blocking
        .set_nonblocking(false)
        .expect("blocking for handshake");
    blocking.write_all(&hs.encode()).expect("send handshake");
    let mut buf = [0u8; HANDSHAKE_LEN];
    blocking.read_exact(&mut buf).expect("recv handshake");
    let remote_hs = Handshake::decode(&buf).expect("valid handshake");
    assert_eq!(
        remote_hs.info_hash, content.metainfo.info_hash,
        "info-hash mismatch"
    );
    stream.set_nonblocking(true).expect("nonblocking again");

    let conn = engine
        .on_peer_connected(
            virtual_now(start),
            remote_ip,
            remote_hs.peer_id,
            initiated,
            PeerCaps::from_reserved(&remote_hs.reserved),
        )
        .expect("accepted");

    let mut decoder = Decoder::default();
    let mut read_buf = [0u8; 64 * 1024];
    let mut last_rechoke = virtual_now(start);
    let mut closed = false;
    loop {
        let now = virtual_now(start);
        // Periodic choke rounds at the engine's configured cadence.
        if now.saturating_since(last_rechoke) >= engine.config.rechoke_period {
            engine.rechoke(now);
            last_rechoke = now;
        }
        // Read whatever the socket has.
        match stream.read(&mut read_buf) {
            Ok(0) => closed = true,
            Ok(n) => {
                decoder.feed(&read_buf[..n]);
                while let Some(msg) = decoder.next_message().expect("well-formed frame") {
                    engine.on_message(virtual_now(start), conn, msg);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("{label}: read error: {e}"),
        }
        // Execute the engine's actions over the socket.
        for action in engine.drain_actions() {
            match action {
                Action::Send { msg, .. } => {
                    stream_write(&mut stream, &msg.encode_to_vec(), label);
                }
                Action::SendBlock { block, .. } => {
                    let data = content.block_bytes(block.piece, block.block_index());
                    let msg = Message::Piece {
                        block,
                        data: data.into(),
                    };
                    stream_write(&mut stream, &msg.encode_to_vec(), label);
                    engine.on_block_sent(virtual_now(start), conn, block);
                }
                Action::CancelBlock { .. } | Action::Announce { .. } | Action::Connect { .. } => {}
                Action::Disconnect { .. } => closed = true,
            }
        }
        if engine.is_seed() && label == "leecher" {
            println!("leecher: download complete, every piece SHA-1 verified");
            break;
        }
        if closed {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
        if start.elapsed() > std::time::Duration::from_secs(60) {
            panic!("{label}: timed out");
        }
    }
    engine
}

fn stream_write(stream: &mut TcpStream, bytes: &[u8], label: &str) {
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            Err(e) => panic!("{label}: write error: {e}"),
        }
    }
}

fn main() {
    let content = Arc::new(SyntheticContent::generate(
        "tcp-demo",
        77,
        8 * 256 * 1024, // 2 MB in eight 256 kB pieces
        256 * 1024,
    ));
    let geometry = Geometry::from(&content.metainfo);
    let num_pieces = geometry.num_pieces();
    println!(
        "transferring {} pieces ({} kB) over a real TCP socket ...",
        num_pieces,
        content.metainfo.total_len / 1024
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let info_hash = content.metainfo.info_hash;

    let seed_content = content.clone();
    let seeder = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let engine = Engine::new(
            Config::default(),
            geometry,
            DataMode::Real(seed_content.clone()),
            info_hash,
            PeerId::new(ClientKind::Mainline402, 1),
            IpAddr(1),
            Bitfield::full(num_pieces),
            1,
        );
        drive(engine, stream, seed_content, IpAddr(2), false, "seeder")
    });

    let stream = TcpStream::connect(addr).expect("connect");
    let engine = Engine::new(
        Config::default(),
        geometry,
        DataMode::Real(content.clone()),
        info_hash,
        PeerId::new(ClientKind::Mainline402, 2),
        IpAddr(2),
        Bitfield::new(num_pieces),
        2,
    );
    let leecher = drive(engine, stream, content, IpAddr(1), true, "leecher");

    assert!(leecher.is_seed(), "leecher must finish");
    assert_eq!(leecher.num_pieces_have(), num_pieces);
    drop(seeder); // the seeder thread exits when the socket closes
    println!(
        "ok: {} pieces transferred and verified over TCP — the same engine the simulator drives",
        num_pieces
    );
    std::process::exit(0); // don't wait for the seeder's 60 s timeout
}
