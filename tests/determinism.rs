//! Reproducibility: identical specs and seeds give identical traces,
//! while different seeds diverge. These properties underpin every
//! regression comparison in EXPERIMENTS.md.

use bt_repro::sim::{BehaviorProfile, Swarm, SwarmSpec};
use bt_repro::torrents::{run_scenario, torrent, RunConfig};
use bt_repro::wire::time::Duration;

fn spec(seed: u64) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile::seed()];
    for i in 0..8 {
        peers.push(BehaviorProfile::leecher(Duration::from_secs(i)));
    }
    SwarmSpec {
        seed,
        total_len: 10 * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(4000),
        peers,
        local: Some(2),
        ..SwarmSpec::default()
    }
}

#[test]
fn identical_seeds_identical_traces() {
    let a = Swarm::new(spec(11)).run();
    let b = Swarm::new(spec(11)).run();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.trace.unwrap().events, b.trace.unwrap().events);
}

#[test]
fn different_seeds_diverge() {
    let a = Swarm::new(spec(1)).run();
    let b = Swarm::new(spec(2)).run();
    assert_ne!(
        a.trace.unwrap().events,
        b.trace.unwrap().events,
        "different seeds should not replay the same session"
    );
}

#[test]
fn scenario_runner_is_deterministic() {
    let cfg = RunConfig::quick();
    let a = run_scenario(&torrent(13), &cfg);
    let b = run_scenario(&torrent(13), &cfg);
    assert_eq!(a.trace.events, b.trace.events);
    assert_eq!(a.result.completion, b.result.completion);
    assert_eq!(a.scaled, b.scaled);
}

#[test]
fn runner_seed_changes_outcome() {
    let cfg_a = RunConfig::quick();
    let cfg_b = RunConfig {
        seed: cfg_a.seed + 1,
        ..RunConfig::quick()
    };
    let a = run_scenario(&torrent(13), &cfg_a);
    let b = run_scenario(&torrent(13), &cfg_b);
    assert_ne!(a.trace.events, b.trace.events);
}
