//! The BitTorrent client engine.
//!
//! An [`Engine`] is one peer's complete protocol brain: peer-set
//! management (§II-B), interest tracking, the piece pipeline (rarest
//! first + strict priority + end game via `bt-piece`), and the choke
//! algorithm (`bt-choke`). It is transport-agnostic and clock-agnostic:
//! a *driver* — the discrete-event simulator in `bt-sim`, the real
//! socket runtime in `bt-net`, or a test — feeds it [`Input`] events
//! through the single [`Engine::handle`] entry point and executes the
//! [`Action`]s it emits. See [`crate::driver`] for the full contract.
//!
//! The engine is what the paper instruments; constructing it with
//! [`crate::EngineBuilder::recorder`] attaches the §III-C trace log.

use crate::builder::EngineBuilder;
use crate::config::Config;
use crate::connection::{ConnId, Connection};
use crate::content::{DataMode, PieceBuffer};
use crate::driver::{Actions, Input};
use crate::error::EngineError;
use crate::metrics::EngineMetrics;
use bt_choke::{Choker, PeerSnapshot};
use bt_instrument::trace::{Trace, TraceEvent, UnchokeRole};
use bt_obs::{obs_info, obs_warn, Profiler};
use bt_piece::{Availability, Bitfield, Geometry, PickContext, PiecePicker, RequestScheduler};
use bt_wire::fast;
use bt_wire::message::{BlockRef, Message};
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::sha1::Digest;
use bt_wire::time::Instant;
use bt_wire::tracker::{AnnounceEvent, PeerEntry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet, VecDeque};

/// Capabilities a remote peer advertised in its handshake reserved bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerCaps {
    /// Fast Extension (BEP 6, `reserved[7] & 0x04`).
    pub fast: bool,
    /// Extension protocol (BEP 10, `reserved[5] & 0x10`).
    pub extended: bool,
}

impl PeerCaps {
    /// Decode capabilities from handshake reserved bytes.
    pub fn from_reserved(reserved: &[u8; 8]) -> PeerCaps {
        PeerCaps {
            fast: bt_wire::fast::supports_fast(reserved),
            extended: bt_wire::extension::supports_extended(reserved),
        }
    }
}

/// An effect the engine wants the outside world to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit a control message on a connection (low latency path).
    Send {
        /// Target connection.
        conn: ConnId,
        /// The message.
        msg: Message,
    },
    /// Enqueue a block for upload on a connection; the transport paces it
    /// at the peer's upload capacity and delivers it as a `piece` message.
    SendBlock {
        /// Target connection.
        conn: ConnId,
        /// Which block to serve.
        block: BlockRef,
    },
    /// Drop a queued-but-unsent block (remote sent `cancel`).
    CancelBlock {
        /// Target connection.
        conn: ConnId,
        /// Which block.
        block: BlockRef,
    },
    /// Close a connection (engine already cleaned up its state).
    Disconnect {
        /// The connection to close.
        conn: ConnId,
    },
    /// Announce to the tracker.
    Announce {
        /// The announce event.
        event: AnnounceEvent,
    },
    /// Open a connection to a peer learned from the tracker.
    Connect {
        /// The peer to dial.
        peer: PeerEntry,
    },
    /// The engine (re)armed its periodic timer: feed [`Input::Tick`] at
    /// (or any time after) `at`. Supersedes any earlier `SetTimer`; the
    /// current deadline is also readable via [`Engine::next_wakeup`].
    /// Ticking early or on a stale deadline is a harmless no-op, so
    /// drivers need not cancel superseded timers.
    SetTimer {
        /// Absolute deadline for the next [`Input::Tick`].
        at: Instant,
    },
}

/// One peer's protocol engine.
pub struct Engine {
    /// Engine configuration (§III-C defaults).
    pub config: Config,
    geometry: Geometry,
    data: DataMode,
    info_hash: Digest,
    peer_id: PeerId,
    ip: IpAddr,

    own: Bitfield,
    availability: Availability,
    scheduler: RequestScheduler<ConnId>,
    picker: Box<dyn PiecePicker>,
    leecher_choker: Box<dyn Choker>,
    seed_choker: Box<dyn Choker>,

    conns: HashMap<ConnId, Connection>,
    /// Connections that have delivered their bitfield (and are therefore
    /// recorded as peer-set members).
    joined: HashSet<ConnId>,
    connected_ips: HashSet<IpAddr>,
    next_conn: ConnId,
    initiated_open: usize,
    pending_dials: usize,
    candidate_pool: VecDeque<PeerEntry>,

    buffers: HashMap<u32, PieceBuffer>,
    is_seed: bool,
    seed_at: Option<Instant>,
    endgame_recorded: bool,
    last_announce: Instant,
    /// Deadline of the next periodic (rechoke) round; `None` until the
    /// session starts. Armed by [`Engine::handle`] on [`Input::Start`],
    /// re-armed after every round, overridable via
    /// [`Engine::schedule_rechoke`].
    next_rechoke: Option<Instant>,
    /// Super-seed state: pieces revealed per connection, and global
    /// reveal counts used to pick the least-revealed piece next.
    revealed_to: HashMap<ConnId, HashSet<u32>>,
    reveal_counts: Vec<u32>,

    rng: SmallRng,
    actions: Actions,
    trace: Option<Trace>,
    metrics: Option<EngineMetrics>,
    profiler: Profiler,
    /// Outcome of the most recent [`rechoke`](Engine::rechoke) round,
    /// for live observers (`None` before the first round).
    last_choke_round: Option<ChokeRoundStats>,
    /// When set, every rechoke round leaves a full per-peer audit in
    /// `last_choke_audit` and every piece pick appends to `pick_log`.
    audit_choke: bool,
    last_choke_audit: Option<ChokeAudit>,
    pick_log: Vec<PickEvent>,
}

/// Slot classification of one peer after a rechoke round, for the
/// choke-decision audit trail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChokeOutcome {
    /// Rate-earned regular unchoke slot (leecher state).
    Regular,
    /// The optimistic-unchoke slot (leecher state).
    Optimistic,
    /// Seed-kept unchoke slot (seed state, §II-C.2).
    SeedKept,
    /// Seed-random unchoke slot (seed state).
    SeedRandom,
    /// Choked.
    Choked,
}

impl ChokeOutcome {
    /// Stable lowercase name for exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChokeOutcome::Regular => "regular",
            ChokeOutcome::Optimistic => "optimistic",
            ChokeOutcome::SeedKept => "seed_kept",
            ChokeOutcome::SeedRandom => "seed_random",
            ChokeOutcome::Choked => "choked",
        }
    }

    /// Small stable integer for compact trace args.
    pub fn as_code(&self) -> i64 {
        match self {
            ChokeOutcome::Regular => 0,
            ChokeOutcome::Optimistic => 1,
            ChokeOutcome::SeedKept => 2,
            ChokeOutcome::SeedRandom => 3,
            ChokeOutcome::Choked => 4,
        }
    }
}

/// One peer's line in a [`ChokeAudit`]: the rate inputs the choker
/// saw, the rank it earned, and the slot outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChokeAuditEntry {
    /// Connection audited.
    pub conn: ConnId,
    /// Remote interest at decision time.
    pub interested: bool,
    /// Snub state at decision time (§II-C.2 anti-snubbing).
    pub snubbed: bool,
    /// Download rate input (B/s, the leecher-state ranking signal).
    pub download_rate: f64,
    /// Upload rate input (B/s).
    pub upload_rate: f64,
    /// 0-based position in the round's download-rate ranking.
    pub rank: u32,
    /// Slot outcome after the round.
    pub outcome: ChokeOutcome,
}

/// Full audit of one rechoke round: every connection's inputs,
/// ranking, and outcome — the raw material of the choke-decision
/// audit trail. Produced only after
/// [`Engine::enable_choke_audit`]; drained by
/// [`Engine::take_choke_audit`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChokeAudit {
    /// When the round ran.
    pub at: Instant,
    /// Whether the seed-state algorithm decided this round.
    pub is_seed: bool,
    /// Holder of the optimistic (leecher) / seed-random slot.
    pub optimistic: Option<ConnId>,
    /// Choke-state changes sent this round.
    pub flips: u32,
    /// One entry per connection, in rank order.
    pub entries: Vec<ChokeAuditEntry>,
}

/// One piece pick, recorded when the choke audit is enabled — the
/// picker-side input (`availability` at pick time) of a
/// request-provenance chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PickEvent {
    /// Connection the request was scheduled on.
    pub conn: ConnId,
    /// Piece picked.
    pub piece: u32,
    /// Local availability count of that piece at pick time (the
    /// rarest-first ranking input).
    pub availability: u32,
}

/// What one [`Engine::rechoke`] round did, from the engine's local
/// view — the per-round hook behind the `core.choke.*` counters and
/// the live health monitors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChokeRoundStats {
    /// When the round ran.
    pub at: Instant,
    /// Choke-state changes sent this round (chokes + unchokes).
    pub flips: u32,
    /// Connections left unchoked after the round.
    pub unchoked: u32,
    /// Unchoked connections whose peer also unchokes us (local
    /// tit-for-tat view).
    pub reciprocal: u32,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("peer_id", &self.peer_id)
            .field("ip", &self.ip)
            .field(
                "pieces",
                &format!("{}/{}", self.own.count_ones(), self.own.len()),
            )
            .field("conns", &self.conns.len())
            .field("is_seed", &self.is_seed)
            .finish()
    }
}

/// Span name for one [`Input`] variant (`core.handle.*`), so profiles
/// break engine time down per input kind. See DESIGN.md §"Observability"
/// for the naming convention.
fn input_span_name(input: &Input) -> &'static str {
    match input {
        Input::Start => "core.handle.start",
        Input::Tick => "core.handle.tick",
        Input::TrackerResponse { .. } => "core.handle.tracker_response",
        Input::PeerConnected { .. } => "core.handle.peer_connected",
        Input::ConnectFailed => "core.handle.connect_failed",
        Input::PeerDisconnected { .. } => "core.handle.peer_disconnected",
        Input::Message { .. } => "core.handle.message",
        Input::BlockSent { .. } => "core.handle.block_sent",
    }
}

impl Engine {
    /// Construct from an [`EngineBuilder`] (the only constructor; the
    /// legacy 8-argument `Engine::new` and the callback shims were
    /// removed after their one-release grace period).
    pub(crate) fn from_builder(b: EngineBuilder) -> Engine {
        let EngineBuilder {
            config,
            geometry,
            data,
            info_hash,
            peer_id,
            ip,
            initial_pieces,
            seed,
            recorder,
            metrics,
            profiler,
        } = b;
        let num_pieces = geometry.num_pieces();
        let initial_pieces = initial_pieces.unwrap_or_else(|| Bitfield::new(num_pieces));
        assert_eq!(initial_pieces.len(), num_pieces);
        let is_seed = initial_pieces.is_complete();
        let picker = config.picker.build(num_pieces);
        let leecher_choker = config.choker.build_leecher();
        let seed_choker = config.choker.build_seed();
        let config_endgame = config.endgame_enabled;
        Engine {
            config,
            geometry,
            data,
            info_hash,
            peer_id,
            ip,
            own: initial_pieces,
            availability: Availability::new(num_pieces),
            scheduler: {
                let mut s = RequestScheduler::new(geometry);
                s.set_endgame_enabled(config_endgame);
                s
            },
            picker,
            leecher_choker,
            seed_choker,
            conns: HashMap::new(),
            joined: HashSet::new(),
            connected_ips: HashSet::new(),
            next_conn: 0,
            initiated_open: 0,
            pending_dials: 0,
            candidate_pool: VecDeque::new(),
            buffers: HashMap::new(),
            is_seed,
            seed_at: if is_seed { Some(Instant::ZERO) } else { None },
            endgame_recorded: false,
            last_announce: Instant::ZERO,
            next_rechoke: None,
            revealed_to: HashMap::new(),
            reveal_counts: vec![0; num_pieces as usize],
            rng: SmallRng::seed_from_u64(seed),
            actions: Actions::default(),
            trace: recorder.map(Trace::new),
            metrics,
            profiler,
            last_choke_round: None,
            audit_choke: false,
            last_choke_audit: None,
            pick_log: Vec::new(),
        }
    }

    /// Attach (or replace) runtime telemetry handles after
    /// construction — drivers that build engines before the registry
    /// exists (e.g. a swarm retrofitting a shared registry) use this;
    /// prefer [`EngineBuilder::metrics`] otherwise.
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// True when runtime telemetry handles are attached.
    pub fn has_metrics(&self) -> bool {
        self.metrics.is_some()
    }

    /// Attach (or replace) a span profiler after construction — same
    /// retrofit story as [`set_metrics`](Self::set_metrics); prefer
    /// [`EngineBuilder::profiler`](crate::EngineBuilder::profiler)
    /// otherwise. Like metrics, spans never touch the engine's RNG or
    /// trace, so profiling cannot perturb deterministic runs.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// True when an enabled span profiler is attached.
    pub fn has_profiler(&self) -> bool {
        self.profiler.is_enabled()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The engine's peer ID.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// The torrent's info-hash.
    pub fn info_hash(&self) -> Digest {
        self.info_hash
    }

    /// Reserved bytes to advertise in outgoing handshakes.
    pub fn handshake_reserved(&self) -> [u8; 8] {
        let mut reserved = [0u8; 8];
        if self.config.fast_extension {
            fast::advertise_fast(&mut reserved);
        }
        if self.config.pex_enabled {
            bt_wire::extension::advertise_extended(&mut reserved);
        }
        reserved
    }

    /// The engine's IP address.
    pub fn ip(&self) -> IpAddr {
        self.ip
    }

    /// The local bitfield.
    pub fn own_pieces(&self) -> &Bitfield {
        &self.own
    }

    /// Number of verified pieces.
    pub fn num_pieces_have(&self) -> u32 {
        self.own.count_ones()
    }

    /// True once the download completed (or the engine started as seed).
    pub fn is_seed(&self) -> bool {
        self.is_seed
    }

    /// When the engine became a seed.
    pub fn seed_at(&self) -> Option<Instant> {
        self.seed_at
    }

    /// Current peer set size.
    pub fn peer_set_size(&self) -> usize {
        self.conns.len()
    }

    /// Piece availability over the current peer set.
    pub fn availability(&self) -> &Availability {
        &self.availability
    }

    /// Whether end game mode is active.
    pub fn in_endgame(&self) -> bool {
        self.scheduler.in_endgame()
    }

    /// Iterate over connections (read-only view for the harness).
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.conns.values()
    }

    /// Connection by id.
    pub fn connection(&self, conn: ConnId) -> Option<&Connection> {
        self.conns.get(&conn)
    }

    /// Take ownership of the recorded trace (ends recording).
    pub fn take_trace(&mut self) -> Option<Trace> {
        let mut trace = self.trace.take();
        if let Some(tr) = trace.as_mut() {
            tr.meta.seed_at = self.seed_at;
        }
        trace
    }

    /// Drain accumulated actions (equivalent to
    /// [`Actions::take`] on the buffer returned by [`Engine::handle`]).
    pub fn drain_actions(&mut self) -> Vec<Action> {
        self.actions.take()
    }

    /// Feed global per-piece copy counts to the picker (only the
    /// global-rarest oracle baseline consumes them).
    pub fn update_global_counts(&mut self, counts: &[u32]) {
        self.picker.update_global(counts);
    }

    fn record(&mut self, now: Instant, event: TraceEvent) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push(now, event);
        }
    }

    // ------------------------------------------------------------------
    // The sans-io entry point
    // ------------------------------------------------------------------

    /// Feed one [`Input`] event through the state machine and return the
    /// accumulated [`Actions`] for the driver to execute.
    ///
    /// This is the engine's single entry point; see [`crate::driver`]
    /// for the full contract. Malformed remote input never panics: the
    /// offending connection is removed, [`Action::Disconnect`] is
    /// emitted, and the [`EngineError`] is readable via
    /// [`Actions::take_error`].
    pub fn handle(&mut self, now: Instant, input: Input) -> &mut Actions {
        let _span_guard = self.profiler.span(input_span_name(&input));
        self.actions.accepted = None;
        self.actions.error = None;
        let emitted_before = self.actions.items.len();
        if let Some(m) = &self.metrics {
            m.count_input(&input);
        }
        match input {
            Input::Start => self.do_start(now),
            Input::Tick => self.do_tick(now),
            Input::TrackerResponse { peers } => self.do_tracker_response(now, peers),
            Input::PeerConnected {
                ip,
                peer_id,
                initiated_by_us,
                caps,
            } => {
                self.actions.accepted =
                    self.do_peer_connected(now, ip, peer_id, initiated_by_us, caps);
            }
            Input::ConnectFailed => self.do_connect_failed(now),
            Input::PeerDisconnected { conn } => self.do_peer_disconnected(now, conn),
            Input::Message { conn, msg } => {
                if let Err(err) = self.do_message(now, conn, msg) {
                    let conn = err.conn();
                    self.cleanup_conn(now, conn);
                    self.actions.push(Action::Disconnect { conn });
                    if let Some(m) = &self.metrics {
                        m.count_error(&err);
                        obs_warn!(
                            m.registry,
                            "core",
                            "protocol_violation",
                            "conn" = u64::from(conn),
                            "error" = format!("{err:?}").as_str(),
                        );
                    }
                    self.actions.error = Some(err);
                }
            }
            Input::BlockSent { conn, block } => self.do_block_sent(now, conn, block),
        }
        if let Some(m) = &self.metrics {
            for action in &self.actions.items[emitted_before..] {
                m.count_action(action);
            }
        }
        &mut self.actions
    }

    /// The deadline of the next pending timer, for pull-style drivers
    /// (push-style drivers follow [`Action::SetTimer`] instead). `None`
    /// until [`Input::Start`] arms the periodic round.
    pub fn next_wakeup(&self) -> Option<Instant> {
        self.next_rechoke
    }

    /// Override the next periodic-round deadline (emits
    /// [`Action::SetTimer`]). Drivers use this to stagger choke rounds
    /// across a swarm, or to keep an established round cadence across an
    /// engine rebuild.
    pub fn schedule_rechoke(&mut self, at: Instant) {
        self.arm_rechoke(at);
    }

    fn arm_rechoke(&mut self, at: Instant) {
        self.next_rechoke = Some(at);
        self.actions.push(Action::SetTimer { at });
    }

    /// Run every periodic duty whose deadline has passed; early or stale
    /// ticks fall through untouched.
    fn do_tick(&mut self, now: Instant) {
        if let Some(at) = self.next_rechoke {
            if now >= at {
                self.rechoke(now);
                self.arm_rechoke(now + self.config.rechoke_period);
            }
        }
    }

    // ------------------------------------------------------------------
    // Session lifecycle
    // ------------------------------------------------------------------

    fn do_start(&mut self, now: Instant) {
        self.last_announce = now;
        self.actions.push(Action::Announce {
            event: AnnounceEvent::Started,
        });
        self.arm_rechoke(now + self.config.rechoke_period);
    }

    fn do_tracker_response(&mut self, _now: Instant, peers: Vec<PeerEntry>) {
        for p in peers {
            if p.ip != self.ip && !self.connected_ips.contains(&p.ip) {
                self.candidate_pool.push_back(p);
            }
        }
        self.dial_candidates();
    }

    fn dial_candidates(&mut self) {
        while self.initiated_open + self.pending_dials < self.config.max_initiated
            && self.conns.len() + self.pending_dials < self.config.max_peer_set
        {
            let Some(peer) = self.candidate_pool.pop_front() else {
                break;
            };
            if self.connected_ips.contains(&peer.ip) {
                continue;
            }
            self.pending_dials += 1;
            self.actions.push(Action::Connect { peer });
        }
    }

    /// Should an inbound connection from `ip` be accepted?
    pub fn accept_incoming(&self, ip: IpAddr) -> bool {
        if self.conns.len() >= self.config.max_peer_set {
            return false;
        }
        !(self.config.one_connection_per_ip && self.connected_ips.contains(&ip))
    }

    fn do_peer_connected(
        &mut self,
        now: Instant,
        ip: IpAddr,
        peer_id: PeerId,
        initiated_by_us: bool,
        caps: PeerCaps,
    ) -> Option<ConnId> {
        if initiated_by_us {
            self.pending_dials = self.pending_dials.saturating_sub(1);
        }
        if !initiated_by_us && !self.accept_incoming(ip) {
            return None;
        }
        if self.config.one_connection_per_ip && self.connected_ips.contains(&ip) {
            return None;
        }
        if self.conns.len() >= self.config.max_peer_set {
            return None;
        }
        let id = self.next_conn;
        self.next_conn += 1;
        let mut conn = Connection::new(
            id,
            ip,
            peer_id,
            initiated_by_us,
            self.geometry.num_pieces(),
            now,
        );
        conn.fast = self.config.fast_extension && caps.fast;
        conn.extended = self.config.pex_enabled && caps.extended;
        let is_fast = conn.fast;
        let is_extended = conn.extended;
        self.conns.insert(id, conn);
        self.connected_ips.insert(ip);
        if initiated_by_us {
            self.initiated_open += 1;
        }
        // Advertise our pieces. A super seed hides them and reveals via
        // `have` messages instead (§IV-A.1's entropy artefact). With the
        // Fast Extension, full and empty maps use the compact forms.
        if self.config.super_seed {
            let empty = Bitfield::new(self.geometry.num_pieces());
            if is_fast {
                self.send(now, id, Message::HaveNone);
            } else {
                self.send(now, id, Message::Bitfield(empty.to_wire()));
            }
        } else if is_fast && self.own.is_complete() {
            self.send(now, id, Message::HaveAll);
        } else if is_fast && self.own.count_ones() == 0 {
            self.send(now, id, Message::HaveNone);
        } else {
            let bits = self.own.to_wire();
            self.send(now, id, Message::Bitfield(bits));
        }
        // Fast Extension: grant the canonical allowed-fast set (BEP 6),
        // the bootstrap for the paper's §VI first-blocks problem.
        if is_fast && !self.config.super_seed {
            let grants = fast::allowed_fast_set(
                ip,
                &self.info_hash,
                self.geometry.num_pieces(),
                self.config.allowed_fast_count,
            );
            for &piece in &grants {
                self.send(now, id, Message::AllowedFast(piece));
            }
            self.conns
                .get_mut(&id)
                .expect("just inserted")
                .allowed_fast_sent = grants;
        }
        // Extension protocol: advertise ut_pex in the extension handshake.
        if is_extended {
            let hs = bt_wire::extension::ExtendedHandshake::with_pex();
            self.send(
                now,
                id,
                Message::Extended {
                    ext_id: bt_wire::extension::HANDSHAKE_ID,
                    payload: hs.encode(),
                },
            );
        }
        // Super seeding: advertise nothing, then reveal exactly one piece
        // (the globally least-revealed) to the new peer via `have`.
        if self.config.super_seed {
            self.reveal_next_piece(now, id);
        }
        Some(id)
    }

    /// Super-seeding: offer `conn` the least-revealed piece it has not
    /// been offered yet. Minimising reveal counts is what keeps the
    /// initial seed's duplicate-piece ratio low (§IV-A.4).
    /// Send `ut_pex` deltas (current peer set vs. last gossip) to every
    /// pex-capable connection whose interval elapsed.
    fn send_pex_rounds(&mut self, now: Instant) {
        let current: Vec<IpAddr> = {
            let mut v: Vec<IpAddr> = self.conns.values().map(|c| c.ip).collect();
            v.sort_unstable();
            v
        };
        let mut ids: Vec<ConnId> = self
            .conns
            .values()
            .filter(|c| {
                c.remote_pex_id.is_some()
                    && now.saturating_since(c.last_pex) >= self.config.pex_interval
            })
            .map(|c| c.id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let (ext_id, added, dropped) = {
                let c = self.conns.get_mut(&id).expect("present");
                c.last_pex = now;
                let own_ip = c.ip;
                let added: Vec<PeerEntry> = current
                    .iter()
                    .filter(|ip| **ip != own_ip && !c.pex_sent.contains(ip))
                    .map(|&ip| PeerEntry { ip, port: 6881 })
                    .collect();
                let dropped: Vec<PeerEntry> = c
                    .pex_sent
                    .iter()
                    .filter(|ip| !current.contains(ip))
                    .map(|&ip| PeerEntry { ip, port: 6881 })
                    .collect();
                c.pex_sent = current.iter().copied().filter(|ip| *ip != own_ip).collect();
                (c.remote_pex_id.expect("filtered"), added, dropped)
            };
            if added.is_empty() && dropped.is_empty() {
                continue;
            }
            let payload = bt_wire::extension::PexPayload { added, dropped }.encode();
            self.send(now, id, Message::Extended { ext_id, payload });
        }
    }

    fn reveal_next_piece(&mut self, now: Instant, conn: ConnId) {
        let already = self.revealed_to.entry(conn).or_default().clone();
        let mut best: Option<(u32, u32)> = None; // (count, piece)
        for piece in self.own.iter_ones() {
            if already.contains(&piece) {
                continue;
            }
            let count = self.reveal_counts[piece as usize];
            if best.is_none_or(|(c, p)| count < c || (count == c && piece < p)) {
                best = Some((count, piece));
            }
        }
        if let Some((_, piece)) = best {
            self.reveal_counts[piece as usize] += 1;
            self.revealed_to.entry(conn).or_default().insert(piece);
            self.send(now, conn, Message::Have(piece));
        }
    }

    fn do_connect_failed(&mut self, _now: Instant) {
        self.pending_dials = self.pending_dials.saturating_sub(1);
        self.dial_candidates();
    }

    fn do_peer_disconnected(&mut self, now: Instant, conn: ConnId) {
        self.cleanup_conn(now, conn);
        self.dial_candidates();
    }

    fn cleanup_conn(&mut self, now: Instant, conn: ConnId) {
        let Some(c) = self.conns.remove(&conn) else {
            return;
        };
        self.connected_ips.remove(&c.ip);
        if c.initiated_by_us {
            self.initiated_open = self.initiated_open.saturating_sub(1);
        }
        if self.joined.remove(&conn) {
            self.availability.remove_peer(&c.bitfield);
            self.record(now, TraceEvent::PeerLeft { peer: conn });
        }
        self.revealed_to.remove(&conn);
        let _dropped = self.scheduler.on_peer_gone(conn);
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    fn do_message(&mut self, now: Instant, conn: ConnId, msg: Message) -> Result<(), EngineError> {
        if !self.conns.contains_key(&conn) {
            return Ok(()); // raced a disconnect
        }
        if self.trace.is_some() {
            // §III-C: a log of each message received. Piece payloads and
            // choke/interest transitions also get dedicated richer events.
            let kind = msg.kind();
            self.record(
                now,
                TraceEvent::Message {
                    peer: conn,
                    kind,
                    sent: false,
                },
            );
        }
        match msg {
            Message::KeepAlive | Message::Port(_) => {}
            Message::Bitfield(bits) => self.on_bitfield(now, conn, &bits)?,
            Message::Have(piece) => self.on_have(now, conn, piece)?,
            Message::Interested => self.on_remote_interest(now, conn, true),
            Message::NotInterested => self.on_remote_interest(now, conn, false),
            Message::Choke => self.on_remote_choke(now, conn, true),
            Message::Unchoke => self.on_remote_choke(now, conn, false),
            Message::Request(block) => self.on_request(now, conn, block)?,
            Message::Piece { block, data } => self.on_piece(now, conn, block, data)?,
            Message::Cancel(block) => {
                self.check_block(conn, block)?;
                self.actions.push(Action::CancelBlock { conn, block });
            }
            Message::Suggest(_) => {
                // Advisory only; the rarest-first picker ignores hints.
            }
            Message::HaveAll => {
                let full = Bitfield::full(self.geometry.num_pieces());
                self.on_bitfield(now, conn, &full.to_wire())?;
            }
            Message::HaveNone => {
                let empty = Bitfield::new(self.geometry.num_pieces());
                self.on_bitfield(now, conn, &empty.to_wire())?;
            }
            Message::RejectRequest(block) => self.on_reject(now, conn, block),
            Message::AllowedFast(piece) => self.on_allowed_fast(now, conn, piece),
            Message::Extended { ext_id, payload } => self.on_extended(now, conn, ext_id, &payload),
        }
        Ok(())
    }

    /// Validate that `block` lies on the torrent's 16 kB block grid —
    /// the precondition [`Geometry::block_ref`] debug-asserts. A remote
    /// peer can ship arbitrary `(piece, offset, length)` triples, so
    /// every block arriving off the wire passes through here before any
    /// geometry arithmetic.
    fn check_block(&self, conn: ConnId, block: BlockRef) -> Result<(), EngineError> {
        let malformed = EngineError::MalformedBlock { conn, block };
        if block.piece >= self.geometry.num_pieces() {
            return Err(malformed);
        }
        if !block.offset.is_multiple_of(bt_wire::metainfo::BLOCK_LEN)
            || block.block_index() >= self.geometry.blocks_in_piece(block.piece)
        {
            return Err(malformed);
        }
        if self.geometry.block_ref(block.piece, block.block_index()) != block {
            return Err(malformed);
        }
        Ok(())
    }

    fn on_extended(&mut self, now: Instant, conn: ConnId, ext_id: u8, payload: &[u8]) {
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if !c.extended {
            return; // extension frames without negotiation: ignore
        }
        if ext_id == bt_wire::extension::HANDSHAKE_ID {
            if let Ok(hs) = bt_wire::extension::ExtendedHandshake::decode(payload) {
                c.remote_pex_id = hs.ut_pex_id();
            }
            return;
        }
        // ut_pex gossip arrives under the ID *we* advertised.
        if ext_id == bt_wire::extension::UT_PEX_LOCAL_ID {
            if let Ok(pex) = bt_wire::extension::PexPayload::decode(payload) {
                let _ = now;
                for p in pex.added {
                    if p.ip != self.ip && !self.connected_ips.contains(&p.ip) {
                        self.candidate_pool.push_back(p);
                    }
                }
                self.dial_candidates();
            }
        }
    }

    fn on_bitfield(&mut self, now: Instant, conn: ConnId, bits: &[u8]) -> Result<(), EngineError> {
        let num_pieces = self.geometry.num_pieces();
        let Some(bf) = Bitfield::from_wire(bits, num_pieces) else {
            // Protocol violation: `handle` drops the peer.
            return Err(EngineError::BadBitfield {
                conn,
                len: bits.len(),
            });
        };
        let (ip, peer_id, pieces) = {
            let c = self.conns.get_mut(&conn).expect("checked");
            c.bitfield = bf;
            (c.ip, c.peer_id, c.bitfield.count_ones())
        };
        if self.joined.insert(conn) {
            let old = self.conns[&conn].bitfield.clone();
            self.availability.add_peer(&old);
            self.record(
                now,
                TraceEvent::PeerJoined {
                    peer: conn,
                    ip,
                    peer_id,
                    pieces_on_arrival: pieces,
                    total_pieces: num_pieces,
                },
            );
        }
        self.after_remote_pieces_changed(now, conn);
        Ok(())
    }

    fn on_have(&mut self, now: Instant, conn: ConnId, piece: u32) -> Result<(), EngineError> {
        if piece >= self.geometry.num_pieces() {
            return Err(EngineError::PieceOutOfRange {
                conn,
                piece,
                num_pieces: self.geometry.num_pieces(),
            });
        }
        let newly = {
            let c = self.conns.get_mut(&conn).expect("checked");
            c.bitfield.set(piece)
        };
        if newly && self.joined.contains(&conn) {
            self.availability.add_have(piece);
        }
        // Super seeding: a peer confirming a piece we revealed to it is
        // the trigger to offer it the next one.
        if self.config.super_seed
            && newly
            && self
                .revealed_to
                .get(&conn)
                .is_some_and(|set| set.contains(&piece))
        {
            self.reveal_next_piece(now, conn);
        }
        self.after_remote_pieces_changed(now, conn);
        Ok(())
    }

    /// Remote gained pieces: refresh interest, drop seed↔seed links, and
    /// top up the request pipeline.
    fn after_remote_pieces_changed(&mut self, now: Instant, conn: ConnId) {
        if self.is_seed && self.conns.get(&conn).is_some_and(Connection::is_seed) {
            // Seeds have nothing to exchange (§IV-A.2.b: "when a leecher
            // becomes a seed, it closes its connections to all the seeds").
            self.cleanup_conn(now, conn);
            self.actions.push(Action::Disconnect { conn });
            return;
        }
        self.update_local_interest(now, conn);
        self.fill_requests(now, conn);
    }

    fn on_remote_interest(&mut self, now: Instant, conn: ConnId, interested: bool) {
        {
            let c = self.conns.get_mut(&conn).expect("checked");
            if c.peer_interested == interested {
                return;
            }
            c.peer_interested = interested;
        }
        self.record(
            now,
            TraceEvent::RemoteInterest {
                peer: conn,
                interested,
            },
        );
    }

    fn on_remote_choke(&mut self, now: Instant, conn: ConnId, choked: bool) {
        {
            let c = self.conns.get_mut(&conn).expect("checked");
            if c.peer_choking == choked {
                return;
            }
            c.peer_choking = choked;
        }
        self.record(now, TraceEvent::RemoteChoke { peer: conn, choked });
        if choked {
            // Mainline drops outstanding requests on choke.
            let _ = self.scheduler.on_choked(conn);
            // Allowed-fast pieces remain requestable while choked.
            if self.conns.get(&conn).is_some_and(|c| c.fast) {
                self.fill_requests(now, conn);
            }
        } else {
            self.fill_requests(now, conn);
        }
    }

    fn on_reject(&mut self, now: Instant, conn: ConnId, block: BlockRef) {
        let Some(c) = self.conns.get(&conn) else {
            return;
        };
        if !c.fast {
            return; // protocol violation outside the Fast Extension
        }
        let _ = self.scheduler.on_request_rejected(conn, block);
        let _ = now;
    }

    fn on_allowed_fast(&mut self, now: Instant, conn: ConnId, piece: u32) {
        if piece >= self.geometry.num_pieces() {
            return;
        }
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if !c.fast {
            return;
        }
        c.allowed_fast_received.insert(piece);
        // The grant may make a choked connection usable right away.
        self.fill_requests(now, conn);
    }

    fn on_request(
        &mut self,
        now: Instant,
        conn: ConnId,
        block: BlockRef,
    ) -> Result<(), EngineError> {
        // Off-grid requests are protocol violations (and would trip the
        // geometry arithmetic); a request for a piece we merely don't
        // have is a legitimate race and stays a reject/ignore below.
        self.check_block(conn, block)?;
        if self.config.upload_disabled {
            return Ok(()); // free rider: silently ignore
        }
        let Some(c) = self.conns.get(&conn) else {
            return Ok(());
        };
        if !self.own.get(block.piece) {
            if c.fast {
                self.send(now, conn, Message::RejectRequest(block));
            }
            return Ok(());
        }
        if c.am_choking {
            // Fast Extension: allowed-fast pieces are served even while
            // choked; everything else gets an explicit reject (the base
            // protocol silently drops).
            if c.fast {
                if c.allowed_fast_sent.contains(&block.piece) {
                    self.actions.push(Action::SendBlock { conn, block });
                    return Ok(());
                }
                self.send(now, conn, Message::RejectRequest(block));
            }
            return Ok(());
        }
        let _ = now;
        self.actions.push(Action::SendBlock { conn, block });
        Ok(())
    }

    fn do_block_sent(&mut self, now: Instant, conn: ConnId, block: BlockRef) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.upload.record(now, u64::from(block.length));
            c.last_sent = now;
        }
        if self.trace.is_some() {
            self.record(
                now,
                TraceEvent::Message {
                    peer: conn,
                    kind: bt_wire::message::MessageKind::Piece,
                    sent: true,
                },
            );
        }
        self.record(now, TraceEvent::BlockSent { peer: conn, block });
    }

    fn on_piece(
        &mut self,
        now: Instant,
        conn: ConnId,
        block: BlockRef,
        data: bytes::Bytes,
    ) -> Result<(), EngineError> {
        self.check_block(conn, block)?;
        {
            let Some(c) = self.conns.get_mut(&conn) else {
                return Ok(());
            };
            c.download.record(now, u64::from(block.length));
            c.last_block_received = Some(now);
        }
        let receipt = self.scheduler.on_block_received(conn, block);
        if !receipt.accepted {
            return Ok(());
        }
        self.record(now, TraceEvent::BlockReceived { peer: conn, block });
        if self.data.is_real() {
            let buf = self
                .buffers
                .entry(block.piece)
                .or_insert_with(|| PieceBuffer::new(self.geometry.blocks_in_piece(block.piece)));
            buf.store(block.block_index(), data);
        }
        for (other, cancel) in receipt.cancels {
            self.send(now, other, Message::Cancel(cancel));
        }
        if let Some(piece) = receipt.completed_piece {
            self.on_piece_complete(now, piece);
        }
        self.fill_requests(now, conn);
        Ok(())
    }

    fn on_piece_complete(&mut self, now: Instant, piece: u32) {
        let ok = if self.data.is_real() {
            let assembled = self
                .buffers
                .remove(&piece)
                .and_then(|b| b.assemble())
                .unwrap_or_default();
            self.data.verify_piece(piece, &assembled)
        } else {
            true
        };
        if !ok {
            self.scheduler.on_piece_failed(piece);
            self.record(now, TraceEvent::PieceFailed { piece });
            if let Some(m) = &self.metrics {
                m.pieces_failed.inc();
            }
            return;
        }
        self.scheduler.on_piece_verified(piece);
        self.own.set(piece);
        self.record(now, TraceEvent::PieceCompleted { piece });
        if let Some(m) = &self.metrics {
            m.pieces_completed.inc();
        }
        let mut conn_ids: Vec<ConnId> = self.conns.keys().copied().collect();
        conn_ids.sort_unstable();
        for id in &conn_ids {
            self.send(now, *id, Message::Have(piece));
        }
        // Our interest in peers may lapse now.
        for id in conn_ids {
            self.update_local_interest(now, id);
        }
        if self.own.is_complete() {
            self.become_seed(now);
        }
    }

    fn become_seed(&mut self, now: Instant) {
        self.is_seed = true;
        self.seed_at = Some(now);
        self.record(now, TraceEvent::BecameSeed);
        if let Some(m) = &self.metrics {
            obs_info!(
                m.registry,
                "core",
                "became_seed",
                "at_secs" = now.as_secs_f64(),
            );
        }
        self.actions.push(Action::Announce {
            event: AnnounceEvent::Completed,
        });
        // Close connections to other seeds.
        let mut seeds: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| c.is_seed())
            .map(|(&id, _)| id)
            .collect();
        seeds.sort_unstable();
        for id in seeds {
            self.cleanup_conn(now, id);
            self.actions.push(Action::Disconnect { conn: id });
        }
    }

    // ------------------------------------------------------------------
    // Interest and requests
    // ------------------------------------------------------------------

    fn update_local_interest(&mut self, now: Instant, conn: ConnId) {
        let Some(c) = self.conns.get(&conn) else {
            return;
        };
        let want = !self.is_seed && self.own.is_interested_in(&c.bitfield);
        if want == c.am_interested {
            return;
        }
        self.conns.get_mut(&conn).expect("checked").am_interested = want;
        let msg = if want {
            Message::Interested
        } else {
            Message::NotInterested
        };
        self.send(now, conn, msg);
        self.record(
            now,
            TraceEvent::LocalInterest {
                peer: conn,
                interested: want,
            },
        );
    }

    fn fill_requests(&mut self, now: Instant, conn: ConnId) {
        let Some(c) = self.conns.get(&conn) else {
            return;
        };
        if self.is_seed {
            return;
        }
        // While choked, only the Fast Extension's allowed-fast pieces are
        // requestable; restrict the visible remote bitfield to the grant.
        let choked_fast = c.peer_choking && c.fast && !c.allowed_fast_received.is_empty();
        if c.peer_choking && !choked_fast {
            return;
        }
        if !c.peer_choking && !c.am_interested {
            return;
        }
        let room = self
            .config
            .pipeline_depth
            .saturating_sub(self.scheduler.outstanding_to(conn));
        if room == 0 {
            return;
        }
        let remote = if choked_fast {
            let mut restricted = Bitfield::new(self.geometry.num_pieces());
            for &p in &c.allowed_fast_received {
                if c.bitfield.get(p) {
                    restricted.set(p);
                }
            }
            restricted
        } else {
            c.bitfield.clone()
        };
        let downloaded = self.own.count_ones();
        let never = |_p: u32| false; // the scheduler tracks in-progress itself
        let ctx = PickContext {
            own: &self.own,
            remote: &remote,
            availability: &self.availability,
            in_progress: &never,
            downloaded_pieces: downloaded,
        };
        let pick_started = self.metrics.as_ref().map(|m| m.registry.now_micros());
        let reqs = {
            let _span_guard = self.profiler.span("core.piece_pick");
            self.scheduler
                .next_requests(conn, &ctx, self.picker.as_mut(), &mut self.rng, room)
        };
        if let (Some(m), Some(t0)) = (&self.metrics, pick_started) {
            m.piece_pick_us
                .observe(m.registry.now_micros().saturating_sub(t0));
        }
        if self.scheduler.in_endgame() && !self.endgame_recorded {
            self.endgame_recorded = true;
            self.record(now, TraceEvent::EndGameEntered);
        }
        if self.audit_choke {
            for block in &reqs {
                self.pick_log.push(PickEvent {
                    conn,
                    piece: block.piece,
                    availability: self.availability.count(block.piece),
                });
            }
        }
        for block in reqs {
            self.send(now, conn, Message::Request(block));
        }
    }

    // ------------------------------------------------------------------
    // Choke rounds and periodic duties
    // ------------------------------------------------------------------

    /// Run one 10-second rechoke round (§II-C.2) immediately.
    ///
    /// Normally the round is driven by [`Input::Tick`] against the
    /// deadline the engine arms itself ([`Action::SetTimer`] /
    /// [`Engine::next_wakeup`]); calling this directly is for tests and
    /// harnesses that want an out-of-band round. It does **not** move
    /// the armed deadline.
    pub fn rechoke(&mut self, now: Instant) {
        let _span_guard = self.profiler.span("core.choke_round");
        let round_started = self.metrics.as_ref().map(|m| m.registry.now_micros());
        let snapshots: Vec<PeerSnapshot> = {
            let mut v: Vec<PeerSnapshot> =
                self.conns.values_mut().map(|c| c.snapshot(now)).collect();
            v.sort_by_key(|s| s.key);
            v
        };
        let decision = if self.is_seed {
            self.seed_choker.rechoke(now, &snapshots, &mut self.rng)
        } else {
            self.leecher_choker.rechoke(now, &snapshots, &mut self.rng)
        };
        let desired: HashSet<ConnId> = decision.unchoked().into_iter().collect();
        let mut all: Vec<ConnId> = self.conns.keys().copied().collect();
        all.sort_unstable();
        let mut flips = 0u32;
        for id in all {
            let currently_unchoked = !self.conns[&id].am_choking;
            if desired.contains(&id) && !currently_unchoked {
                let role = if decision.regular.contains(&id) {
                    if self.is_seed {
                        UnchokeRole::SeedKept
                    } else {
                        UnchokeRole::Regular
                    }
                } else if self.is_seed {
                    UnchokeRole::SeedRandom
                } else {
                    UnchokeRole::Optimistic
                };
                {
                    let c = self.conns.get_mut(&id).expect("present");
                    c.am_choking = false;
                    c.last_unchoked = Some(now);
                }
                flips += 1;
                self.send(now, id, Message::Unchoke);
                self.record(
                    now,
                    TraceEvent::LocalChoke {
                        peer: id,
                        choked: false,
                        role: Some(role),
                    },
                );
            } else if !desired.contains(&id) && currently_unchoked {
                self.conns.get_mut(&id).expect("present").am_choking = true;
                flips += 1;
                self.send(now, id, Message::Choke);
                self.record(
                    now,
                    TraceEvent::LocalChoke {
                        peer: id,
                        choked: true,
                        role: None,
                    },
                );
            }
            // Note: a retained slot does NOT refresh `last_unchoked` — the
            // new seed-state algorithm orders by the time a peer was last
            // *granted* an unchoke, so kept peers age and each new SRU
            // "tak[es] an unchoke slot off the oldest SKU peer" (§II-C.2).
        }
        let mut unchoked = 0u32;
        let mut reciprocal = 0u32;
        for c in self.conns.values() {
            if !c.am_choking {
                unchoked += 1;
                if !c.peer_choking {
                    reciprocal += 1;
                }
            }
        }
        self.last_choke_round = Some(ChokeRoundStats {
            at: now,
            flips,
            unchoked,
            reciprocal,
        });
        if self.audit_choke {
            // Rank by the leecher-state ranking signal (download rate),
            // ties broken by key so the audit is deterministic.
            let mut order: Vec<usize> = (0..snapshots.len()).collect();
            order.sort_by(|&a, &b| {
                snapshots[b]
                    .download_rate
                    .partial_cmp(&snapshots[a].download_rate)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(snapshots[a].key.cmp(&snapshots[b].key))
            });
            let entries = order
                .iter()
                .enumerate()
                .map(|(rank, &i)| {
                    let s = &snapshots[i];
                    let outcome = if decision.optimistic == Some(s.key) {
                        if self.is_seed {
                            ChokeOutcome::SeedRandom
                        } else {
                            ChokeOutcome::Optimistic
                        }
                    } else if decision.regular.contains(&s.key) {
                        if self.is_seed {
                            ChokeOutcome::SeedKept
                        } else {
                            ChokeOutcome::Regular
                        }
                    } else {
                        ChokeOutcome::Choked
                    };
                    ChokeAuditEntry {
                        conn: s.key,
                        interested: s.interested,
                        snubbed: s.snubbed,
                        download_rate: s.download_rate,
                        upload_rate: s.upload_rate,
                        rank: rank as u32,
                        outcome,
                    }
                })
                .collect();
            self.last_choke_audit = Some(ChokeAudit {
                at: now,
                is_seed: self.is_seed,
                optimistic: decision.optimistic,
                flips,
                entries,
            });
        }
        if let (Some(m), Some(t0)) = (&self.metrics, round_started) {
            m.choke_rounds.inc();
            m.choke_flips.add(u64::from(flips));
            m.choke_unchoked_slots.add(u64::from(unchoked));
            m.choke_reciprocal_slots.add(u64::from(reciprocal));
            m.choke_round_us
                .observe(m.registry.now_micros().saturating_sub(t0));
        }
        self.periodic_duties(now);
    }

    /// Stats of the most recent choke round, if one has run — the
    /// per-round hook for live health monitors.
    pub fn last_choke_round(&self) -> Option<&ChokeRoundStats> {
        self.last_choke_round.as_ref()
    }

    /// Turn on the choke/picker audit trail: every subsequent rechoke
    /// round leaves a [`ChokeAudit`] and every piece pick a
    /// [`PickEvent`]. Pure observation — enabling it changes no
    /// decision and consumes no RNG draws.
    pub fn enable_choke_audit(&mut self) {
        self.audit_choke = true;
    }

    /// The audit of the most recent rechoke round, consumed. Drivers
    /// drain this after each input that may have run a round.
    pub fn take_choke_audit(&mut self) -> Option<ChokeAudit> {
        self.last_choke_audit.take()
    }

    /// Piece picks recorded since the last drain (audit enabled only).
    pub fn take_pick_log(&mut self) -> Vec<PickEvent> {
        std::mem::take(&mut self.pick_log)
    }

    fn periodic_duties(&mut self, now: Instant) {
        // Rate-estimator log for active peers (§III-C).
        let mut samples: Vec<(ConnId, f64, f64)> = self
            .conns
            .values_mut()
            .filter(|c| c.in_active_set() || !c.peer_choking)
            .map(|c| {
                let d = c.download.rate(now);
                let u = c.upload.rate(now);
                (c.id, d, u)
            })
            .collect();
        samples.sort_unstable_by_key(|(id, _, _)| *id);
        if self.trace.is_some() {
            for (peer, download_rate, upload_rate) in samples {
                self.record(
                    now,
                    TraceEvent::RateSample {
                        peer,
                        download_rate,
                        upload_rate,
                    },
                );
            }
        }
        // Keep-alives after 2 minutes of silence.
        let mut quiet: Vec<ConnId> = self
            .conns
            .values()
            .filter(|c| now.saturating_since(c.last_sent) >= self.config.keepalive)
            .map(|c| c.id)
            .collect();
        quiet.sort_unstable();
        for id in quiet {
            self.send(now, id, Message::KeepAlive);
        }
        // Peer exchange: gossip peer-set deltas to ut_pex-capable peers.
        if self.config.pex_enabled {
            self.send_pex_rounds(now);
        }
        // Tracker refresh when the peer set runs low (§II-B: threshold 20).
        if self.conns.len() < self.config.min_peer_set
            && now.saturating_since(self.last_announce) >= bt_wire::time::Duration::from_secs(60)
        {
            self.last_announce = now;
            self.actions.push(Action::Announce {
                event: AnnounceEvent::Periodic,
            });
        }
    }

    /// Record a periodic availability snapshot (figures 2–6 source data).
    pub fn sample_availability(&mut self, now: Instant) {
        if self.trace.is_none() {
            return;
        }
        let stats = self.availability.stats();
        let rarest = self.availability.rarest_set_size();
        let peers = self.conns.len() as u32;
        self.record(
            now,
            TraceEvent::AvailabilitySample {
                min: stats.min,
                mean: stats.mean,
                max: stats.max,
                rarest_set_size: rarest,
                peer_set_size: peers,
            },
        );
    }

    fn send(&mut self, now: Instant, conn: ConnId, msg: Message) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.last_sent = now;
        }
        if self.trace.is_some() {
            let kind = msg.kind();
            self.record(
                now,
                TraceEvent::Message {
                    peer: conn,
                    kind,
                    sent: true,
                },
            );
        }
        self.actions.push(Action::Send { conn, msg });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::metainfo::BLOCK_LEN;
    use bt_wire::peer_id::ClientKind;
    use bytes::Bytes;

    /// 4 pieces × 2 blocks.
    fn geometry() -> Geometry {
        Geometry::new(u64::from(8 * BLOCK_LEN), 2 * BLOCK_LEN)
    }

    fn leecher(seed: u64) -> Engine {
        EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, seed),
        )
        .ip(IpAddr(100 + seed as u32))
        .rng_seed(seed)
        .build()
    }

    fn feed(e: &mut Engine, now: Instant, conn: ConnId, msg: Message) {
        e.handle(now, Input::Message { conn, msg });
    }

    fn connect_with(e: &mut Engine, now: Instant, ip: u32, caps: PeerCaps) -> Option<ConnId> {
        e.handle(
            now,
            Input::PeerConnected {
                ip: IpAddr(ip),
                peer_id: PeerId::new(ClientKind::Azureus, u64::from(ip)),
                initiated_by_us: false,
                caps,
            },
        )
        .take_accepted()
    }

    fn connect_peer(e: &mut Engine, now: Instant, ip: u32, pieces: &[u32]) -> ConnId {
        let id = connect_with(e, now, ip, PeerCaps::default()).expect("accepted");
        let mut bf = Bitfield::new(4);
        for &p in pieces {
            bf.set(p);
        }
        feed(e, now, id, Message::Bitfield(bf.to_wire()));
        id
    }

    fn actions_of(e: &mut Engine) -> Vec<Action> {
        e.drain_actions()
    }

    #[test]
    fn start_announces_and_arms_timer() {
        let mut e = leecher(1);
        e.handle(Instant::ZERO, Input::Start);
        assert_eq!(
            actions_of(&mut e),
            vec![
                Action::Announce {
                    event: AnnounceEvent::Started
                },
                Action::SetTimer {
                    at: Instant::from_secs(10)
                },
            ]
        );
        assert_eq!(e.next_wakeup(), Some(Instant::from_secs(10)));
    }

    #[test]
    fn tick_runs_due_rechoke_and_rearms() {
        let mut e = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, 9),
        )
        .initial_pieces(Bitfield::full(4))
        .rng_seed(9)
        .build();
        e.handle(Instant::ZERO, Input::Start);
        let _ = e.drain_actions();
        let id = connect_with(&mut e, Instant::ZERO, 2, PeerCaps::default()).unwrap();
        feed(
            &mut e,
            Instant::ZERO,
            id,
            Message::Bitfield(Bitfield::new(4).to_wire()),
        );
        feed(&mut e, Instant::ZERO, id, Message::Interested);
        let _ = e.drain_actions();
        // An early tick is a harmless no-op: nothing runs, deadline keeps.
        e.handle(Instant::from_secs(5), Input::Tick);
        assert!(e.drain_actions().is_empty());
        assert_eq!(e.next_wakeup(), Some(Instant::from_secs(10)));
        // A due tick runs the choke round and re-arms the timer.
        e.handle(Instant::from_secs(10), Input::Tick);
        let acts = e.drain_actions();
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Unchoke,
                ..
            }
        )));
        assert!(acts.contains(&Action::SetTimer {
            at: Instant::from_secs(20)
        }));
        assert_eq!(e.next_wakeup(), Some(Instant::from_secs(20)));
    }

    #[test]
    fn sends_bitfield_and_interest_on_connect() {
        let mut e = leecher(1);
        let t = Instant::from_secs(1);
        let id = connect_peer(&mut e, t, 7, &[0, 1]);
        let acts = actions_of(&mut e);
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::Send { conn, msg: Message::Bitfield(_) } if *conn == id)));
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::Send { conn, msg: Message::Interested } if *conn == id)));
    }

    #[test]
    fn rejects_duplicate_ip() {
        let mut e = leecher(1);
        let t = Instant::ZERO;
        let _ = connect_peer(&mut e, t, 7, &[0]);
        assert!(!e.accept_incoming(IpAddr(7)));
        assert!(connect_with(&mut e, t, 7, PeerCaps::default()).is_none());
        // A different IP is fine.
        assert!(e.accept_incoming(IpAddr(8)));
    }

    #[test]
    fn requests_flow_after_unchoke() {
        let mut e = leecher(1);
        let t = Instant::from_secs(1);
        let id = connect_peer(&mut e, t, 7, &[0, 1, 2, 3]);
        let _ = actions_of(&mut e);
        feed(&mut e, t, id, Message::Unchoke);
        let acts = actions_of(&mut e);
        let reqs: Vec<&BlockRef> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::Request(b),
                    ..
                } => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(reqs.len(), 8, "pipeline fills to depth or block count");
    }

    #[test]
    fn download_completes_and_becomes_seed() {
        let mut e = leecher(1);
        let t = Instant::from_secs(1);
        let id = connect_peer(&mut e, t, 7, &[0, 1, 2, 3]);
        feed(&mut e, t, id, Message::Unchoke);
        // Serve every requested block until the pipeline drains.
        let mut served = std::collections::HashSet::new();
        let mut all_actions = Vec::new();
        loop {
            let acts = actions_of(&mut e);
            let mut any = false;
            for a in acts {
                if let Action::Send {
                    msg: Message::Request(b),
                    ..
                } = a
                {
                    if served.insert(b) {
                        any = true;
                        feed(
                            &mut e,
                            t,
                            id,
                            Message::Piece {
                                block: b,
                                data: Bytes::new(),
                            },
                        );
                    }
                } else {
                    all_actions.push(a);
                }
            }
            if !any {
                break;
            }
        }
        assert!(e.is_seed(), "all pieces served → seed");
        assert_eq!(e.num_pieces_have(), 4);
        all_actions.extend(actions_of(&mut e));
        assert!(all_actions.iter().any(|a| matches!(
            a,
            Action::Announce {
                event: AnnounceEvent::Completed
            }
        )));
    }

    #[test]
    fn seed_disconnects_from_seeds() {
        let mut e = leecher(1);
        let t = Instant::from_secs(1);
        let id = connect_peer(&mut e, t, 7, &[0, 1, 2, 3]);
        feed(&mut e, t, id, Message::Unchoke);
        loop {
            let acts = actions_of(&mut e);
            let reqs: Vec<BlockRef> = acts
                .iter()
                .filter_map(|a| match a {
                    Action::Send {
                        msg: Message::Request(b),
                        ..
                    } => Some(*b),
                    _ => None,
                })
                .collect();
            if reqs.is_empty() {
                break;
            }
            for b in reqs {
                feed(
                    &mut e,
                    t,
                    id,
                    Message::Piece {
                        block: b,
                        data: Bytes::new(),
                    },
                );
            }
        }
        assert!(e.is_seed());
        // The remote was a seed; the engine must have dropped it.
        assert_eq!(e.peer_set_size(), 0);
    }

    #[test]
    fn serves_requests_only_when_unchoked() {
        let mut seed_engine = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, 9),
        )
        .ip(IpAddr(1))
        .initial_pieces(Bitfield::full(4))
        .rng_seed(9)
        .build();
        let t = Instant::from_secs(1);
        let id = connect_with(&mut seed_engine, t, 2, PeerCaps::default()).unwrap();
        feed(
            &mut seed_engine,
            t,
            id,
            Message::Bitfield(Bitfield::new(4).to_wire()),
        );
        feed(&mut seed_engine, t, id, Message::Interested);
        let _ = seed_engine.drain_actions();
        let block = geometry().block_ref(0, 0);
        // Choked: request ignored.
        feed(&mut seed_engine, t, id, Message::Request(block));
        assert!(seed_engine.drain_actions().is_empty());
        // After a rechoke the interested peer gets unchoked and served.
        seed_engine.rechoke(Instant::from_secs(10));
        let acts = seed_engine.drain_actions();
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Unchoke,
                ..
            }
        )));
        feed(&mut seed_engine, t, id, Message::Request(block));
        let acts = seed_engine.drain_actions();
        assert_eq!(acts, vec![Action::SendBlock { conn: id, block }]);
    }

    #[test]
    fn free_rider_never_serves() {
        let mut fr =
            EngineBuilder::new(geometry(), [9u8; 20], PeerId::new(ClientKind::FreeRider, 3))
                .config(Config::free_rider())
                .ip(IpAddr(3))
                .initial_pieces(Bitfield::full(4))
                .rng_seed(3)
                .build();
        let t = Instant::ZERO;
        let id = connect_with(&mut fr, t, 4, PeerCaps::default()).unwrap();
        feed(
            &mut fr,
            t,
            id,
            Message::Bitfield(Bitfield::new(4).to_wire()),
        );
        feed(&mut fr, t, id, Message::Interested);
        fr.rechoke(Instant::from_secs(10));
        let _ = fr.drain_actions();
        feed(&mut fr, t, id, Message::Request(geometry().block_ref(0, 0)));
        assert!(fr
            .drain_actions()
            .iter()
            .all(|a| !matches!(a, Action::SendBlock { .. })));
    }

    #[test]
    fn tracker_dialing_respects_limits() {
        let cfg = Config {
            max_initiated: 3,
            ..Config::default()
        };
        let mut e = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, 5),
        )
        .config(cfg)
        .ip(IpAddr(50))
        .rng_seed(5)
        .build();
        let peers: Vec<PeerEntry> = (1..10)
            .map(|i| PeerEntry {
                ip: IpAddr(i),
                port: 6881,
            })
            .collect();
        e.handle(Instant::ZERO, Input::TrackerResponse { peers });
        let dials = e
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Connect { .. }))
            .count();
        assert_eq!(dials, 3);
        // A failed dial frees a slot and redials.
        e.handle(Instant::ZERO, Input::ConnectFailed);
        let redials = e
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Connect { .. }))
            .count();
        assert_eq!(redials, 1);
    }

    #[test]
    fn self_and_duplicate_candidates_skipped() {
        let mut e = leecher(6);
        let own_ip = e.ip();
        e.handle(
            Instant::ZERO,
            Input::TrackerResponse {
                peers: vec![
                    PeerEntry {
                        ip: own_ip,
                        port: 1,
                    },
                    PeerEntry {
                        ip: IpAddr(9),
                        port: 1,
                    },
                ],
            },
        );
        let dials: Vec<Action> = e
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Connect { .. }))
            .collect();
        assert_eq!(dials.len(), 1);
        assert!(matches!(&dials[0], Action::Connect { peer } if peer.ip == IpAddr(9)));
    }

    #[test]
    fn malformed_bitfield_drops_peer() {
        let mut e = leecher(1);
        let t = Instant::ZERO;
        let id = connect_with(&mut e, t, 7, PeerCaps::default()).unwrap();
        let err = e
            .handle(
                t,
                Input::Message {
                    conn: id,
                    msg: Message::Bitfield(vec![0xFF, 0xFF, 0xFF]),
                },
            )
            .take_error();
        assert_eq!(err, Some(EngineError::BadBitfield { conn: id, len: 3 }));
        let acts = e.drain_actions();
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::Disconnect { conn } if *conn == id)));
        assert_eq!(e.peer_set_size(), 0);
    }

    #[test]
    fn out_of_range_have_drops_peer() {
        let mut e = leecher(1);
        let t = Instant::ZERO;
        let id = connect_peer(&mut e, t, 7, &[0]);
        let _ = e.drain_actions();
        let err = e
            .handle(
                t,
                Input::Message {
                    conn: id,
                    msg: Message::Have(99),
                },
            )
            .take_error();
        assert_eq!(
            err,
            Some(EngineError::PieceOutOfRange {
                conn: id,
                piece: 99,
                num_pieces: 4
            })
        );
        assert!(e
            .drain_actions()
            .iter()
            .any(|a| matches!(a, Action::Disconnect { conn } if *conn == id)));
        assert_eq!(e.peer_set_size(), 0);
    }

    #[test]
    fn off_grid_request_drops_peer() {
        let mut e = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, 9),
        )
        .ip(IpAddr(1))
        .initial_pieces(Bitfield::full(4))
        .rng_seed(9)
        .build();
        let t = Instant::ZERO;
        let id = connect_with(&mut e, t, 2, PeerCaps::default()).unwrap();
        feed(&mut e, t, id, Message::Bitfield(Bitfield::new(4).to_wire()));
        feed(&mut e, t, id, Message::Interested);
        e.rechoke(Instant::from_secs(10));
        let _ = e.drain_actions();
        let bad = BlockRef {
            piece: 0,
            offset: 7,
            length: BLOCK_LEN,
        };
        let err = e
            .handle(
                t,
                Input::Message {
                    conn: id,
                    msg: Message::Request(bad),
                },
            )
            .take_error();
        assert_eq!(
            err,
            Some(EngineError::MalformedBlock {
                conn: id,
                block: bad
            })
        );
        assert!(e
            .drain_actions()
            .iter()
            .any(|a| matches!(a, Action::Disconnect { conn } if *conn == id)));
        assert_eq!(e.peer_set_size(), 0);
    }

    #[test]
    fn remote_choke_drops_outstanding_requests() {
        let mut e = leecher(1);
        let t = Instant::from_secs(1);
        let id = connect_peer(&mut e, t, 7, &[0, 1, 2, 3]);
        feed(&mut e, t, id, Message::Unchoke);
        let _ = e.drain_actions();
        feed(&mut e, t, id, Message::Choke);
        // After re-unchoke the pipeline refills from scratch.
        feed(&mut e, t, id, Message::Unchoke);
        let acts = e.drain_actions();
        let reqs = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Message::Request(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(reqs, 8);
    }

    fn fast_engine(seed: u64, pieces: Bitfield) -> Engine {
        let cfg = Config {
            fast_extension: true,
            ..Config::default()
        };
        EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, seed),
        )
        .config(cfg)
        .ip(IpAddr(200 + seed as u32))
        .initial_pieces(pieces)
        .rng_seed(seed)
        .build()
    }

    const FAST_CAPS: PeerCaps = PeerCaps {
        fast: true,
        extended: false,
    };

    #[test]
    fn fast_negotiation_sends_grants_and_compact_maps() {
        let mut seed_engine = fast_engine(1, Bitfield::full(4));
        let t = Instant::ZERO;
        let id = connect_with(&mut seed_engine, t, 7, FAST_CAPS).unwrap();
        let acts = seed_engine.drain_actions();
        // A complete fast peer advertises HaveAll, not a bitfield.
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::Send { conn, msg: Message::HaveAll } if *conn == id)));
        assert!(!acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Bitfield(_),
                ..
            }
        )));
        let grants: Vec<u32> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::AllowedFast(p),
                    ..
                } => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(grants.len(), 4, "default allowed-fast count");
        assert_eq!(
            grants,
            seed_engine.connection(id).unwrap().allowed_fast_sent,
            "grants recorded on the connection"
        );
    }

    #[test]
    fn fast_disabled_when_remote_lacks_it() {
        let mut e = fast_engine(2, Bitfield::new(4));
        let id = connect_with(&mut e, Instant::ZERO, 7, PeerCaps::default()).unwrap();
        assert!(!e.connection(id).unwrap().fast);
        let acts = e.drain_actions();
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Bitfield(_),
                ..
            }
        )));
        assert!(!acts.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::AllowedFast(_),
                ..
            }
        )));
    }

    #[test]
    fn allowed_fast_requests_served_while_choked() {
        let mut seed_engine = fast_engine(3, Bitfield::full(4));
        let t = Instant::ZERO;
        let id = connect_with(&mut seed_engine, t, 7, FAST_CAPS).unwrap();
        let granted = seed_engine
            .connection(id)
            .unwrap()
            .allowed_fast_sent
            .clone();
        let _ = seed_engine.drain_actions();
        feed(
            &mut seed_engine,
            t,
            id,
            Message::Bitfield(Bitfield::new(4).to_wire()),
        );
        let _ = seed_engine.drain_actions();
        // Request a granted piece while choked → served.
        let ok_block = geometry().block_ref(granted[0], 0);
        feed(&mut seed_engine, t, id, Message::Request(ok_block));
        let acts = seed_engine.drain_actions();
        assert!(acts.contains(&Action::SendBlock {
            conn: id,
            block: ok_block
        }));
        // Request a non-granted piece while choked → explicit reject.
        let other = (0..4).find(|p| !granted.contains(p));
        if let Some(p) = other {
            let bad_block = geometry().block_ref(p, 0);
            feed(&mut seed_engine, t, id, Message::Request(bad_block));
            let acts = seed_engine.drain_actions();
            assert!(acts.iter().any(|a| matches!(
                a,
                Action::Send { msg: Message::RejectRequest(b), .. } if *b == bad_block
            )));
            assert!(!acts.iter().any(|a| matches!(a, Action::SendBlock { .. })));
        }
    }

    #[test]
    fn allowed_fast_grant_bootstraps_choked_download() {
        let mut e = fast_engine(4, Bitfield::new(4));
        let t = Instant::ZERO;
        let id = connect_with(&mut e, t, 7, FAST_CAPS).unwrap();
        feed(&mut e, t, id, Message::HaveAll);
        let _ = e.drain_actions();
        // Still choked, but the remote grants piece 2: requests flow for
        // exactly that piece.
        feed(&mut e, t, id, Message::AllowedFast(2));
        let acts = e.drain_actions();
        let reqs: Vec<BlockRef> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::Request(b),
                    ..
                } => Some(*b),
                _ => None,
            })
            .collect();
        assert!(
            !reqs.is_empty(),
            "choked peer must request allowed-fast piece"
        );
        assert!(
            reqs.iter().all(|b| b.piece == 2),
            "only the granted piece: {reqs:?}"
        );
    }

    #[test]
    fn reject_releases_block_for_rerequest() {
        let mut e = fast_engine(5, Bitfield::new(4));
        let t = Instant::ZERO;
        let id = connect_with(&mut e, t, 7, FAST_CAPS).unwrap();
        feed(&mut e, t, id, Message::HaveAll);
        feed(&mut e, t, id, Message::AllowedFast(1));
        let reqs: Vec<BlockRef> = e
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::Request(b),
                    ..
                } => Some(b),
                _ => None,
            })
            .collect();
        assert!(!reqs.is_empty());
        // The remote rejects the first request; after an unchoke the same
        // block is requested again.
        feed(&mut e, t, id, Message::RejectRequest(reqs[0]));
        feed(&mut e, t, id, Message::Unchoke);
        let again: Vec<BlockRef> = e
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::Request(b),
                    ..
                } => Some(b),
                _ => None,
            })
            .collect();
        assert!(
            again.contains(&reqs[0]),
            "rejected block must be re-requested"
        );
    }

    #[test]
    fn pex_handshake_and_gossip() {
        let cfg = Config {
            pex_enabled: true,
            ..Config::default()
        };
        let mut e = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, 1),
        )
        .config(cfg)
        .ip(IpAddr(50))
        .rng_seed(1)
        .build();
        let caps = PeerCaps {
            fast: false,
            extended: true,
        };
        let t = Instant::ZERO;
        let a = e
            .handle(
                t,
                Input::PeerConnected {
                    ip: IpAddr(60),
                    peer_id: PeerId::new(ClientKind::LibTorrent, 6),
                    initiated_by_us: false,
                    caps,
                },
            )
            .take_accepted()
            .unwrap();
        // The engine advertises ut_pex in its extension handshake.
        let acts = e.drain_actions();
        let ext_hs = acts.iter().find_map(|x| match x {
            Action::Send {
                msg: Message::Extended { ext_id: 0, payload },
                ..
            } => Some(payload.clone()),
            _ => None,
        });
        let hs = bt_wire::extension::ExtendedHandshake::decode(&ext_hs.expect("handshake sent"))
            .unwrap();
        assert_eq!(hs.ut_pex_id(), Some(bt_wire::extension::UT_PEX_LOCAL_ID));
        // The remote replies with its own handshake advertising pex id 1.
        feed(
            &mut e,
            t,
            a,
            Message::Extended {
                ext_id: 0,
                payload: bt_wire::extension::ExtendedHandshake::with_pex().encode(),
            },
        );
        // Connect a second peer, then run a rechoke past the pex interval:
        // the first peer is gossiped the second's address.
        let _b = e
            .handle(
                t,
                Input::PeerConnected {
                    ip: IpAddr(61),
                    peer_id: PeerId::new(ClientKind::Azureus, 7),
                    initiated_by_us: false,
                    caps,
                },
            )
            .take_accepted()
            .unwrap();
        let _ = e.drain_actions();
        e.rechoke(Instant::from_secs(70));
        let acts = e.drain_actions();
        let pex = acts.iter().find_map(|x| match x {
            Action::Send {
                conn,
                msg: Message::Extended { ext_id: 1, payload },
            } if *conn == a => Some(payload.clone()),
            _ => None,
        });
        let pex = bt_wire::extension::PexPayload::decode(&pex.expect("gossip sent")).unwrap();
        assert_eq!(pex.added.len(), 1);
        assert_eq!(pex.added[0].ip, IpAddr(61), "peer A learns about peer B");
        // Receiving gossip about an unknown peer triggers a dial.
        let payload = bt_wire::extension::PexPayload {
            added: vec![bt_wire::tracker::PeerEntry {
                ip: IpAddr(99),
                port: 6881,
            }],
            dropped: vec![],
        }
        .encode();
        feed(&mut e, t, a, Message::Extended { ext_id: 1, payload });
        let acts = e.drain_actions();
        assert!(
            acts.iter()
                .any(|x| matches!(x, Action::Connect { peer } if peer.ip == IpAddr(99))),
            "pex-learned peer must be dialled: {acts:?}"
        );
    }

    #[test]
    fn pex_disabled_ignores_extended_frames() {
        let mut e = leecher(1);
        let t = Instant::ZERO;
        let id = connect_peer(&mut e, t, 7, &[0]);
        let _ = e.drain_actions();
        feed(
            &mut e,
            t,
            id,
            Message::Extended {
                ext_id: 1,
                payload: bt_wire::extension::PexPayload {
                    added: vec![bt_wire::tracker::PeerEntry {
                        ip: IpAddr(99),
                        port: 6881,
                    }],
                    dropped: vec![],
                }
                .encode(),
            },
        );
        assert!(
            e.drain_actions().is_empty(),
            "un-negotiated extension frames are ignored"
        );
    }

    #[test]
    fn super_seed_reveals_one_piece_at_a_time() {
        let cfg = Config {
            super_seed: true,
            ..Config::default()
        };
        let mut e = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::SuperSeeder, 1),
        )
        .config(cfg)
        .ip(IpAddr(1))
        .initial_pieces(Bitfield::full(4))
        .rng_seed(1)
        .build();
        let t = Instant::ZERO;
        let a = e
            .handle(
                t,
                Input::PeerConnected {
                    ip: IpAddr(2),
                    peer_id: PeerId::new(ClientKind::Azureus, 2),
                    initiated_by_us: false,
                    caps: PeerCaps::default(),
                },
            )
            .take_accepted()
            .unwrap();
        let acts = e.drain_actions();
        // An empty bitfield (not the real one), plus exactly one Have.
        let haves: Vec<u32> = acts
            .iter()
            .filter_map(|x| match x {
                Action::Send {
                    msg: Message::Have(p),
                    ..
                } => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(haves.len(), 1, "exactly one reveal on connect: {acts:?}");
        let bitfields: Vec<&Vec<u8>> = acts
            .iter()
            .filter_map(|x| match x {
                Action::Send {
                    msg: Message::Bitfield(b),
                    ..
                } => Some(b),
                _ => None,
            })
            .collect();
        assert!(
            bitfields.iter().all(|b| b.iter().all(|byte| *byte == 0)),
            "super seed must hide its pieces"
        );
        // A second peer is offered a *different* piece (least-revealed).
        let b = e
            .handle(
                t,
                Input::PeerConnected {
                    ip: IpAddr(3),
                    peer_id: PeerId::new(ClientKind::BitComet, 3),
                    initiated_by_us: false,
                    caps: PeerCaps::default(),
                },
            )
            .take_accepted()
            .unwrap();
        let haves2: Vec<u32> = e
            .drain_actions()
            .iter()
            .filter_map(|x| match x {
                Action::Send {
                    conn,
                    msg: Message::Have(p),
                } if *conn == b => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(haves2.len(), 1);
        assert_ne!(haves2[0], haves[0], "second peer gets a different piece");
        // When peer A confirms the revealed piece, the next one is offered.
        feed(&mut e, t, a, Message::Bitfield(Bitfield::new(4).to_wire()));
        let _ = e.drain_actions();
        feed(&mut e, t, a, Message::Have(haves[0]));
        let haves3: Vec<u32> = e
            .drain_actions()
            .iter()
            .filter_map(|x| match x {
                Action::Send {
                    conn,
                    msg: Message::Have(p),
                } if *conn == a => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(haves3.len(), 1, "confirmation triggers the next reveal");
        assert_ne!(haves3[0], haves[0]);
    }

    #[test]
    fn recorder_captures_session() {
        use bt_instrument::trace::TraceMeta;
        let meta = TraceMeta {
            torrent: "unit".into(),
            torrent_id: 0,
            num_pieces: 4,
            num_blocks: 8,
            initial_seeds: 1,
            initial_leechers: 1,
            session_end: Instant::from_secs(100),
            seed_at: None,
        };
        let mut e = EngineBuilder::new(
            geometry(),
            [9u8; 20],
            PeerId::new(ClientKind::Mainline402, 1),
        )
        .ip(IpAddr(101))
        .rng_seed(1)
        .recorder(meta)
        .build();
        let t = Instant::from_secs(1);
        let id = connect_peer(&mut e, t, 7, &[0, 1, 2, 3]);
        feed(&mut e, t, id, Message::Unchoke);
        let trace = e.take_trace().unwrap();
        assert!(trace
            .iter()
            .any(|(_, ev)| matches!(ev, TraceEvent::PeerJoined { peer, .. } if *peer == id)));
        assert!(trace.iter().any(|(_, ev)| matches!(
            ev,
            TraceEvent::LocalInterest {
                interested: true,
                ..
            }
        )));
    }

    /// Metrics attachment must observe inputs, actions and protocol
    /// errors without changing engine behaviour: an instrumented engine
    /// and a bare one fed identical inputs emit identical actions.
    #[test]
    fn metrics_count_without_perturbing() {
        let registry = bt_obs::Registry::new_manual();
        let metrics = crate::metrics::EngineMetrics::register(&registry);
        let build = || {
            EngineBuilder::new(
                geometry(),
                [9u8; 20],
                PeerId::new(ClientKind::Mainline402, 7),
            )
            .ip(IpAddr(107))
            .rng_seed(7)
            .build()
        };
        let mut bare = build();
        let mut instrumented = build();
        instrumented.set_metrics(metrics);

        let t0 = Instant::ZERO;
        let peer_id = PeerId::new(ClientKind::Azureus, 9);
        let inputs = vec![
            (t0, Input::Start),
            (
                t0,
                Input::PeerConnected {
                    ip: IpAddr(9),
                    peer_id,
                    initiated_by_us: false,
                    caps: PeerCaps::default(),
                },
            ),
            (
                t0,
                Input::Message {
                    conn: 0,
                    msg: Message::Bitfield(Bitfield::full(4).to_wire()),
                },
            ),
            (
                t0,
                Input::Message {
                    conn: 0,
                    msg: Message::Unchoke,
                },
            ),
            // Late enough to fire the armed rechoke round.
            (Instant::from_secs(11), Input::Tick),
            // Protocol violation: off-range `have`.
            (
                Instant::from_secs(11),
                Input::Message {
                    conn: 0,
                    msg: Message::Have(999),
                },
            ),
        ];
        for (t, input) in inputs {
            let a = bare.handle(t, input.clone()).take();
            let b = instrumented.handle(t, input).take();
            assert_eq!(a, b, "metrics changed engine behaviour");
        }

        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.inputs.start", ""), Some(1));
        assert_eq!(snap.counter("core.inputs.message", ""), Some(3));
        assert_eq!(snap.counter("core.inputs.peer_connected", ""), Some(1));
        assert_eq!(snap.counter("core.errors.piece_out_of_range", ""), Some(1));
        // The violation forced a disconnect action.
        assert_eq!(snap.counter("core.actions.disconnect", ""), Some(1));
        // Start armed the rechoke timer; actions were counted by variant.
        assert!(snap.counter("core.actions.set_timer", "").unwrap() >= 1);
        assert!(snap.counter("core.actions.send", "").unwrap() >= 1);
        // The choke round on Tick observed a (zero-width, virtual-clock)
        // latency sample.
        assert!(snap.histogram("core.choke_round_us", "").unwrap().count >= 1);
    }
}
