//! Content access for serving and verifying pieces.
//!
//! Two fidelity levels, selected per simulation:
//!
//! * [`DataMode::Real`] — piece messages carry real bytes generated from
//!   the torrent's deterministic content; receivers buffer blocks and
//!   verify SHA-1 piece hashes. Used by examples, integration tests, and
//!   fault-injection scenarios (corrupted blocks must be re-downloaded).
//! * [`DataMode::Virtual`] — piece messages carry no payload (lengths are
//!   still accounted by the bandwidth model) and verification is assumed
//!   to pass. Used for full-scale Table I sweeps where materialising
//!   hundreds of megabytes per peer would dominate runtime without
//!   changing any protocol dynamics.
//!
//! DESIGN.md records this substitution; both modes drive the identical
//! engine code path except for the buffer/verify step.

use bt_wire::metainfo::SyntheticContent;
use bt_wire::sha1;
use bytes::Bytes;
use std::sync::Arc;

/// How piece data is materialised in a simulation.
#[derive(Clone)]
pub enum DataMode {
    /// Real bytes with hash verification.
    Real(Arc<SyntheticContent>),
    /// Metadata-only transfers; verification trusted.
    Virtual,
}

impl std::fmt::Debug for DataMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataMode::Real(_) => write!(f, "DataMode::Real"),
            DataMode::Virtual => write!(f, "DataMode::Virtual"),
        }
    }
}

impl DataMode {
    /// Bytes for a block being served. Empty in virtual mode.
    pub fn block_bytes(&self, piece: u32, block: u32) -> Bytes {
        match self {
            DataMode::Real(content) => Bytes::from(content.block_bytes(piece, block)),
            DataMode::Virtual => Bytes::new(),
        }
    }

    /// Verify an assembled piece against the torrent's hash. In virtual
    /// mode this always succeeds (no data to check).
    pub fn verify_piece(&self, piece: u32, data: &[u8]) -> bool {
        match self {
            DataMode::Real(content) => {
                sha1::sha1(data) == content.metainfo.piece_hashes[piece as usize]
            }
            DataMode::Virtual => true,
        }
    }

    /// True when payloads are materialised.
    pub fn is_real(&self) -> bool {
        matches!(self, DataMode::Real(_))
    }
}

/// Buffer assembling the blocks of one piece (real-data mode only).
#[derive(Debug, Default)]
pub struct PieceBuffer {
    blocks: Vec<Option<Bytes>>,
}

impl PieceBuffer {
    /// A buffer for a piece of `num_blocks` blocks.
    pub fn new(num_blocks: u32) -> PieceBuffer {
        PieceBuffer {
            blocks: vec![None; num_blocks as usize],
        }
    }

    /// Store one block's payload. Later arrivals overwrite (end-game
    /// duplicates are byte-identical unless corrupted in flight).
    pub fn store(&mut self, block_index: u32, data: Bytes) {
        if let Some(slot) = self.blocks.get_mut(block_index as usize) {
            *slot = Some(data);
        }
    }

    /// Concatenate all blocks if every one is present.
    pub fn assemble(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        for b in &self.blocks {
            out.extend_from_slice(b.as_ref()?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::metainfo::BLOCK_LEN;

    fn content() -> Arc<SyntheticContent> {
        Arc::new(SyntheticContent::generate(
            "c",
            11,
            u64::from(4 * BLOCK_LEN),
            2 * BLOCK_LEN,
        ))
    }

    #[test]
    fn real_mode_roundtrip_verifies() {
        let c = content();
        let mode = DataMode::Real(c.clone());
        let mut buf = PieceBuffer::new(2);
        buf.store(0, mode.block_bytes(0, 0));
        assert!(
            buf.assemble().is_none(),
            "incomplete piece does not assemble"
        );
        buf.store(1, mode.block_bytes(0, 1));
        let piece = buf.assemble().unwrap();
        assert!(mode.verify_piece(0, &piece));
    }

    #[test]
    fn corruption_fails_verification() {
        let c = content();
        let mode = DataMode::Real(c);
        let mut buf = PieceBuffer::new(2);
        let mut corrupt = mode.block_bytes(0, 0).to_vec();
        corrupt[0] ^= 0xFF;
        buf.store(0, Bytes::from(corrupt));
        buf.store(1, mode.block_bytes(0, 1));
        let piece = buf.assemble().unwrap();
        assert!(!mode.verify_piece(0, &piece));
    }

    #[test]
    fn virtual_mode_trusts_everything() {
        let mode = DataMode::Virtual;
        assert!(mode.block_bytes(5, 3).is_empty());
        assert!(mode.verify_piece(5, &[]));
        assert!(!mode.is_real());
    }
}
