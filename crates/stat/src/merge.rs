//! `btstat merge`: commutative fleet-wide aggregation.
//!
//! A [`FleetReport`] folds N runs into one document: the run manifests
//! sorted by `(key, digest)`, one merged [`MetricsDoc`] (counters and
//! gauges summed, histograms bucket-merged so fleet-wide p50/p95/p99
//! are exact, not averages of averages), one merged [`ProfileDoc`]
//! call tree, the per-run series kept side by side for overlay, and
//! the paper-claim verdicts re-asserted over the merged data.
//!
//! Order insensitivity is structural, not incidental: runs are sorted
//! on ingest and every merged structure is a `BTreeMap` fed by
//! commutative `+`, so `to_json()` / `to_html()` are byte-identical
//! for any permutation of the same inputs (pinned by a proptest in
//! `tests/fleet_stat.rs`).

use std::collections::BTreeMap;

use bt_analysis::fleet::fleet_verdicts;
use bt_analysis::live::Thresholds;
use bt_obs::schema::{MetricsDoc, ProfileDoc, SeriesDoc};

use crate::artifacts::{series_by_run, RunArtifacts};

/// A merged fleet of runs, ready to render.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Ingested runs, sorted by `(key, digest)`.
    pub runs: Vec<RunArtifacts>,
    /// Fleet-merged registry snapshot.
    pub metrics: MetricsDoc,
    /// Fleet-merged span profile.
    pub profile: ProfileDoc,
    /// Per-run series, keyed by run key, for overlaying.
    pub series: BTreeMap<String, SeriesDoc>,
}

impl FleetReport {
    /// Build a report from run artifacts, in any order.
    pub fn merge(mut runs: Vec<RunArtifacts>) -> FleetReport {
        runs.sort_by(|a, b| (a.key(), &a.digest).cmp(&(b.key(), &b.digest)));
        let mut metrics = MetricsDoc::default();
        let mut profile = ProfileDoc::default();
        for run in &runs {
            if let Some(m) = &run.metrics {
                metrics.merge(m);
            }
            if let Some(p) = &run.profile {
                profile.merge(p);
            }
        }
        let series = series_by_run(&runs);
        FleetReport {
            runs,
            metrics,
            profile,
            series,
        }
    }

    /// Paper-claim verdicts over the merged fleet.
    pub fn verdicts(&self) -> Vec<bt_analysis::FleetVerdict> {
        fleet_verdicts(&self.metrics, &self.series, &Thresholds::default())
    }

    /// True when every fleet verdict passed.
    pub fn healthy(&self) -> bool {
        self.verdicts().iter().all(|v| v.healthy)
    }

    /// The fleet report as one JSON document. Deterministic: the same
    /// set of runs yields the same bytes in any merge order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"btstat-fleet-v1\",\"runs\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&run.summary_json());
        }
        out.push_str("],\"metrics\":");
        out.push_str(&self.metrics.to_json());
        out.push_str(",\"profile\":");
        out.push_str(&self.profile.to_json());
        out.push_str(",\"series\":{");
        for (i, (key, doc)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":"));
            out.push_str(&doc.to_json());
        }
        out.push_str("},\"verdicts\":[");
        for (i, v) in self.verdicts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_json());
        }
        out.push_str("],\"healthy\":");
        out.push_str(if self.healthy() { "true" } else { "false" });
        out.push('}');
        out
    }

    /// The fleet report as a self-contained static HTML page: verdict
    /// banner, run table, top spans, and one sparkline per (run,
    /// series) drawn by the observatory's canvas renderer — no server,
    /// no assets, just the file.
    pub fn to_html(&self) -> String {
        let mut html = String::with_capacity(8192);
        html.push_str(FLEET_HTML_HEAD);

        let verdicts = self.verdicts();
        let healthy = verdicts.iter().all(|v| v.healthy);
        html.push_str(&format!(
            "<div id=\"health\"{}>",
            if healthy { "" } else { " class=\"bad\"" }
        ));
        for v in &verdicts {
            let (class, word) = if v.healthy {
                ("ok", "ok")
            } else {
                ("warn", "WARN")
            };
            let value = v
                .value
                .map(|x| format!("{x:.3}"))
                .unwrap_or_else(|| "n/a".to_string());
            html.push_str(&format!(
                "<span class=\"mon\" title=\"{}\">{} <span class=\"{}\">{} {}</span></span>",
                escape_html(&v.detail),
                v.name,
                class,
                value,
                word
            ));
        }
        html.push_str(&format!(
            "<span class=\"mon\">({} runs)</span></div>\n",
            self.runs.len()
        ));

        html.push_str(
            "<table><tr><th>run</th><th>peers</th><th>pieces</th><th>events</th>\
             <th>completed</th><th>digest</th></tr>\n",
        );
        for run in &self.runs {
            html.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td><code>{}</code></td></tr>\n",
                escape_html(&run.key()),
                run.peers,
                run.pieces,
                run.events_processed,
                run.completed_peers,
                escape_html(&run.digest)
            ));
        }
        html.push_str("</table>\n");

        let mut spans: Vec<_> = self.profile.flat().into_iter().collect();
        spans.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(&b.0)));
        if !spans.is_empty() {
            html.push_str(
                "<h2>top spans (fleet self time)</h2><table>\
                 <tr><th>span</th><th>count</th><th>self µs</th><th>total µs</th></tr>\n",
            );
            for (name, stat) in spans.iter().take(12) {
                html.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                    escape_html(name),
                    stat.count,
                    stat.self_us,
                    stat.total_us
                ));
            }
            html.push_str("</table>\n");
        }

        html.push_str("<h2>series overlay</h2><div id=\"charts\"></div>\n");
        // Embed the per-run series as one JSON blob the inline script
        // renders; the blob is the deterministic part of this page.
        html.push_str("<script>const FLEET={");
        for (i, (key, doc)) in self.series.iter().enumerate() {
            if i > 0 {
                html.push(',');
            }
            html.push_str(&format!("\"{key}\":"));
            html.push_str(&doc.to_json());
        }
        html.push_str("};\n");
        html.push_str(FLEET_HTML_SCRIPT);
        html
    }
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Static page head: same palette and layout as the live observatory
/// dashboard (`ObsServer`'s `/`), minus the polling.
const FLEET_HTML_HEAD: &str = r##"<!doctype html>
<html><head><meta charset="utf-8"><title>btstat fleet report</title>
<style>
 body{font:13px/1.4 monospace;background:#10141a;color:#cdd6e0;margin:16px}
 h1{font-size:16px;margin:0 0 8px}
 h2{font-size:14px;margin:16px 0 6px;color:#8fa3bd}
 #health{margin:6px 0 14px;padding:6px 10px;border-radius:4px;background:#1c2430}
 #health.bad{background:#3a1d1d}
 .mon{margin-right:14px}
 .ok{color:#7fd487}.warn{color:#ff8f8f;font-weight:bold}
 table{border-collapse:collapse;margin:4px 0}
 th,td{padding:2px 10px 2px 0;text-align:left;border-bottom:1px solid #1c2430}
 th{color:#8fa3bd}
 #charts{display:flex;flex-wrap:wrap;gap:12px}
 .chart{background:#161c26;border-radius:4px;padding:8px}
 .chart .name{color:#8fa3bd;margin-bottom:2px;max-width:220px;
              overflow:hidden;text-overflow:ellipsis;white-space:nowrap}
 .chart .val{color:#e8eef5}
 canvas{display:block;background:#10141a;border-radius:2px}
</style></head><body>
<h1>btstat fleet report</h1>
"##;

/// Static renderer: the observatory's `spark()` canvas sparkline, fed
/// from the embedded `FLEET` blob instead of a polled `/series`.
const FLEET_HTML_SCRIPT: &str = r##"function spark(canvas,pts){
  const ctx=canvas.getContext("2d"),W=canvas.width,H=canvas.height;
  ctx.clearRect(0,0,W,H);
  if(pts.length<2)return;
  let lo=Infinity,hi=-Infinity;
  for(const[,v]of pts){if(v<lo)lo=v;if(v>hi)hi=v;}
  if(hi===lo){hi+=1;lo-=1;}
  const t0=pts[0][0],t1=pts[pts.length-1][0]||1;
  ctx.strokeStyle="#5da9e9";ctx.lineWidth=1.5;ctx.beginPath();
  pts.forEach(([t,v],i)=>{
    const x=(t-t0)/(t1-t0||1)*(W-4)+2;
    const y=H-2-(v-lo)/(hi-lo)*(H-4);
    i?ctx.lineTo(x,y):ctx.moveTo(x,y);
  });
  ctx.stroke();
}
function fmt(v){return Math.abs(v)>=1e6?v.toExponential(2):
  (Number.isInteger(v)?v:v.toFixed(3));}
const charts=document.getElementById("charts");
for(const[run,doc]of Object.entries(FLEET)){
  for(const s of doc.series){
    const el=document.createElement("div");el.className="chart";
    const label=run+" · "+s.name;
    el.innerHTML=`<div class="name" title="${label}">${label}</div>`+
      `<canvas width="220" height="56"></canvas><div class="val"></div>`;
    charts.appendChild(el);
    spark(el.querySelector("canvas"),s.points);
    const last=s.points[s.points.length-1];
    el.querySelector(".val").textContent=last?fmt(last[1]):"no data";
  }
}
</script></body></html>
"##;

#[cfg(test)]
mod tests {
    use super::*;
    use bt_obs::schema::{HistogramDoc, SeriesEntry};

    pub(crate) fn run(scenario: &str, seed: u64, bound: u64, n: u64) -> RunArtifacts {
        let mut metrics = MetricsDoc {
            at_micros: seed,
            ..MetricsDoc::default()
        };
        metrics.counters.insert("sim.events".to_string(), n);
        metrics.gauges.insert("live.starved_peers".to_string(), 0);
        metrics.histograms.insert(
            "core.choke_round_us".to_string(),
            HistogramDoc {
                count: n,
                sum: bound * n,
                buckets: vec![(bound, n)],
                overflow: 0,
            },
        );
        let mut series = SeriesDoc::default();
        series.series.insert(
            "live.entropy".to_string(),
            SeriesEntry {
                stride: 1,
                points: vec![(0, 0.5), (10, 0.9)],
            },
        );
        RunArtifacts {
            scenario: scenario.to_string(),
            seed,
            peers: 10,
            pieces: 8,
            events_processed: n,
            completed_peers: 10,
            digest: format!("{:016x}", seed * 7),
            metrics: Some(metrics),
            series: Some(series),
            profile: None,
            trace_jsonl: None,
        }
    }

    #[test]
    fn merge_is_order_insensitive() {
        let a = run("flash", 1, 10, 90);
        let b = run("flash", 2, 100_000, 10);
        let c = run("crowd", 3, 1_000, 5);
        let fwd = FleetReport::merge(vec![a.clone(), b.clone(), c.clone()]);
        let rev = FleetReport::merge(vec![c, b, a]);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert_eq!(fwd.to_html(), rev.to_html());
        // Exact fleet quantiles, not an average of per-run quantiles.
        let h = &fwd.metrics.histograms["core.choke_round_us"];
        assert_eq!(h.count, 105);
        assert_eq!(h.quantile(95, 100), 100_000);
    }

    #[test]
    fn report_json_parses_and_carries_verdicts() {
        let report = FleetReport::merge(vec![run("flash", 1, 10, 4), run("flash", 2, 10, 6)]);
        let parsed = bt_obs::parse_json(&report.to_json()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(bt_obs::JsonValue::as_str),
            Some("btstat-fleet-v1")
        );
        assert_eq!(parsed.get("runs").unwrap().as_array().unwrap().len(), 2);
        let verdicts = parsed.get("verdicts").unwrap().as_array().unwrap();
        assert_eq!(verdicts.len(), 3);
        assert!(report.healthy());
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("sim.events"))
                .and_then(bt_obs::JsonValue::as_u64),
            Some(10)
        );
    }

    #[test]
    fn html_is_self_contained() {
        let report = FleetReport::merge(vec![run("flash", 1, 10, 4)]);
        let html = report.to_html();
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("function spark"));
        assert!(html.contains("flash-s1"));
        assert!(html.contains("live.entropy"));
        assert!(!html.contains("fetch("), "static page must not poll");
    }
}
