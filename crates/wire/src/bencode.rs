//! Bencoding: the serialisation format used by `.torrent` metainfo files
//! and tracker responses (BEP 3).
//!
//! Four kinds of value exist: byte strings (`4:spam`), integers (`i42e`),
//! lists (`l...e`) and dictionaries (`d...e`, keys sorted as raw byte
//! strings). This module provides a [`Value`] tree, a canonical encoder and
//! a strict decoder. The decoder rejects the classic laxities (leading
//! zeros, `i-0e`, unsorted dictionary keys) so that encode∘decode is the
//! identity on canonical input — which is what the SHA-1 info-hash needs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed bencoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A byte string. Not required to be UTF-8.
    Bytes(Vec<u8>),
    /// A signed integer (arbitrary precision is not needed for BitTorrent).
    Int(i64),
    /// A list of values.
    List(Vec<Value>),
    /// A dictionary with byte-string keys, kept sorted.
    Dict(BTreeMap<Vec<u8>, Value>),
}

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum BencodeError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A byte that cannot start or continue a value at this position.
    UnexpectedByte { pos: usize, byte: u8 },
    /// Integer with a leading zero, a bare `-`, or `-0`.
    MalformedInt { pos: usize },
    /// Integer did not fit in `i64`.
    IntOverflow { pos: usize },
    /// Dictionary keys out of order or duplicated.
    UnsortedKeys { pos: usize },
    /// Trailing bytes after the top-level value.
    TrailingData { pos: usize },
    /// String length prefix overflowed or exceeded remaining input.
    BadLength { pos: usize },
}

impl fmt::Display for BencodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BencodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            BencodeError::UnexpectedByte { pos, byte } => {
                write!(f, "unexpected byte 0x{byte:02x} at {pos}")
            }
            BencodeError::MalformedInt { pos } => write!(f, "malformed integer at {pos}"),
            BencodeError::IntOverflow { pos } => write!(f, "integer overflow at {pos}"),
            BencodeError::UnsortedKeys { pos } => {
                write!(f, "dictionary keys unsorted or duplicated at {pos}")
            }
            BencodeError::TrailingData { pos } => write!(f, "trailing data at {pos}"),
            BencodeError::BadLength { pos } => write!(f, "bad string length at {pos}"),
        }
    }
}

impl std::error::Error for BencodeError {}

impl Value {
    /// Convenience constructor for a UTF-8 string value.
    pub fn str(s: &str) -> Value {
        Value::Bytes(s.as_bytes().to_vec())
    }

    /// Borrow the byte string, if this is one.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow as UTF-8 text, if this is a valid UTF-8 byte string.
    pub fn as_str(&self) -> Option<&str> {
        self.as_bytes().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow the list, if this is one.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow the dictionary, if this is one.
    pub fn as_dict(&self) -> Option<&BTreeMap<Vec<u8>, Value>> {
        match self {
            Value::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// Look up `key` in a dictionary value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_dict().and_then(|d| d.get(key.as_bytes()))
    }

    /// Encode canonically into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bytes(b) => {
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.push(b':');
                out.extend_from_slice(b);
            }
            Value::Int(i) => {
                out.push(b'i');
                out.extend_from_slice(i.to_string().as_bytes());
                out.push(b'e');
            }
            Value::List(items) => {
                out.push(b'l');
                for item in items {
                    item.encode_into(out);
                }
                out.push(b'e');
            }
            Value::Dict(map) => {
                out.push(b'd');
                for (k, v) in map {
                    out.extend_from_slice(k.len().to_string().as_bytes());
                    out.push(b':');
                    out.extend_from_slice(k);
                    v.encode_into(out);
                }
                out.push(b'e');
            }
        }
    }

    /// Encode canonically to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Decode a single bencoded value; the whole input must be consumed.
///
/// ```
/// use bt_wire::bencode::{decode, Value};
/// assert_eq!(decode(b"i42e").unwrap(), Value::Int(42));
/// let d = decode(b"d3:cow3:mooe").unwrap();
/// assert_eq!(d.get("cow").and_then(Value::as_str), Some("moo"));
/// assert!(decode(b"i-0e").is_err()); // canonical form enforced
/// ```
pub fn decode(input: &[u8]) -> Result<Value, BencodeError> {
    let mut parser = Parser { input, pos: 0 };
    let v = parser.parse_value()?;
    if parser.pos != input.len() {
        return Err(BencodeError::TrailingData { pos: parser.pos });
    }
    Ok(v)
}

/// Decode a value from a prefix of `input`, returning the value and the
/// number of bytes consumed. Used by stream parsers.
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), BencodeError> {
    let mut parser = Parser { input, pos: 0 };
    let v = parser.parse_value()?;
    Ok((v, parser.pos))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Result<u8, BencodeError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or(BencodeError::UnexpectedEof)
    }

    fn bump(&mut self) -> Result<u8, BencodeError> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn parse_value(&mut self) -> Result<Value, BencodeError> {
        match self.peek()? {
            b'i' => self.parse_int(),
            b'l' => self.parse_list(),
            b'd' => self.parse_dict(),
            b'0'..=b'9' => Ok(Value::Bytes(self.parse_bytes()?)),
            byte => Err(BencodeError::UnexpectedByte {
                pos: self.pos,
                byte,
            }),
        }
    }

    fn parse_int(&mut self) -> Result<Value, BencodeError> {
        let start = self.pos;
        self.bump()?; // 'i'
        let negative = if self.peek()? == b'-' {
            self.bump()?;
            true
        } else {
            false
        };
        let digits_start = self.pos;
        // Accumulate in i128 so i64::MIN (whose magnitude exceeds
        // i64::MAX) parses; range-check at the end.
        let mut value: i128 = 0;
        loop {
            match self.bump()? {
                b'e' => break,
                d @ b'0'..=b'9' => {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i128::from(d - b'0')))
                        .ok_or(BencodeError::IntOverflow { pos: start })?;
                }
                byte => {
                    return Err(BencodeError::UnexpectedByte {
                        pos: self.pos - 1,
                        byte,
                    })
                }
            }
        }
        let digits = &self.input[digits_start..self.pos - 1];
        if digits.is_empty() {
            return Err(BencodeError::MalformedInt { pos: start });
        }
        if digits.len() > 1 && digits[0] == b'0' {
            return Err(BencodeError::MalformedInt { pos: start });
        }
        if negative && value == 0 {
            return Err(BencodeError::MalformedInt { pos: start });
        }
        let signed = if negative { -value } else { value };
        let value = i64::try_from(signed).map_err(|_| BencodeError::IntOverflow { pos: start })?;
        Ok(Value::Int(value))
    }

    fn parse_bytes(&mut self) -> Result<Vec<u8>, BencodeError> {
        let start = self.pos;
        let mut len: usize = 0;
        let mut digit_count = 0usize;
        loop {
            match self.bump()? {
                b':' => break,
                d @ b'0'..=b'9' => {
                    digit_count += 1;
                    len = len
                        .checked_mul(10)
                        .and_then(|l| l.checked_add((d - b'0') as usize))
                        .ok_or(BencodeError::BadLength { pos: start })?;
                }
                byte => {
                    return Err(BencodeError::UnexpectedByte {
                        pos: self.pos - 1,
                        byte,
                    })
                }
            }
        }
        if digit_count == 0 || (digit_count > 1 && self.input[start] == b'0') {
            return Err(BencodeError::BadLength { pos: start });
        }
        if self.pos + len > self.input.len() {
            return Err(BencodeError::BadLength { pos: start });
        }
        let bytes = self.input[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(bytes)
    }

    fn parse_list(&mut self) -> Result<Value, BencodeError> {
        self.bump()?; // 'l'
        let mut items = Vec::new();
        while self.peek()? != b'e' {
            items.push(self.parse_value()?);
        }
        self.bump()?; // 'e'
        Ok(Value::List(items))
    }

    fn parse_dict(&mut self) -> Result<Value, BencodeError> {
        self.bump()?; // 'd'
        let mut map = BTreeMap::new();
        let mut last_key: Option<Vec<u8>> = None;
        while self.peek()? != b'e' {
            let key_pos = self.pos;
            let key = self.parse_bytes()?;
            if let Some(prev) = &last_key {
                if *prev >= key {
                    return Err(BencodeError::UnsortedKeys { pos: key_pos });
                }
            }
            let value = self.parse_value()?;
            last_key = Some(key.clone());
            map.insert(key, value);
        }
        self.bump()?; // 'e'
        Ok(Value::Dict(map))
    }
}

/// Builder for bencoded dictionaries with `&str` keys.
#[derive(Debug, Default, Clone)]
pub struct DictBuilder {
    map: BTreeMap<Vec<u8>, Value>,
}

impl DictBuilder {
    /// Start an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `value` under `key`, replacing any previous entry.
    pub fn insert(mut self, key: &str, value: Value) -> Self {
        self.map.insert(key.as_bytes().to_vec(), value);
        self
    }

    /// Insert an integer.
    pub fn int(self, key: &str, value: i64) -> Self {
        self.insert(key, Value::Int(value))
    }

    /// Insert a UTF-8 string.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.insert(key, Value::str(value))
    }

    /// Insert a raw byte string.
    pub fn bytes(self, key: &str, value: Vec<u8>) -> Self {
        self.insert(key, Value::Bytes(value))
    }

    /// Finish, producing the dictionary value.
    pub fn build(self) -> Value {
        Value::Dict(self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let enc = v.encode();
        let dec = decode(&enc).expect("decode");
        assert_eq!(&dec, v);
    }

    #[test]
    fn int_roundtrip() {
        for i in [0i64, 1, -1, 42, i64::MAX, i64::MIN + 1] {
            roundtrip(&Value::Int(i));
        }
    }

    #[test]
    fn decodes_spec_examples() {
        assert_eq!(decode(b"4:spam").unwrap(), Value::str("spam"));
        assert_eq!(decode(b"i3e").unwrap(), Value::Int(3));
        assert_eq!(decode(b"i-3e").unwrap(), Value::Int(-3));
        assert_eq!(
            decode(b"l4:spam4:eggse").unwrap(),
            Value::List(vec![Value::str("spam"), Value::str("eggs")])
        );
        let d = decode(b"d3:cow3:moo4:spam4:eggse").unwrap();
        assert_eq!(d.get("cow"), Some(&Value::str("moo")));
        assert_eq!(d.get("spam"), Some(&Value::str("eggs")));
    }

    #[test]
    fn rejects_minus_zero_and_leading_zero() {
        assert!(matches!(
            decode(b"i-0e"),
            Err(BencodeError::MalformedInt { .. })
        ));
        assert!(matches!(
            decode(b"i03e"),
            Err(BencodeError::MalformedInt { .. })
        ));
        assert!(matches!(
            decode(b"i e"),
            Err(BencodeError::UnexpectedByte { .. })
        ));
        assert!(matches!(
            decode(b"ie"),
            Err(BencodeError::MalformedInt { .. })
        ));
    }

    #[test]
    fn rejects_unsorted_and_duplicate_keys() {
        assert!(matches!(
            decode(b"d4:spam4:eggs3:cow3:mooe"),
            Err(BencodeError::UnsortedKeys { .. })
        ));
        assert!(matches!(
            decode(b"d3:cow3:moo3:cow3:mooe"),
            Err(BencodeError::UnsortedKeys { .. })
        ));
    }

    #[test]
    fn rejects_trailing_data() {
        assert!(matches!(
            decode(b"i3ei4e"),
            Err(BencodeError::TrailingData { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        assert!(matches!(
            decode(b"4:spa"),
            Err(BencodeError::BadLength { .. })
        ));
        assert!(matches!(
            decode(b"l4:spam"),
            Err(BencodeError::UnexpectedEof)
        ));
        assert!(matches!(decode(b"i42"), Err(BencodeError::UnexpectedEof)));
    }

    #[test]
    fn rejects_string_length_leading_zero() {
        assert!(matches!(
            decode(b"04:spam"),
            Err(BencodeError::BadLength { .. })
        ));
        // A lone "0:" (empty string) is fine.
        assert_eq!(decode(b"0:").unwrap(), Value::Bytes(vec![]));
    }

    #[test]
    fn nested_structures() {
        let v = Value::Dict(
            [(
                b"info".to_vec(),
                Value::List(vec![Value::Int(1), Value::Bytes(vec![0, 255, 7])]),
            )]
            .into_iter()
            .collect(),
        );
        roundtrip(&v);
    }

    #[test]
    fn dict_builder_orders_keys() {
        let v = DictBuilder::new().int("zeta", 1).str("alpha", "x").build();
        assert_eq!(v.encode(), b"d5:alpha1:x4:zetai1ee".to_vec());
    }

    #[test]
    fn decode_prefix_reports_consumed() {
        let (v, used) = decode_prefix(b"i3eXYZ").unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(used, 3);
    }

    #[test]
    fn binary_safe_strings() {
        let raw: Vec<u8> = (0u8..=255).collect();
        roundtrip(&Value::Bytes(raw));
    }
}
