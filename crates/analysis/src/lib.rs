//! # bt-analysis — the paper's analysis pipeline
//!
//! Turns instrumented-peer traces (`bt-instrument`) into the metrics of
//! every figure in the paper:
//!
//! | Module | Figures |
//! |---|---|
//! | [`entropy`] | 1 (interest-ratio percentiles) |
//! | [`replication`] | 2–6 (copies, rarest set, peer set over time) |
//! | [`interarrival`] | 7, 8 (piece/block interarrival CDFs) |
//! | [`fairness`] | 9, 11 (upload/download contribution by peer sets) |
//! | [`unchoke`] | 10 (unchokes vs. interested time) |
//! | [`transient`] | §IV-A.2's transient-duration and seed-rate claims |
//! | [`live`] | the same invariants, watched online while a swarm runs |
//!
//! [`stats`] and [`intervals`] provide the underlying CDF/percentile and
//! boolean-interval machinery.

#![warn(missing_docs)]

pub mod capacity;
pub mod clients;
pub mod entropy;
pub mod equilibrium;
pub mod explain;
pub mod fairness;
pub mod fleet;
pub mod interarrival;
pub mod intervals;
pub mod live;
pub mod messages;
pub mod replication;
pub mod stats;
pub mod summary;
pub mod transient;
pub mod unchoke;

pub use capacity::CapacityCurve;
pub use clients::{client_breakdown, ClientAggregate, ClientBreakdown};
pub use entropy::{entropy, EntropySummary, PeerRatios, MIN_MEMBERSHIP_SECS};
pub use equilibrium::{equilibrium, EquilibriumSummary};
pub use explain::explain_unhealthy;
pub use fairness::{fairness, FairnessSummary, StateWindow, NUM_SETS, SET_SIZE};
pub use fleet::{fleet_verdicts, FleetVerdict};
pub use interarrival::{InterarrivalAnalysis, SUBSET};
pub use live::{
    availability_entropy, HealthMonitor, HealthReport, LiveSample, MonitorVerdict, Thresholds,
};
pub use messages::{KindCount, MessageStats};
pub use replication::{ReplicationPoint, ReplicationSeries};
pub use stats::{mean, percentiles, Cdf, Percentiles};
pub use summary::SessionSummary;
pub use transient::TransientSummary;
pub use unchoke::{pearson, unchoke_correlation, UnchokeCorrelation, UnchokePoint};
