//! Piece and block interarrival times (figures 7 and 8).
//!
//! §IV-A.3: the paper plots the CDF of interarrival times for all pieces,
//! the 100 *first* downloaded pieces, and the 100 *last* downloaded
//! pieces (and likewise for blocks), showing that the feared *last pieces
//! problem* is absent in steady state while a *first pieces/blocks
//! problem* exists: the first 100 arrivals are markedly slower.

use crate::stats::Cdf;
use bt_instrument::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// How many first/last arrivals the paper's subsets use.
pub const SUBSET: usize = 100;

/// Interarrival CDFs for one arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterarrivalAnalysis {
    /// CDF over all interarrival gaps.
    pub all: Cdf,
    /// CDF over the gaps among the first [`SUBSET`] arrivals.
    pub first: Cdf,
    /// CDF over the gaps among the last [`SUBSET`] arrivals.
    pub last: Cdf,
    /// Number of arrivals observed.
    pub count: usize,
}

fn cdf_mean(cdf: &Cdf) -> f64 {
    if cdf.is_empty() {
        return f64::NAN;
    }
    // Mean via fine quantile sampling (the Cdf does not expose raw data).
    let n = 200;
    (0..n)
        .map(|i| cdf.quantile((i as f64 + 0.5) / n as f64))
        .sum::<f64>()
        / n as f64
}

fn interarrivals(times: &[f64]) -> Vec<f64> {
    times.windows(2).map(|w| w[1] - w[0]).collect()
}

impl InterarrivalAnalysis {
    /// Build from a sorted list of arrival times (seconds).
    pub fn from_times(mut times: Vec<f64>) -> InterarrivalAnalysis {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let count = times.len();
        let all = interarrivals(&times);
        let first = interarrivals(&times[..times.len().min(SUBSET)]);
        let last_start = times.len().saturating_sub(SUBSET);
        let last = interarrivals(&times[last_start..]);
        InterarrivalAnalysis {
            all: Cdf::new(all),
            first: Cdf::new(first),
            last: Cdf::new(last),
            count,
        }
    }

    /// Piece completion interarrivals of a trace (figure 7).
    pub fn pieces(trace: &Trace) -> InterarrivalAnalysis {
        let times: Vec<f64> = trace
            .iter()
            .filter_map(|(t, ev)| match ev {
                TraceEvent::PieceCompleted { .. } => Some(t.as_secs_f64()),
                _ => None,
            })
            .collect();
        InterarrivalAnalysis::from_times(times)
    }

    /// Block arrival interarrivals of a trace (figure 8).
    pub fn blocks(trace: &Trace) -> InterarrivalAnalysis {
        let times: Vec<f64> = trace
            .iter()
            .filter_map(|(t, ev)| match ev {
                TraceEvent::BlockReceived { .. } => Some(t.as_secs_f64()),
                _ => None,
            })
            .collect();
        InterarrivalAnalysis::from_times(times)
    }

    /// The paper's *first pieces problem* indicator: how much slower the
    /// first arrivals are than the typical arrival (ratio of mean
    /// interarrival times; means are robust when the overall median gap
    /// is zero, as happens for block streams). Values well above 1
    /// reproduce the effect.
    pub fn first_slowdown(&self) -> f64 {
        let m_all = cdf_mean(&self.all);
        let m_first = cdf_mean(&self.first);
        if m_all > 0.0 {
            m_first / m_all
        } else {
            f64::NAN
        }
    }

    /// The *last pieces problem* indicator: well above 1 would mean the
    /// tail of the download slowed down. In steady state the paper finds
    /// ≈ 1 (no last pieces problem).
    pub fn last_slowdown(&self) -> f64 {
        let m_all = cdf_mean(&self.all);
        let m_last = cdf_mean(&self.last);
        if m_all > 0.0 {
            m_last / m_all
        } else {
            f64::NAN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::TraceMeta;
    use bt_wire::message::BlockRef;
    use bt_wire::time::Instant;

    #[test]
    fn interarrival_arithmetic() {
        let a = InterarrivalAnalysis::from_times(vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(a.count, 4);
        assert_eq!(a.all.len(), 3);
        assert_eq!(a.all.quantile(0.0), 1.0);
        assert_eq!(a.all.quantile(1.0), 3.0);
    }

    #[test]
    fn first_problem_detected() {
        // First 100 arrive 10 s apart, the next 900 arrive 1 s apart.
        let mut times = Vec::new();
        let mut t = 0.0;
        for i in 0..1000 {
            t += if i < 100 { 10.0 } else { 1.0 };
            times.push(t);
        }
        let a = InterarrivalAnalysis::from_times(times);
        assert!(a.first_slowdown() > 5.0, "slowdown {}", a.first_slowdown());
        assert!(a.last_slowdown() <= 1.01, "last {}", a.last_slowdown());
    }

    #[test]
    fn from_trace_events() {
        let meta = TraceMeta {
            torrent: "i".into(),
            torrent_id: 10,
            num_pieces: 3,
            num_blocks: 6,
            initial_seeds: 1,
            initial_leechers: 1,
            session_end: Instant::from_secs(100),
            seed_at: None,
        };
        let mut tr = Trace::new(meta);
        for (t, p) in [(5u64, 0u32), (9, 1), (14, 2)] {
            tr.push(
                Instant::from_secs(t),
                TraceEvent::BlockReceived {
                    peer: 0,
                    block: BlockRef {
                        piece: p,
                        offset: 0,
                        length: 16384,
                    },
                },
            );
            tr.push(
                Instant::from_secs(t),
                TraceEvent::PieceCompleted { piece: p },
            );
        }
        let pieces = InterarrivalAnalysis::pieces(&tr);
        assert_eq!(pieces.count, 3);
        assert_eq!(pieces.all.len(), 2);
        let blocks = InterarrivalAnalysis::blocks(&tr);
        assert_eq!(blocks.count, 3);
    }

    #[test]
    fn short_streams_behave() {
        let a = InterarrivalAnalysis::from_times(vec![1.0]);
        assert!(a.all.is_empty());
        let a = InterarrivalAnalysis::from_times(vec![]);
        assert_eq!(a.count, 0);
    }
}
