//! Topology providers for the per-link network model.
//!
//! A [`TopologySpec`] describes a swarm's wide-area substrate as peer
//! *classes* (DSL homes, cable homes, campus boxes, ISP regions…) plus
//! directed class-pair *link rules*. The spec is plain data — JSON in,
//! JSON out — so WAN scenarios live in files and replay bit-for-bit,
//! in the spirit of topology-zoo generators. Named presets cover the
//! paper-adjacent cases; [`TopologySpec::from_json`] loads custom ones.
//!
//! Resolution is deterministic: peers are assigned to classes by a
//! seeded hash of their peer index (never the swarm's master PRNG, so
//! attaching a topology to an existing spec does not shift any other
//! random draw), and the first rule matching `(from_class, to_class)`
//! wins — put specific rules before the `*` catch-alls.

use bt_wire::time::Duration;

/// Names of the built-in topology presets, in presentation order.
pub const PRESET_NAMES: [&str; 3] = ["homogeneous", "asymmetric_dsl", "two_isp_bottleneck"];

/// A peer class: a name plus a selection weight. Peers are distributed
/// over classes proportionally to weight, deterministically per
/// `(seed, peer index)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassSpec {
    /// Class name, referenced by [`LinkRule::from`]/[`LinkRule::to`].
    pub name: String,
    /// Relative share of the swarm assigned to this class.
    pub weight: u32,
}

/// One direction of a link: fixed one-way delay plus an establishment
/// jitter draw, an optional per-direction bandwidth cap, and a loss
/// probability.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkSpec {
    /// Fixed one-way delay for this direction.
    pub delay: Duration,
    /// Extra per-link delay drawn once, uniformly from `[0, jitter]`,
    /// when the connection is established (constant thereafter, so
    /// in-order delivery holds).
    pub jitter: Duration,
    /// Per-direction bandwidth cap in bytes/second (`None` = the
    /// direction is never the bottleneck; endpoint capacities rule).
    pub bandwidth: Option<u64>,
    /// Probability that a transmission is lost and redelivered one
    /// retransmission timeout late (see DESIGN.md §10: loss delays,
    /// it never drops protocol state).
    pub loss: f64,
}

impl LinkSpec {
    /// A symmetric, lossless, uncapped direction with the given delay.
    pub fn flat(delay: Duration) -> LinkSpec {
        LinkSpec {
            delay,
            jitter: Duration::ZERO,
            bandwidth: None,
            loss: 0.0,
        }
    }
}

/// A directed class-pair rule: `from`/`to` are class names or the
/// wildcard `"*"`. The first matching rule in [`TopologySpec::rules`]
/// decides the link parameters for that direction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkRule {
    /// Sending-side class name, or `"*"`.
    pub from: String,
    /// Receiving-side class name, or `"*"`.
    pub to: String,
    /// Link parameters for the matching direction.
    pub link: LinkSpec,
}

/// A full WAN topology: classes, directed link rules, and the
/// control-plane constants shared by every peer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TopologySpec {
    /// Preset or file identity, echoed in logs and reports.
    pub name: String,
    /// Control-plane one-way delay: dial setup and tracker responses
    /// (the legacy `SwarmSpec::latency` role).
    pub base_delay: Duration,
    /// Retransmission timeout: a lost transmission is redelivered this
    /// much later than its normal arrival.
    pub rto: Duration,
    /// Peer classes; must be non-empty with positive weights.
    pub classes: Vec<ClassSpec>,
    /// Directed link rules, first match wins. Must cover every ordered
    /// class pair (a trailing `*`/`*` rule is the usual backstop).
    pub rules: Vec<LinkRule>,
}

impl TopologySpec {
    /// Look up a built-in preset by name (see [`PRESET_NAMES`]).
    pub fn preset(name: &str) -> Option<TopologySpec> {
        match name {
            "homogeneous" => Some(Self::homogeneous()),
            "asymmetric_dsl" => Some(Self::asymmetric_dsl()),
            "two_isp_bottleneck" => Some(Self::two_isp_bottleneck()),
            _ => None,
        }
    }

    /// One class, identical full-duplex links everywhere: the WAN
    /// machinery with none of the heterogeneity. Useful as a control.
    pub fn homogeneous() -> TopologySpec {
        TopologySpec {
            name: "homogeneous".to_owned(),
            base_delay: Duration::from_millis(50),
            rto: Duration::from_secs(1),
            classes: vec![ClassSpec {
                name: "peer".to_owned(),
                weight: 1,
            }],
            rules: vec![LinkRule {
                from: "*".to_owned(),
                to: "*".to_owned(),
                link: LinkSpec::flat(Duration::from_millis(60)),
            }],
        }
    }

    /// The paper's real-world mix (§IV-A): mostly asymmetric DSL homes,
    /// some cable, a few campus boxes. Sender-side uplink dominates, so
    /// rules key on the *from* class: DSL uploads trickle through a
    /// narrow, lossy pipe while campus peers talk fast and clean.
    pub fn asymmetric_dsl() -> TopologySpec {
        TopologySpec {
            name: "asymmetric_dsl".to_owned(),
            base_delay: Duration::from_millis(50),
            rto: Duration::from_secs(1),
            classes: vec![
                ClassSpec {
                    name: "dsl".to_owned(),
                    weight: 70,
                },
                ClassSpec {
                    name: "cable".to_owned(),
                    weight: 25,
                },
                ClassSpec {
                    name: "campus".to_owned(),
                    weight: 5,
                },
            ],
            rules: vec![
                LinkRule {
                    from: "campus".to_owned(),
                    to: "campus".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(15),
                        jitter: Duration::from_millis(10),
                        bandwidth: None,
                        loss: 0.0,
                    },
                },
                LinkRule {
                    from: "campus".to_owned(),
                    to: "*".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(35),
                        jitter: Duration::from_millis(20),
                        bandwidth: Some(400_000),
                        loss: 0.001,
                    },
                },
                LinkRule {
                    from: "cable".to_owned(),
                    to: "*".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(50),
                        jitter: Duration::from_millis(40),
                        bandwidth: Some(48_000),
                        loss: 0.005,
                    },
                },
                LinkRule {
                    from: "dsl".to_owned(),
                    to: "*".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(70),
                        jitter: Duration::from_millis(60),
                        bandwidth: Some(14_000),
                        loss: 0.01,
                    },
                },
            ],
        }
    }

    /// Two equal ISP regions with fast clean intra-region links and a
    /// narrow, slow, slightly lossy inter-region bottleneck — the
    /// regime where rarest-first must keep both sides piece-diverse.
    pub fn two_isp_bottleneck() -> TopologySpec {
        TopologySpec {
            name: "two_isp_bottleneck".to_owned(),
            base_delay: Duration::from_millis(50),
            rto: Duration::from_secs(1),
            classes: vec![
                ClassSpec {
                    name: "isp_a".to_owned(),
                    weight: 1,
                },
                ClassSpec {
                    name: "isp_b".to_owned(),
                    weight: 1,
                },
            ],
            rules: vec![
                LinkRule {
                    from: "isp_a".to_owned(),
                    to: "isp_a".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(20),
                        jitter: Duration::from_millis(10),
                        bandwidth: None,
                        loss: 0.0,
                    },
                },
                LinkRule {
                    from: "isp_b".to_owned(),
                    to: "isp_b".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(20),
                        jitter: Duration::from_millis(10),
                        bandwidth: None,
                        loss: 0.0,
                    },
                },
                LinkRule {
                    from: "*".to_owned(),
                    to: "*".to_owned(),
                    link: LinkSpec {
                        delay: Duration::from_millis(95),
                        jitter: Duration::from_millis(20),
                        bandwidth: Some(24_000),
                        loss: 0.003,
                    },
                },
            ],
        }
    }

    /// Parse and validate a topology from its JSON form (the same shape
    /// [`to_json`](TopologySpec::to_json) writes; schema in DESIGN.md
    /// §10).
    pub fn from_json(text: &str) -> Result<TopologySpec, String> {
        let spec: TopologySpec =
            serde_json::from_str(text).map_err(|e| format!("topology JSON: {e:?}"))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serialise to pretty JSON (loadable by `from_json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serialises")
    }

    /// Structural checks: non-empty classes with positive total weight,
    /// loss probabilities in `[0, 1)`, rule names resolving to classes
    /// (or `"*"`), and every ordered class pair covered by some rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("topology has no classes".to_owned());
        }
        if self
            .classes
            .iter()
            .map(|c| u64::from(c.weight))
            .sum::<u64>()
            == 0
        {
            return Err("topology class weights sum to zero".to_owned());
        }
        let known = |name: &str| name == "*" || self.classes.iter().any(|c| c.name == name);
        for rule in &self.rules {
            if !known(&rule.from) {
                return Err(format!("link rule names unknown class `{}`", rule.from));
            }
            if !known(&rule.to) {
                return Err(format!("link rule names unknown class `{}`", rule.to));
            }
            if !(0.0..1.0).contains(&rule.link.loss) {
                return Err(format!(
                    "loss probability {} outside [0, 1)",
                    rule.link.loss
                ));
            }
        }
        for a in &self.classes {
            for b in &self.classes {
                if self.resolve(&a.name, &b.name).is_none() {
                    return Err(format!("no link rule covers {} -> {}", a.name, b.name));
                }
            }
        }
        Ok(())
    }

    /// First rule matching the directed class pair, if any.
    pub fn resolve(&self, from: &str, to: &str) -> Option<&LinkSpec> {
        self.rules
            .iter()
            .find(|r| (r.from == "*" || r.from == from) && (r.to == "*" || r.to == to))
            .map(|r| &r.link)
    }

    /// Deterministic class index for a peer: a seeded hash of the peer
    /// index, weighted by class shares. Independent of the swarm's
    /// master PRNG by design — see the module docs.
    pub fn class_index(&self, seed: u64, peer: usize) -> usize {
        let total: u64 = self.classes.iter().map(|c| u64::from(c.weight)).sum();
        let mut pick = splitmix64(seed ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % total;
        for (i, class) in self.classes.iter().enumerate() {
            let w = u64::from(class.weight);
            if pick < w {
                return i;
            }
            pick -= w;
        }
        self.classes.len() - 1
    }
}

/// SplitMix64 — the standard seeded index hash (also used by the
/// tracker's incremental shuffle).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for name in PRESET_NAMES {
            let spec = TopologySpec::preset(name).expect(name);
            assert_eq!(spec.name, name);
            spec.validate().expect(name);
        }
        assert!(TopologySpec::preset("nope").is_none());
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        for name in PRESET_NAMES {
            let spec = TopologySpec::preset(name).unwrap();
            let back = TopologySpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let mut spec = TopologySpec::homogeneous();
        spec.rules[0].link.loss = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = TopologySpec::homogeneous();
        spec.rules[0].from = "ghost".to_owned();
        assert!(spec.validate().is_err());

        let mut spec = TopologySpec::two_isp_bottleneck();
        spec.rules.pop(); // drop the *->* backstop: cross pairs uncovered
        assert!(spec.validate().is_err());
    }

    #[test]
    fn rule_resolution_is_first_match() {
        let spec = TopologySpec::asymmetric_dsl();
        // campus->campus hits the specific rule, not campus->*.
        assert_eq!(
            spec.resolve("campus", "campus").unwrap().delay,
            Duration::from_millis(15)
        );
        assert_eq!(
            spec.resolve("campus", "dsl").unwrap().delay,
            Duration::from_millis(35)
        );
        assert_eq!(
            spec.resolve("dsl", "campus").unwrap().bandwidth,
            Some(14_000)
        );
    }

    #[test]
    fn class_assignment_is_deterministic_and_weighted() {
        let spec = TopologySpec::asymmetric_dsl();
        let a: Vec<usize> = (0..1000).map(|i| spec.class_index(7, i)).collect();
        let b: Vec<usize> = (0..1000).map(|i| spec.class_index(7, i)).collect();
        assert_eq!(a, b);
        // Weight 70/25/5 over 1000 peers: each class is populated and
        // roughly ordered by weight.
        let count = |k| a.iter().filter(|&&c| c == k).count();
        let (dsl, cable, campus) = (count(0), count(1), count(2));
        assert!(
            dsl > cable && cable > campus && campus > 0,
            "{dsl}/{cable}/{campus}"
        );
        // A different seed shuffles membership.
        let c: Vec<usize> = (0..1000).map(|i| spec.class_index(8, i)).collect();
        assert_ne!(a, c);
    }
}
