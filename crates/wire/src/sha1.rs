//! A from-scratch SHA-1 implementation (FIPS 180-1).
//!
//! BitTorrent uses SHA-1 for piece verification and for the info-hash that
//! identifies a torrent. No external hashing crate is vendored offline, so
//! this module implements the digest directly. SHA-1 is cryptographically
//! broken for collision resistance, but the reproduction only needs it for
//! protocol fidelity (the paper's client, mainline 4.0.2, used SHA-1).

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// A 160-bit SHA-1 digest.
pub type Digest = [u8; DIGEST_LEN];

const H0: [u32; 5] = [
    0x6745_2301,
    0xEFCD_AB89,
    0x98BA_DCFE,
    0x1032_5476,
    0xC3D2_E1F0,
];

/// Incremental SHA-1 hasher.
///
/// ```
/// use bt_wire::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// let d = h.finalize();
/// assert_eq!(&d[..4], &[0xa9, 0x99, 0x3e, 0x36]);
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feed `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.process_block(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consume the hasher and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 56 mod 64, then 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
            // `update` increments `len`; the length field must reflect the
            // original message, so we re-correct below by not using self.len.
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Render a digest as lowercase hex (40 characters).
pub fn to_hex(d: &Digest) -> String {
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for b in d {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(input: &[u8]) -> String {
        to_hex(&sha1(input))
    }

    #[test]
    fn empty_string() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn exact_block_boundary() {
        // 64-byte input exercises the padding-into-new-block path.
        let data = vec![0x61u8; 64];
        assert_eq!(hex(&data), "0098ba824b5c16427bd7a1122a5a442a25ec644d");
    }

    #[test]
    fn fifty_five_and_fifty_six_bytes() {
        // 55 bytes: length fits in same block as padding; 56: it does not.
        let d55 = vec![b'x'; 55];
        let d56 = vec![b'x'; 56];
        assert_ne!(sha1(&d55), sha1(&d56));
        assert_eq!(hex(&d55), hex(&d55));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha1(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut h = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn hex_rendering() {
        let d = sha1(b"abc");
        let h = to_hex(&d);
        assert_eq!(h.len(), 40);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
