//! A non-blocking TCP driver for the sans-io [`Engine`].
//!
//! One [`NetRuntime`] owns one engine, one listening socket, and every
//! connection the engine holds. Its poll loop follows the driver
//! contract from [`bt_core::driver`]:
//!
//! 1. feed [`Input::Start`] once;
//! 2. translate socket events into [`Input`]s (accepted handshakes,
//!    decoded frames, EOFs, dial failures);
//! 3. drain and execute the [`Action`]s after every `handle` call —
//!    encode outbound frames, dial, announce, close;
//! 4. feed [`Input::Tick`] whenever the virtual clock passes
//!    [`Engine::next_wakeup`] (the runtime polls the deadline, so
//!    [`Action::SetTimer`] needs no dedicated timer machinery).
//!
//! Handshaking, framing, keep-alives and timeouts all live here; the
//! engine never sees a byte of transport.

use crate::clock::AccelClock;
use crate::metrics::NetMetrics;
use crate::tracker::LoopbackTracker;
use bt_core::engine::PeerCaps;
use bt_core::{Action, ConnId, DataMode, Engine, EngineMetrics, Input};
use bt_obs::{obs_debug, obs_warn, Profiler, Registry, TraceCat, Tracer};
use bt_wire::handshake::{Handshake, HANDSHAKE_LEN};
use bt_wire::message::{BlockRef, Decoder, Message, DEFAULT_MAX_FRAME};
use bt_wire::peer_id::{IpAddr, PeerId};
use bt_wire::time::{Duration, Instant};
use bt_wire::tracker::{AnnounceEvent, DEFAULT_NUM_WANT};
use bytes::BytesMut;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Derive a peer's engine-level address from its peer ID (FNV-1a, 32
/// bit). Both ends of a TCP connection compute the same value from the
/// handshake, so the engine's per-address bookkeeping (one connection
/// per IP, candidate de-duplication) works without real addressing.
pub fn peer_ip(peer_id: &PeerId) -> IpAddr {
    let mut h: u32 = 0x811c_9dc5;
    for &b in peer_id.0.iter() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    IpAddr(h)
}

/// Transport-level tunables (the protocol ones live in `bt_core::Config`).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Wall-clock sleep between poll passes when nothing progressed.
    pub poll_wait: std::time::Duration,
    /// How many times to try one dial before reporting
    /// [`Input::ConnectFailed`].
    pub dial_attempts: u32,
    /// Wall-clock wait before the first dial retry; doubles per retry.
    pub dial_backoff: std::time::Duration,
    /// Wall-clock budget for a handshake to complete both directions.
    pub handshake_timeout: std::time::Duration,
    /// Virtual-time silence after which a connection is dropped. Must
    /// comfortably exceed the engine's 120 s keep-alive interval.
    pub idle_timeout: Duration,
    /// Maximum accepted frame size (codec guard).
    pub max_frame: usize,
    /// Shared telemetry registry. `None` (the default) gives the
    /// runtime a private wall-clock registry; a loopback swarm passes
    /// one registry to every runtime for a swarm-wide view.
    pub metrics: Option<Registry>,
    /// Label under which this runtime registers its instruments
    /// (e.g. `"peer3"`), keeping per-peer series apart on a shared
    /// registry.
    pub metrics_label: String,
    /// Shared span profiler: the poll loop records `net.*` spans and
    /// `wire.encode`/`wire.decode` spans, with the engine's
    /// `core.handle.*` spans nested inside. `None` (the default)
    /// disables span recording entirely.
    pub profiler: Option<Profiler>,
    /// Shared causal tracer: when the runtime's peer (hashed by its
    /// virtual IP) is sampled, every choke round is drained into the
    /// tracer as a `round` + per-peer `audit` chain. `None` (the
    /// default) leaves the engine's audit surface disabled.
    pub tracer: Option<Tracer>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            poll_wait: std::time::Duration::from_micros(200),
            dial_attempts: 3,
            dial_backoff: std::time::Duration::from_millis(2),
            handshake_timeout: std::time::Duration::from_secs(5),
            idle_timeout: Duration::from_secs(1800),
            max_frame: DEFAULT_MAX_FRAME,
            metrics: None,
            metrics_label: String::new(),
            profiler: None,
            tracer: None,
        }
    }
}

/// Counters a runtime accumulates while driving its engine.
///
/// Since the `bt-obs` integration this is a *snapshot view*: the live
/// values are `net.*` counters in the runtime's [`Registry`], and
/// [`NetRuntime::stats`] (or [`NetMetrics::stats`]) reads them out.
#[derive(Debug, Default, Clone, Copy)]
pub struct NetStats {
    /// `Input::Tick`s fed (choke rounds and other timer work).
    pub ticks: u64,
    /// Wire messages decoded and fed to the engine.
    pub messages_in: u64,
    /// `piece` frames fully flushed to a socket.
    pub blocks_sent: u64,
    /// Dials that exhausted their retry budget.
    pub dial_failures: u64,
    /// Protocol violations reported by the engine (peer dropped).
    pub protocol_errors: u64,
    /// Connections closed for any reason.
    pub disconnects: u64,
    /// Framed bytes read off sockets.
    pub bytes_in: u64,
    /// Framed bytes written to sockets.
    pub bytes_out: u64,
    /// Individual dial attempts that failed and were re-queued.
    pub dial_retries: u64,
    /// Handshakes that completed and were offered to the engine.
    pub handshakes_ok: u64,
}

/// One length-prefixed frame queued for write, with an optional block
/// marker so the engine learns when the upload actually left the socket.
struct OutFrame {
    buf: Vec<u8>,
    written: usize,
    block: Option<BlockRef>,
}

/// An established connection: socket, incremental decoder, write queue.
struct NetConn {
    stream: TcpStream,
    decoder: Decoder,
    out: VecDeque<OutFrame>,
    last_recv: Instant,
}

/// A connection still exchanging 68-byte handshakes.
struct Pending {
    stream: TcpStream,
    out: [u8; HANDSHAKE_LEN],
    out_written: usize,
    inbuf: Vec<u8>,
    initiated: bool,
    deadline: std::time::Instant,
    /// Virtual time the handshake began (handshake-latency histogram).
    started: Instant,
}

/// An outbound dial with remaining retry budget.
struct Dial {
    addr: SocketAddr,
    attempts_left: u32,
    backoff: std::time::Duration,
    next_try: std::time::Instant,
}

/// Drives one [`Engine`] over real TCP sockets.
pub struct NetRuntime {
    engine: Engine,
    data: DataMode,
    listener: TcpListener,
    tracker: Arc<LoopbackTracker>,
    clock: AccelClock,
    cfg: NetConfig,
    conns: HashMap<ConnId, NetConn>,
    pending: Vec<Pending>,
    dials: Vec<Dial>,
    metrics: NetMetrics,
    profiler: Profiler,
    tracer: Option<Tracer>,
    counted_complete: bool,
}

impl NetRuntime {
    /// Wrap an engine with its transport. `data` must be the same
    /// [`DataMode`] the engine was built with — the runtime materialises
    /// block payloads from it when executing [`Action::SendBlock`].
    pub fn new(
        engine: Engine,
        data: DataMode,
        listener: TcpListener,
        tracker: Arc<LoopbackTracker>,
        clock: AccelClock,
        cfg: NetConfig,
    ) -> std::io::Result<NetRuntime> {
        listener.set_nonblocking(true)?;
        let registry = cfg.metrics.clone().unwrap_or_else(Registry::new_wall);
        let metrics = NetMetrics::register(&registry, &cfg.metrics_label);
        let profiler = cfg.profiler.clone().unwrap_or_else(Profiler::disabled);
        let mut engine = engine;
        if !engine.has_metrics() {
            engine.set_metrics(EngineMetrics::register_labeled(
                &registry,
                &cfg.metrics_label,
            ));
        }
        if !engine.has_profiler() {
            engine.set_profiler(profiler.clone());
        }
        let tracer = cfg
            .tracer
            .clone()
            .filter(|t| t.enabled() && t.sample_peer(u64::from(peer_ip(&engine.peer_id()).0)));
        if tracer.is_some() {
            engine.enable_choke_audit();
        }
        Ok(NetRuntime {
            engine,
            data,
            listener,
            tracker,
            clock,
            cfg,
            conns: HashMap::new(),
            pending: Vec::new(),
            dials: Vec::new(),
            metrics,
            profiler,
            tracer,
            counted_complete: false,
        })
    }

    /// The engine being driven.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (e.g. `take_trace` after [`run`](Self::run)).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The listener's bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.clock.now()
    }

    /// Counters accumulated so far (snapshot of the `net.*` registry
    /// series this runtime owns).
    pub fn stats(&self) -> NetStats {
        self.metrics.stats()
    }

    /// The runtime's telemetry handles.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// The registry this runtime reports into (shared if
    /// [`NetConfig::metrics`] was set, private otherwise).
    pub fn registry(&self) -> &Registry {
        self.metrics.registry()
    }

    /// Drive the engine until `stop` is set or `max_wall` elapses.
    ///
    /// If `completed` is given, the counter is incremented once when the
    /// engine first reaches seed state — pass it for leechers so a
    /// coordinator can detect swarm completion. Announces `Stopped` to
    /// the tracker on the way out.
    pub fn run(
        &mut self,
        stop: &AtomicBool,
        max_wall: std::time::Duration,
        completed: Option<&AtomicUsize>,
    ) -> NetStats {
        let started = std::time::Instant::now();
        let now = self.clock.now();
        self.feed(now, Input::Start);
        while !stop.load(Ordering::Relaxed) && started.elapsed() < max_wall {
            // The poll span covers one full pass but NOT the idle
            // sleep, so `net.poll` self time is real work.
            let progressed = {
                let _span_guard = self.profiler.span("net.poll");
                let now = self.clock.now();
                // Keep a manual (virtual-time) registry in step with the
                // accelerated clock; a no-op on wall-clock registries.
                self.metrics.registry().time().advance_to(now.0);
                self.accept_pass(now);
                self.dial_pass(now);
                self.pending_pass(now);
                let mut progressed = self.read_pass(now);
                progressed |= self.write_pass(now);
                self.timer_pass(now);
                self.idle_pass(now);
                if let Some(counter) = completed {
                    if !self.counted_complete && self.engine.is_seed() {
                        self.counted_complete = true;
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                }
                progressed
            };
            if !progressed {
                std::thread::sleep(self.cfg.poll_wait);
            }
        }
        // Runtimes run on their own threads: push this thread's buffered
        // trace events into the shared store before the thread exits.
        if let Some(tracer) = &self.tracer {
            tracer.flush_local();
        }
        self.tracker
            .announce(self.engine.ip(), AnnounceEvent::Stopped, 0);
        self.stats()
    }

    /// Feed one input and execute everything the engine asks for.
    fn feed(&mut self, now: Instant, input: Input) {
        let actions = self.engine.handle(now, input);
        if actions.take_error().is_some() {
            self.metrics.protocol_errors.inc();
        }
        let batch = actions.take();
        self.trace_choke_audit(now);
        self.execute(now, batch);
    }

    /// Drain the engine's choke audit into the causal tracer (`round`
    /// plus one `audit` per ranked peer). On the socket path the chain
    /// id is the local peer's virtual-IP hash and `peer` args are local
    /// [`ConnId`]s — there is no global peer index to resolve to.
    fn trace_choke_audit(&mut self, now: Instant) {
        let Some(tracer) = &self.tracer else { return };
        let Some(audit) = self.engine.take_choke_audit() else {
            return;
        };
        let id = u64::from(peer_ip(&self.engine.peer_id()).0);
        tracer.record(
            now.0,
            TraceCat::Choke,
            "round",
            id,
            &[
                ("is_seed", i64::from(audit.is_seed)),
                ("flips", i64::from(audit.flips)),
                ("peers", audit.entries.len() as i64),
                ("optimistic", audit.optimistic.map_or(-1, i64::from)),
            ],
        );
        for e in &audit.entries {
            tracer.record(
                now.0,
                TraceCat::Choke,
                "audit",
                id,
                &[
                    ("peer", i64::from(e.conn)),
                    ("rank", i64::from(e.rank)),
                    ("down_bps", e.download_rate as i64),
                    ("up_bps", e.upload_rate as i64),
                    ("interested", i64::from(e.interested)),
                    ("snubbed", i64::from(e.snubbed)),
                    ("outcome", e.outcome.as_code()),
                ],
            );
        }
    }

    fn execute(&mut self, now: Instant, batch: Vec<Action>) {
        for action in batch {
            match action {
                Action::Send { conn, msg } => self.queue_msg(conn, msg, None),
                Action::SendBlock { conn, block } => {
                    let data = self.data.block_bytes(block.piece, block.block_index());
                    self.queue_msg(conn, Message::Piece { block, data }, Some(block));
                }
                Action::CancelBlock { conn, block } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        // Honour the cancel only if no byte of the frame
                        // has left the socket yet.
                        if let Some(pos) = c.out.iter().position(|f| f.block == Some(block)) {
                            if c.out[pos].written == 0 {
                                c.out.remove(pos);
                            }
                        }
                    }
                }
                Action::Disconnect { conn } => {
                    // Engine-initiated close: its state is already gone.
                    if self.conns.remove(&conn).is_some() {
                        self.metrics.disconnects.inc();
                        self.metrics.conns.set(self.conns.len() as i64);
                    }
                }
                Action::Announce { event } => {
                    let peers =
                        self.tracker
                            .announce(self.engine.ip(), event, DEFAULT_NUM_WANT as usize);
                    self.feed(now, Input::TrackerResponse { peers });
                }
                Action::Connect { peer } => match self.tracker.resolve(peer.ip) {
                    Some(addr) => self.dials.push(Dial {
                        addr,
                        attempts_left: self.cfg.dial_attempts,
                        backoff: self.cfg.dial_backoff,
                        next_try: std::time::Instant::now(),
                    }),
                    None => {
                        self.metrics.dial_failures.inc();
                        self.feed(now, Input::ConnectFailed);
                    }
                },
                // Pull-style timers: every poll pass compares the clock
                // against `next_wakeup()`, so the event needs no storage.
                Action::SetTimer { .. } => {}
            }
        }
    }

    fn queue_msg(&mut self, conn: ConnId, msg: Message, block: Option<BlockRef>) {
        let profiler = self.profiler.clone();
        if let Some(c) = self.conns.get_mut(&conn) {
            if matches!(msg, Message::KeepAlive) {
                self.metrics.keepalives_out.inc();
            }
            let mut buf = BytesMut::with_capacity(msg.wire_len());
            {
                let _span_guard = profiler.span("wire.encode");
                msg.encode(&mut buf);
            }
            c.out.push_back(OutFrame {
                buf: buf.to_vec(),
                written: 0,
                block,
            });
        }
    }

    /// Accept every waiting inbound connection into the handshake stage.
    fn accept_pass(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.start_handshake(now, stream, false),
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Try every due dial; retry with doubled backoff, then give up.
    fn dial_pass(&mut self, now: Instant) {
        let wall = std::time::Instant::now();
        let due: Vec<usize> = (0..self.dials.len())
            .filter(|&i| self.dials[i].next_try <= wall)
            .collect();
        // Process from the back so removals keep earlier indices valid.
        for i in due.into_iter().rev() {
            let d = self.dials.remove(i);
            match TcpStream::connect(d.addr) {
                Ok(stream) => self.start_handshake(now, stream, true),
                Err(_) if d.attempts_left > 1 => {
                    self.metrics.dial_retries.inc();
                    self.dials.push(Dial {
                        addr: d.addr,
                        attempts_left: d.attempts_left - 1,
                        backoff: d.backoff * 2,
                        next_try: wall + d.backoff,
                    });
                }
                Err(_) => {
                    self.metrics.dial_failures.inc();
                    obs_warn!(
                        self.metrics.registry(),
                        "net",
                        "dial_failed",
                        "attempts" = u64::from(self.cfg.dial_attempts),
                    );
                    self.feed(now, Input::ConnectFailed);
                }
            }
        }
    }

    fn start_handshake(&mut self, now: Instant, stream: TcpStream, initiated: bool) {
        if stream.set_nonblocking(true).is_err() {
            if initiated {
                self.metrics.dial_failures.inc();
                self.feed(now, Input::ConnectFailed);
            }
            return;
        }
        let mut hs = Handshake::new(self.engine.info_hash(), self.engine.peer_id());
        hs.reserved = self.engine.handshake_reserved();
        self.pending.push(Pending {
            stream,
            out: hs.encode(),
            out_written: 0,
            inbuf: Vec::with_capacity(HANDSHAKE_LEN),
            initiated,
            deadline: std::time::Instant::now() + self.cfg.handshake_timeout,
            started: now,
        });
    }

    /// Pump every pending handshake; promote completed ones.
    fn pending_pass(&mut self, now: Instant) {
        let wall = std::time::Instant::now();
        let mut pending = std::mem::take(&mut self.pending);
        let mut keep = Vec::with_capacity(pending.len());
        for mut p in pending.drain(..) {
            let mut failed = wall >= p.deadline;
            // Push our handshake out.
            while !failed && p.out_written < HANDSHAKE_LEN {
                match p.stream.write(&p.out[p.out_written..]) {
                    Ok(0) => failed = true,
                    Ok(n) => p.out_written += n,
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => failed = true,
                }
            }
            // Pull theirs in.
            while !failed && p.inbuf.len() < HANDSHAKE_LEN {
                let mut buf = [0u8; HANDSHAKE_LEN];
                let want = HANDSHAKE_LEN - p.inbuf.len();
                match p.stream.read(&mut buf[..want]) {
                    Ok(0) => failed = true,
                    Ok(n) => p.inbuf.extend_from_slice(&buf[..n]),
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => failed = true,
                }
            }
            if failed {
                if p.initiated {
                    self.metrics.dial_failures.inc();
                    self.feed(now, Input::ConnectFailed);
                }
                continue;
            }
            if p.out_written == HANDSHAKE_LEN && p.inbuf.len() == HANDSHAKE_LEN {
                match Handshake::decode(&p.inbuf) {
                    Ok(hs) if hs.info_hash == self.engine.info_hash() => {
                        self.promote(now, p.stream, hs, p.initiated, p.started);
                    }
                    _ => {
                        // Wrong torrent or garbage: silently drop, as the
                        // reference client does.
                        if p.initiated {
                            self.metrics.dial_failures.inc();
                            self.feed(now, Input::ConnectFailed);
                        }
                    }
                }
            } else {
                keep.push(p);
            }
        }
        self.pending = keep;
    }

    /// Hand a completed handshake to the engine; wire up the connection
    /// if it accepts, drop the socket if it refuses.
    fn promote(
        &mut self,
        now: Instant,
        stream: TcpStream,
        hs: Handshake,
        initiated: bool,
        started: Instant,
    ) {
        self.metrics.handshakes_ok.inc();
        self.metrics
            .handshake_us
            .observe(now.0.saturating_sub(started.0));
        obs_debug!(
            self.metrics.registry(),
            "net",
            "handshake_ok",
            "initiated" = initiated,
            "at_secs" = now.as_secs_f64(),
        );
        let caps = PeerCaps::from_reserved(&hs.reserved);
        let actions = self.engine.handle(
            now,
            Input::PeerConnected {
                ip: peer_ip(&hs.peer_id),
                peer_id: hs.peer_id,
                initiated_by_us: initiated,
                caps,
            },
        );
        let accepted = actions.take_accepted();
        let batch = actions.take();
        if let Some(conn) = accepted {
            // Insert before executing: the batch already carries this
            // connection's bitfield sends.
            self.conns.insert(
                conn,
                NetConn {
                    stream,
                    decoder: Decoder::new(self.cfg.max_frame),
                    out: VecDeque::new(),
                    last_recv: now,
                },
            );
            self.metrics.conns.set(self.conns.len() as i64);
        }
        // On refusal (duplicate address, peer-set full) the socket drops
        // here; the remote sees EOF and tells its own engine.
        self.execute(now, batch);
    }

    /// Read available bytes on every connection and feed decoded frames.
    fn read_pass(&mut self, now: Instant) -> bool {
        let profiler = self.profiler.clone();
        let _span_guard = profiler.span("net.read_pass");
        let mut progressed = false;
        let mut buffered: i64 = 0;
        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
        for id in ids {
            let mut msgs = Vec::new();
            let mut dead = false;
            let mut framing_error = false;
            let Some(c) = self.conns.get_mut(&id) else {
                continue;
            };
            let mut buf = [0u8; 16 * 1024];
            let mut read_bytes: u64 = 0;
            loop {
                match c.stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.decoder.feed(&buf[..n]);
                        c.last_recv = now;
                        read_bytes += n as u64;
                        progressed = true;
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            {
                let _span_guard = profiler.span("wire.decode");
                loop {
                    match c.decoder.next_message() {
                        Ok(Some(msg)) => msgs.push(msg),
                        Ok(None) => break,
                        Err(_) => {
                            // Framing violation: the stream is unrecoverable.
                            framing_error = true;
                            dead = true;
                            break;
                        }
                    }
                }
            }
            buffered += c.decoder.pending() as i64;
            if read_bytes > 0 {
                self.metrics.bytes_in.add(read_bytes);
            }
            if framing_error {
                self.metrics.protocol_errors.inc();
            }
            for msg in msgs {
                // The engine may drop the peer mid-batch (protocol
                // error); discard the rest of its frames if so.
                if self.conns.contains_key(&id) {
                    self.metrics.messages_in.inc();
                    if matches!(msg, Message::KeepAlive) {
                        self.metrics.keepalives_in.inc();
                    }
                    self.feed(now, Input::Message { conn: id, msg });
                }
            }
            if dead && self.conns.contains_key(&id) {
                self.drop_conn(now, id);
            }
        }
        self.metrics.read_buffer_bytes.set(buffered);
        progressed
    }

    /// Flush write queues; report fully-sent blocks to the engine.
    fn write_pass(&mut self, now: Instant) -> bool {
        let _span_guard = self.profiler.span("net.write_pass");
        let mut progressed = false;
        let mut queued_frames: i64 = 0;
        let mut queued_bytes: i64 = 0;
        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
        for id in ids {
            let mut sent_blocks = Vec::new();
            let mut dead = false;
            let Some(c) = self.conns.get_mut(&id) else {
                continue;
            };
            let mut wrote_bytes: u64 = 0;
            while let Some(front) = c.out.front_mut() {
                match c.stream.write(&front.buf[front.written..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        front.written += n;
                        wrote_bytes += n as u64;
                        progressed = true;
                        if front.written == front.buf.len() {
                            if let Some(block) = front.block {
                                sent_blocks.push(block);
                            }
                            c.out.pop_front();
                        }
                    }
                    Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            queued_frames += c.out.len() as i64;
            queued_bytes += c
                .out
                .iter()
                .map(|f| (f.buf.len() - f.written) as i64)
                .sum::<i64>();
            if wrote_bytes > 0 {
                self.metrics.bytes_out.add(wrote_bytes);
            }
            for block in sent_blocks {
                self.metrics.blocks_sent.inc();
                if self.conns.contains_key(&id) {
                    self.feed(now, Input::BlockSent { conn: id, block });
                }
            }
            if dead && self.conns.contains_key(&id) {
                self.drop_conn(now, id);
            }
        }
        self.metrics.write_queue_frames.set(queued_frames);
        self.metrics.write_queue_bytes.set(queued_bytes);
        progressed
    }

    /// Feed ticks for every elapsed engine deadline.
    fn timer_pass(&mut self, now: Instant) {
        // `do_tick` re-arms strictly later than `now`, so this loop
        // terminates; the guard caps pathological catch-up bursts.
        let mut guard = 0;
        while let Some(at) = self.engine.next_wakeup() {
            if now < at || guard >= 64 {
                break;
            }
            guard += 1;
            self.metrics.ticks.inc();
            self.feed(now, Input::Tick);
        }
    }

    /// Drop connections that have been silent too long (virtual time).
    fn idle_pass(&mut self, now: Instant) {
        let stale: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| now.saturating_since(c.last_recv) > self.cfg.idle_timeout)
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            self.drop_conn(now, id);
        }
    }

    /// Transport-initiated close: remove the socket, then tell the engine.
    fn drop_conn(&mut self, now: Instant, id: ConnId) {
        self.conns.remove(&id);
        self.metrics.disconnects.inc();
        self.metrics.conns.set(self.conns.len() as i64);
        self.feed(now, Input::PeerDisconnected { conn: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_wire::peer_id::ClientKind;

    #[test]
    fn peer_ip_is_deterministic_and_spreads() {
        let a = PeerId::new(ClientKind::Mainline402, 1);
        let b = PeerId::new(ClientKind::Mainline402, 2);
        assert_eq!(peer_ip(&a), peer_ip(&a));
        assert_ne!(peer_ip(&a), peer_ip(&b));
        assert_ne!(peer_ip(&a), IpAddr(0));
    }
}
