//! Hierarchical span tracing and a self-profiler.
//!
//! A [`Profiler`] hands out RAII [`SpanGuard`]s (usually via the
//! [`span!`](crate::span) macro). Guards push enter/exit records onto a
//! per-thread span stack, so nesting is recovered from runtime call
//! structure without any global registration. When the outermost span
//! on a thread closes, the thread's locally aggregated stats are
//! flushed into the profiler's shared call-tree table.
//!
//! The aggregate — a [`Profile`] — keys stats by the full span *path*
//! (e.g. `sim.event / core.handle.message / core.piece_pick`) and
//! records call count, total time, self time (total minus time spent in
//! child spans) and a fixed-bucket duration histogram from which
//! deterministic integer p50/p95/p99 are derived. It can be rendered as
//! a pretty call-tree report, a flat per-name table, or deterministic
//! JSON.
//!
//! Like the metrics [`Registry`](crate::Registry), a profiler reads
//! time from a [`TimeSource`]: under a driver with a virtual clock
//! (`bt-sim`) every duration is derived from simulated time, so the
//! serialized profile is byte-identical run to run and independent of
//! host load or worker count; under a wall clock (`bt-net`,
//! microbenches) it measures real elapsed time.
//!
//! Disabled profilers ([`Profiler::disabled`]) make `span()` a single
//! branch, so instrumented hot paths cost nothing when profiling is
//! off.
//!
//! # Example
//!
//! ```
//! use bt_obs::{span, Profiler, TimeSource};
//!
//! let prof = Profiler::new(TimeSource::manual());
//! let clock = prof.time().unwrap().clone();
//! {
//!     span!(prof, "outer");
//!     clock.advance_to(100);
//!     {
//!         span!(prof, "inner");
//!         clock.advance_to(130);
//!     }
//!     clock.advance_to(135);
//! }
//! let profile = prof.snapshot();
//! let outer = profile.get(&["outer"]).unwrap();
//! assert_eq!((outer.total_us, outer.self_us), (135, 105));
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::buckets;
use crate::time::TimeSource;

/// Duration histogram bounds (µs), shared with the metrics registry so
/// span quantiles line up with `*_us` histogram quantiles.
const DUR_BOUNDS: &[u64] = buckets::LATENCY_US;

/// Bucket slots: one per finite bound plus an overflow slot.
const DUR_SLOTS: usize = DUR_BOUNDS.len() + 1;

/// Aggregated statistics for one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total elapsed microseconds across all completions.
    pub total_us: u64,
    /// Elapsed microseconds not attributed to child spans.
    pub self_us: u64,
    /// Duration histogram over [`buckets::LATENCY_US`] plus overflow.
    pub dur_buckets: [u64; DUR_SLOTS],
}

impl SpanStat {
    fn record(&mut self, elapsed_us: u64, self_us: u64) {
        self.count += 1;
        self.total_us += elapsed_us;
        self.self_us += self_us;
        let idx = DUR_BOUNDS
            .iter()
            .position(|&b| elapsed_us <= b)
            .unwrap_or(DUR_BOUNDS.len());
        self.dur_buckets[idx] += 1;
    }

    fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.self_us += other.self_us;
        for (a, b) in self.dur_buckets.iter_mut().zip(other.dur_buckets.iter()) {
            *a += b;
        }
    }

    /// Deterministic integer quantile: the upper bound of the duration
    /// bucket holding the rank-`q` sample (overflow clamps to the
    /// largest finite bound), 0 when empty. Same convention as
    /// [`HistogramSnapshot`](crate::HistogramSnapshot).
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q_num).div_ceil(q_den).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.dur_buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return DUR_BOUNDS
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *DUR_BOUNDS.last().unwrap());
            }
        }
        *DUR_BOUNDS.last().unwrap()
    }

    /// Median duration (bucket upper bound), µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 95th-percentile duration (bucket upper bound), µs.
    pub fn p95_us(&self) -> u64 {
        self.quantile(95, 100)
    }

    /// 99th-percentile duration (bucket upper bound), µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile(99, 100)
    }
}

/// Span path: the names of every open ancestor plus the span itself.
type Path = Vec<&'static str>;

#[derive(Debug)]
struct ProfInner {
    /// Distinguishes this profiler's frames in the per-thread arenas.
    id: u64,
    time: TimeSource,
    stats: Mutex<BTreeMap<Path, SpanStat>>,
}

/// One open span on a thread's stack (its name lives in `Arena::path`).
struct Frame {
    start_us: u64,
    /// Total microseconds spent in already-closed direct children.
    child_us: u64,
}

/// Per-thread, per-profiler span state: the open-span stack and stats
/// accumulated since the last flush (flushed whenever the stack
/// empties, i.e. at every root-span exit).
struct Arena {
    prof_id: u64,
    stack: Vec<Frame>,
    path: Path,
    pending: HashMap<Path, SpanStat>,
}

thread_local! {
    static ARENAS: RefCell<Vec<Arena>> = const { RefCell::new(Vec::new()) };
}

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

/// Records hierarchical span timings; see the [module docs](self).
/// Cloning is cheap and all clones feed the same profile.
#[derive(Clone, Debug)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

impl Profiler {
    /// A new enabled profiler reading durations from `time`.
    pub fn new(time: TimeSource) -> Profiler {
        Profiler {
            inner: Some(Arc::new(ProfInner {
                id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
                time,
                stats: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A permanently disabled profiler: `span()` is a single branch and
    /// records nothing. The default for instrumented components.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// True when spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The profiler's clock, or `None` when disabled. Virtual-clock
    /// drivers advance this in lock-step with their event time.
    pub fn time(&self) -> Option<&TimeSource> {
        self.inner.as_ref().map(|i| &i.time)
    }

    /// Open a span named `name`, closed when the returned guard drops.
    /// Guards must drop in LIFO order (natural scoping guarantees it).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { inner: None };
        };
        let start = inner.time.now_micros();
        ARENAS.with(|cell| {
            let mut arenas = cell.borrow_mut();
            let arena = match arenas.iter_mut().position(|a| a.prof_id == inner.id) {
                Some(i) => &mut arenas[i],
                None => {
                    arenas.push(Arena {
                        prof_id: inner.id,
                        stack: Vec::with_capacity(8),
                        path: Vec::with_capacity(8),
                        pending: HashMap::new(),
                    });
                    arenas.last_mut().unwrap()
                }
            };
            arena.stack.push(Frame {
                start_us: start,
                child_us: 0,
            });
            arena.path.push(name);
        });
        SpanGuard {
            inner: Some(inner.clone()),
        }
    }

    /// Point-in-time aggregate of every span completed so far. Stats of
    /// spans still open (and of thread-local batches whose root span
    /// has not yet closed) are not included, so take snapshots after
    /// the instrumented work finishes for exact totals.
    pub fn snapshot(&self) -> Profile {
        match &self.inner {
            Some(inner) => Profile {
                spans: inner.stats.lock().unwrap().clone(),
            },
            None => Profile::default(),
        }
    }
}

/// RAII guard for one open span; closing (dropping) records the span's
/// elapsed time into its profiler. Created by [`Profiler::span`].
#[must_use = "a span guard records on drop; binding it to _ closes it immediately"]
pub struct SpanGuard {
    inner: Option<Arc<ProfInner>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = inner.time.now_micros();
        ARENAS.with(|cell| {
            let mut arenas = cell.borrow_mut();
            let Some(arena) = arenas.iter_mut().find(|a| a.prof_id == inner.id) else {
                debug_assert!(false, "span guard dropped on a thread that never opened it");
                return;
            };
            let Some(frame) = arena.stack.pop() else {
                debug_assert!(false, "span stack underflow");
                return;
            };
            let elapsed = end.saturating_sub(frame.start_us);
            let self_us = elapsed.saturating_sub(frame.child_us);
            arena
                .pending
                .entry(arena.path.clone())
                .or_default()
                .record(elapsed, self_us);
            arena.path.pop();
            match arena.stack.last_mut() {
                Some(parent) => parent.child_us += elapsed,
                None => {
                    // Root span closed: flush this thread's batch.
                    let mut shared = inner.stats.lock().unwrap();
                    for (path, stat) in arena.pending.drain() {
                        shared.entry(path).or_default().merge(&stat);
                    }
                }
            }
        });
    }
}

/// An aggregated call-tree profile; see the [module docs](self).
///
/// Keys are full span paths, so the same leaf name reached through
/// different parents stays separate in the tree view and is summed in
/// the [`flat`](Profile::flat) view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Per-path stats, sorted by path (preorder DFS of the call tree).
    pub spans: BTreeMap<Path, SpanStat>,
}

impl Profile {
    /// True when no spans completed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Stats for an exact path, if present.
    pub fn get(&self, path: &[&'static str]) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// Fold `other` into `self` (commutative sums, so merging
    /// per-scenario profiles in a fixed order is deterministic).
    pub fn merge(&mut self, other: &Profile) {
        for (path, stat) in &other.spans {
            self.spans.entry(path.clone()).or_default().merge(stat);
        }
    }

    /// Flat per-name aggregate (summed over every path sharing a leaf
    /// name), sorted by name.
    pub fn flat(&self) -> Vec<(&'static str, SpanStat)> {
        let mut by_name: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
        for (path, stat) in &self.spans {
            if let Some(leaf) = path.last() {
                by_name.entry(leaf).or_default().merge(stat);
            }
        }
        by_name.into_iter().collect()
    }

    /// The `n` span names with the most self time, descending (ties
    /// break by name so the order is deterministic).
    pub fn top_self(&self, n: usize) -> Vec<(&'static str, SpanStat)> {
        let mut flat = self.flat();
        flat.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
        flat.truncate(n);
        flat
    }

    /// Deterministic JSON: span entries in path order, then the flat
    /// per-name table. Durations are µs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"spans\":[");
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":\"");
            crate::export::escape_json_into(&mut out, &path.join("/"));
            out.push_str("\",\"depth\":");
            out.push_str(&(path.len().saturating_sub(1)).to_string());
            push_stat_fields(&mut out, stat);
            out.push('}');
        }
        out.push_str("],\"flat\":[");
        for (i, (name, stat)) in self.flat().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            crate::export::escape_json_into(&mut out, name);
            out.push('"');
            push_stat_fields(&mut out, stat);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable report: the call tree (indented by depth) then
    /// the top self-time spans.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("profile: no spans recorded\n");
            return out;
        }
        out.push_str(&format!(
            "{:>12} {:>12} {:>9} {:>9} {:>9} {:>9}  span\n",
            "total_us", "self_us", "count", "p50_us", "p95_us", "p99_us"
        ));
        for (path, stat) in &self.spans {
            let indent = "  ".repeat(path.len().saturating_sub(1));
            out.push_str(&format!(
                "{:>12} {:>12} {:>9} {:>9} {:>9} {:>9}  {}{}\n",
                stat.total_us,
                stat.self_us,
                stat.count,
                stat.p50_us(),
                stat.p95_us(),
                stat.p99_us(),
                indent,
                path.last().copied().unwrap_or("?"),
            ));
        }
        out.push_str("\ntop self-time:\n");
        for (name, stat) in self.top_self(10) {
            out.push_str(&format!(
                "{:>12} {:>9}  {}\n",
                stat.self_us, stat.count, name
            ));
        }
        out
    }
}

fn push_stat_fields(out: &mut String, stat: &SpanStat) {
    out.push_str(&format!(
        ",\"count\":{},\"total_us\":{},\"self_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"buckets\":[",
        stat.count,
        stat.total_us,
        stat.self_us,
        stat.p50_us(),
        stat.p95_us(),
        stat.p99_us()
    ));
    let mut first = true;
    for (i, &c) in stat.dur_buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        match DUR_BOUNDS.get(i) {
            Some(b) => out.push_str(&format!("[{b},{c}]")),
            None => out.push_str(&format!("[\"inf\",{c}]")),
        }
    }
    out.push(']');
}

/// Open a span on a [`Profiler`](crate::Profiler) for the rest of the
/// enclosing scope:
///
/// ```
/// use bt_obs::{span, Profiler, TimeSource};
/// let prof = Profiler::new(TimeSource::manual());
/// {
///     span!(prof, "core.piece_pick");
///     // ... work ...
/// }
/// assert_eq!(prof.snapshot().get(&["core.piece_pick"]).unwrap().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($prof:expr, $name:expr) => {
        let _span_guard = $prof.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_prof() -> Profiler {
        Profiler::new(TimeSource::manual())
    }

    #[test]
    fn nesting_attributes_self_and_total_time() {
        let prof = manual_prof();
        let t = prof.time().unwrap().clone();
        {
            span!(prof, "a");
            t.advance_to(100);
            {
                span!(prof, "b");
                t.advance_to(130);
            }
            t.advance_to(135);
        }
        let p = prof.snapshot();
        let a = p.get(&["a"]).unwrap();
        assert_eq!((a.count, a.total_us, a.self_us), (1, 135, 105));
        let b = p.get(&["a", "b"]).unwrap();
        assert_eq!((b.count, b.total_us, b.self_us), (1, 30, 30));
    }

    #[test]
    fn sibling_children_sum_into_parent_child_time() {
        let prof = manual_prof();
        let t = prof.time().unwrap().clone();
        {
            span!(prof, "root");
            for i in 1..=3u64 {
                span!(prof, "leaf");
                t.advance_to(i * 10);
            }
        }
        let p = prof.snapshot();
        let root = p.get(&["root"]).unwrap();
        // leaves cover [0,10],[10,20],[20,30] → all 30 µs are child time.
        assert_eq!((root.total_us, root.self_us), (30, 0));
        let leaf = p.get(&["root", "leaf"]).unwrap();
        assert_eq!((leaf.count, leaf.total_us), (3, 30));
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        {
            span!(prof, "x");
        }
        assert!(prof.snapshot().is_empty());
        assert_eq!(prof.snapshot().to_json(), "{\"spans\":[],\"flat\":[]}");
    }

    #[test]
    fn same_leaf_under_different_parents_stays_split_in_tree() {
        let prof = manual_prof();
        let t = prof.time().unwrap().clone();
        {
            span!(prof, "p1");
            {
                span!(prof, "work");
                t.advance_to(10);
            }
        }
        {
            span!(prof, "p2");
            {
                span!(prof, "work");
                t.advance_to(25);
            }
        }
        let p = prof.snapshot();
        assert_eq!(p.get(&["p1", "work"]).unwrap().total_us, 10);
        assert_eq!(p.get(&["p2", "work"]).unwrap().total_us, 15);
        let flat: BTreeMap<_, _> = p.flat().into_iter().collect();
        assert_eq!(flat["work"].total_us, 25);
        assert_eq!(flat["work"].count, 2);
    }

    #[test]
    fn merge_is_commutative_and_recomputes_quantiles() {
        let mk = |n_fast: u64, n_slow: u64| {
            let prof = manual_prof();
            let t = prof.time().unwrap().clone();
            let mut now = 0;
            for _ in 0..n_fast {
                span!(prof, "op");
                now += 5;
                t.advance_to(now);
            }
            for _ in 0..n_slow {
                span!(prof, "op");
                now += 50_000;
                t.advance_to(now);
            }
            prof.snapshot()
        };
        let a = mk(90, 0);
        let b = mk(0, 10);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let op = ab.get(&["op"]).unwrap();
        assert_eq!(op.count, 100);
        assert_eq!(op.p50_us(), 10);
        assert_eq!(op.p95_us(), 100_000);
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let prof = manual_prof();
        let t = prof.time().unwrap().clone();
        {
            span!(prof, "outer");
            {
                span!(prof, "inner");
                t.advance_to(7);
            }
        }
        let p = prof.snapshot();
        assert_eq!(p.to_json(), p.to_json());
        assert!(p.to_json().contains("\"path\":\"outer/inner\""));
        assert!(p.to_json().contains("\"depth\":1"));
        assert!(p.to_json().contains("\"flat\":["));
    }

    #[test]
    fn spans_from_multiple_threads_aggregate() {
        let prof = manual_prof();
        let t = prof.time().unwrap().clone();
        t.advance_to(3);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let prof = prof.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        span!(prof, "worker");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let p = prof.snapshot();
        assert_eq!(p.get(&["worker"]).unwrap().count, 40);
    }

    #[test]
    fn two_profilers_on_one_thread_stay_independent() {
        let pa = manual_prof();
        let pb = manual_prof();
        {
            span!(pa, "a");
            span!(pb, "b");
        }
        assert!(pa.snapshot().get(&["a"]).is_some());
        assert!(pa.snapshot().get(&["b"]).is_none());
        assert!(pb.snapshot().get(&["b"]).is_some());
    }

    #[test]
    fn top_self_orders_descending_with_name_tiebreak() {
        let prof = manual_prof();
        let t = prof.time().unwrap().clone();
        {
            span!(prof, "cheap");
            t.advance_to(1);
        }
        {
            span!(prof, "dear");
            t.advance_to(101);
        }
        let top = prof.snapshot().top_self(10);
        assert_eq!(top[0].0, "dear");
        assert_eq!(top[1].0, "cheap");
        let report = prof.snapshot().render();
        assert!(report.contains("top self-time:"));
        assert!(report.contains("dear"));
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let p = Profile::default();
        assert!(p.render().contains("no spans recorded"));
        assert!(p.top_self(3).is_empty());
    }
}
