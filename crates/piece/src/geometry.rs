//! Piece/block geometry, decoupled from metainfo hashing.
//!
//! The scheduler and simulator only need sizes, not hashes, so this small
//! value type carries the arithmetic. It agrees with
//! [`bt_wire::Metainfo`]'s piece/block accessors by construction.

use bt_wire::message::BlockRef;
use bt_wire::metainfo::{Metainfo, BLOCK_LEN};
use serde::{Deserialize, Serialize};

/// Sizes of a torrent's content: total bytes and piece length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Total content length in bytes.
    pub total_len: u64,
    /// Bytes per piece (except possibly the last).
    pub piece_len: u32,
}

impl Geometry {
    /// Build from raw sizes.
    ///
    /// # Panics
    /// Panics on zero sizes.
    pub fn new(total_len: u64, piece_len: u32) -> Geometry {
        assert!(total_len > 0 && piece_len > 0);
        Geometry {
            total_len,
            piece_len,
        }
    }

    /// Number of pieces.
    pub fn num_pieces(&self) -> u32 {
        self.total_len.div_ceil(u64::from(self.piece_len)) as u32
    }

    /// Size of piece `index` in bytes.
    pub fn piece_size(&self, index: u32) -> u32 {
        debug_assert!(index < self.num_pieces());
        if index + 1 == self.num_pieces() {
            (self.total_len - u64::from(self.piece_len) * u64::from(index)) as u32
        } else {
            self.piece_len
        }
    }

    /// Number of 16 kB blocks in piece `index`.
    pub fn blocks_in_piece(&self, index: u32) -> u32 {
        self.piece_size(index).div_ceil(BLOCK_LEN)
    }

    /// Total number of blocks in the torrent.
    pub fn total_blocks(&self) -> u64 {
        (0..self.num_pieces())
            .map(|p| u64::from(self.blocks_in_piece(p)))
            .sum()
    }

    /// The [`BlockRef`] for block `block` of piece `piece`.
    pub fn block_ref(&self, piece: u32, block: u32) -> BlockRef {
        let piece_size = self.piece_size(piece);
        debug_assert!(block < self.blocks_in_piece(piece));
        let offset = block * BLOCK_LEN;
        let length = (piece_size - offset).min(BLOCK_LEN);
        BlockRef {
            piece,
            offset,
            length,
        }
    }
}

impl From<&Metainfo> for Geometry {
    fn from(m: &Metainfo) -> Geometry {
        Geometry {
            total_len: m.total_len,
            piece_len: m.piece_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_metainfo() {
        let content = bt_wire::SyntheticContent::generate("g", 3, 5 * 32 * 1024 + 1000, 32 * 1024);
        let m = &content.metainfo;
        let g = Geometry::from(m);
        assert_eq!(g.num_pieces(), m.num_pieces());
        for p in 0..g.num_pieces() {
            assert_eq!(g.piece_size(p), m.piece_size(p));
            assert_eq!(g.blocks_in_piece(p), m.blocks_in_piece(p));
            for b in 0..g.blocks_in_piece(p) {
                assert_eq!(g.block_ref(p, b).length, m.block_size(p, b));
            }
        }
    }

    #[test]
    fn short_tail_block() {
        let g = Geometry::new(BLOCK_LEN as u64 + 100, 2 * BLOCK_LEN);
        assert_eq!(g.num_pieces(), 1);
        assert_eq!(g.blocks_in_piece(0), 2);
        assert_eq!(g.block_ref(0, 1).length, 100);
        assert_eq!(g.total_blocks(), 2);
    }
}
