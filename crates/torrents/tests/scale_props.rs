//! Property tests for the Table I scaling rules.
//!
//! `scale` and `build_swarm_spec` are the bridge between the paper's
//! real-world torrent populations and what the simulator can afford to
//! run; these properties pin down the invariants every configuration
//! must preserve, for all 26 rows at once.

use bt_torrents::runner::scale;
use bt_torrents::{build_swarm_spec, table1, RunConfig};
use bt_wire::time::Duration;
use proptest::prelude::*;

fn cfg_with(max_peers: usize, min_pieces: u32, max_pieces: u32) -> RunConfig {
    RunConfig {
        max_peers,
        min_pieces,
        max_pieces,
        session: Duration::from_secs(1800),
        ..RunConfig::default()
    }
}

proptest! {
    /// Scaling caps the population near `max_peers` (the seed/leecher
    /// floors may add a couple of peers), keeps the piece count inside
    /// the configured bounds, and never invents or erases a side of the
    /// seed/leecher split.
    #[test]
    fn scale_invariants_hold_for_all_26_rows(
        max_peers in 8usize..400,
        min_pieces in 4u32..64,
        extra_pieces in 0u32..400,
    ) {
        let cfg = cfg_with(max_peers, min_pieces, min_pieces + extra_pieces);
        for spec in table1() {
            let sc = scale(&spec, &cfg);
            prop_assert_eq!(sc.id, spec.id);
            prop_assert_eq!(sc.seeds >= 1, spec.seeds >= 1,
                "torrent {}: seeds must survive scaling iff the paper had any", spec.id);
            prop_assert_eq!(sc.leechers >= 1, spec.leechers >= 1,
                "torrent {}: leechers must survive scaling iff the paper had any", spec.id);
            prop_assert!(sc.pieces >= cfg.min_pieces && sc.pieces <= cfg.max_pieces,
                "torrent {}: {} pieces outside [{}, {}]",
                spec.id, sc.pieces, cfg.min_pieces, cfg.max_pieces);
            // Rounding plus the ≥1-seed / ≥2-leecher floors can overshoot
            // the cap by a couple of peers, never more.
            prop_assert!((sc.seeds + sc.leechers) as usize <= max_peers + 3,
                "torrent {}: {}+{} peers blow the {} cap",
                spec.id, sc.seeds, sc.leechers, max_peers);
            prop_assert!(sc.peer_scale > 0.0 && sc.peer_scale <= 1.0);
        }
    }

    /// Scaling is monotone: the minority side of the paper's
    /// seed/leecher split stays the minority side (ties allowed after
    /// rounding).
    #[test]
    fn scale_preserves_ratio_direction(max_peers in 8usize..400) {
        let cfg = cfg_with(max_peers, 24, 48);
        for spec in table1() {
            let sc = scale(&spec, &cfg);
            if spec.seeds <= spec.leechers {
                prop_assert!(sc.seeds <= sc.leechers.max(2),
                    "torrent {}: leecher-heavy became seed-heavy ({}/{})",
                    spec.id, sc.seeds, sc.leechers);
            } else {
                prop_assert!(sc.seeds.max(1) >= sc.leechers,
                    "torrent {}: seed-heavy became leecher-heavy ({}/{})",
                    spec.id, sc.seeds, sc.leechers);
            }
        }
    }

    /// `build_swarm_spec` must hold for every Table I row under any
    /// plausible configuration: no panic, an instrumented local peer in
    /// last position, and a population consistent with the scaling.
    #[test]
    fn build_swarm_spec_never_panics(
        max_peers in 8usize..200,
        min_pieces in 4u32..48,
        extra_pieces in 0u32..100,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = cfg_with(max_peers, min_pieces, min_pieces + extra_pieces);
        cfg.seed = seed;
        for spec in table1() {
            let (swarm, sc) = build_swarm_spec(&spec, &cfg);
            prop_assert_eq!(swarm.local, Some(swarm.peers.len() - 1),
                "torrent {}: local peer must be last", spec.id);
            prop_assert!(swarm.peers.len() > (sc.seeds + sc.leechers) as usize,
                "torrent {}: population lost peers", spec.id);
            prop_assert_eq!(swarm.piece_len, sc.piece_len);
            prop_assert_eq!(swarm.total_len,
                u64::from(sc.pieces) * u64::from(sc.piece_len));
            prop_assert_eq!(swarm.seed, cfg.seed.wrapping_add(u64::from(spec.id) * 1_000_003));
        }
    }

    /// Identical `(cfg, spec)` always produce the identical swarm spec —
    /// the determinism contract the parallel runner relies on.
    #[test]
    fn build_swarm_spec_is_deterministic(seed in 0u64..1_000_000) {
        let mut cfg = RunConfig::quick();
        cfg.seed = seed;
        for spec in table1() {
            let (a, _) = build_swarm_spec(&spec, &cfg);
            let (b, _) = build_swarm_spec(&spec, &cfg);
            prop_assert_eq!(a.peers.len(), b.peers.len());
            prop_assert_eq!(a.seed, b.seed);
            for (pa, pb) in a.peers.iter().zip(&b.peers) {
                prop_assert_eq!(pa.join_at, pb.join_at);
                prop_assert_eq!(pa.capacity, pb.capacity);
            }
        }
    }
}
