//! The simulated tracker.
//!
//! §II-B: "the tracker ... keeps track of the peers currently involved in
//! the torrent and collects statistics". A joining peer receives "a list
//! of IP addresses of peers ... typically 50 peers chosen at random".
//!
//! The model keeps the live peer registry and serves announce requests.
//! Responses go through the *real* compact bencoded encoding and back
//! (`bt_wire::tracker`), so the wire format is exercised on every
//! announce.

use bt_wire::peer_id::IpAddr;
use bt_wire::tracker::{AnnounceEvent, AnnounceResponse, PeerEntry, ANNOUNCE_INTERVAL_SECS};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// Index of a peer in the swarm's peer table.
pub type PeerIdx = usize;

#[derive(Debug, Clone, Copy)]
struct Registered {
    ip: IpAddr,
    port: u16,
    is_seed: bool,
}

/// The tracker's view of one torrent.
#[derive(Debug, Default)]
pub struct SimTracker {
    peers: HashMap<PeerIdx, Registered>,
    /// Announce tallies per event kind, mirroring real tracker statistics.
    pub started: u64,
    /// Number of `completed` announces observed.
    pub completed: u64,
    /// Number of `stopped` announces observed.
    pub stopped: u64,
}

impl SimTracker {
    /// An empty tracker.
    pub fn new() -> SimTracker {
        SimTracker::default()
    }

    /// Current number of seeds (`complete` in tracker responses).
    pub fn num_seeds(&self) -> u32 {
        self.peers.values().filter(|p| p.is_seed).count() as u32
    }

    /// Current number of leechers (`incomplete`).
    pub fn num_leechers(&self) -> u32 {
        self.peers.values().filter(|p| !p.is_seed).count() as u32
    }

    /// Total registered peers.
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// Handle an announce. Returns the peer list (already round-tripped
    /// through the compact wire encoding), or `None` for `stopped`.
    #[allow(clippy::too_many_arguments)] // mirrors the announce request fields
    pub fn announce(
        &mut self,
        peer: PeerIdx,
        ip: IpAddr,
        port: u16,
        is_seed: bool,
        event: AnnounceEvent,
        num_want: usize,
        rng: &mut SmallRng,
    ) -> Option<AnnounceResponse> {
        match event {
            AnnounceEvent::Started => self.started += 1,
            AnnounceEvent::Completed => self.completed += 1,
            AnnounceEvent::Stopped => self.stopped += 1,
            AnnounceEvent::Periodic => {}
        }
        if matches!(event, AnnounceEvent::Stopped) {
            self.peers.remove(&peer);
            return None;
        }
        self.peers.insert(peer, Registered { ip, port, is_seed });

        // Random sample of other peers. Seeds are not returned to seeds —
        // the standard deployed-tracker optimisation (a seed↔seed
        // connection carries nothing and both ends drop it immediately).
        let mut others: Vec<PeerEntry> = self
            .peers
            .iter()
            .filter(|(&idx, r)| idx != peer && !(is_seed && r.is_seed))
            .map(|(_, r)| PeerEntry {
                ip: r.ip,
                port: r.port,
            })
            .collect();
        others.sort_by_key(|p| (p.ip, p.port)); // determinism before shuffle
        others.shuffle(rng);
        others.truncate(num_want);

        let response = AnnounceResponse {
            interval: ANNOUNCE_INTERVAL_SECS,
            complete: self.num_seeds(),
            incomplete: self.num_leechers(),
            peers: others,
        };
        // Exercise the real compact encoding on every announce.
        let encoded = response.encode_compact();
        Some(AnnounceResponse::decode_compact(&encoded).expect("self-encoded response decodes"))
    }

    /// Mark a peer as having become a seed without a full announce (used
    /// when the simulator observes the transition directly).
    pub fn mark_seed(&mut self, peer: PeerIdx) {
        if let Some(r) = self.peers.get_mut(&peer) {
            r.is_seed = true;
        }
    }

    /// Remove a peer (departure without a clean `stopped` announce).
    pub fn remove(&mut self, peer: PeerIdx) {
        self.peers.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn registers_and_counts() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(0, IpAddr(1), 6881, true, AnnounceEvent::Started, 50, &mut r);
        t.announce(
            1,
            IpAddr(2),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        assert_eq!(t.num_seeds(), 1);
        assert_eq!(t.num_leechers(), 1);
        assert_eq!(t.started, 2);
    }

    #[test]
    fn response_excludes_requester_and_caps_size() {
        let mut t = SimTracker::new();
        let mut r = rng();
        for i in 0..100 {
            t.announce(
                i,
                IpAddr(i as u32 + 1),
                6881,
                false,
                AnnounceEvent::Started,
                0,
                &mut r,
            );
        }
        let resp = t
            .announce(
                0,
                IpAddr(1),
                6881,
                false,
                AnnounceEvent::Periodic,
                50,
                &mut r,
            )
            .unwrap();
        assert_eq!(resp.peers.len(), 50);
        assert!(resp.peers.iter().all(|p| p.ip != IpAddr(1)));
        assert_eq!(resp.incomplete, 100);
    }

    #[test]
    fn stopped_removes_peer() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(
            0,
            IpAddr(1),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        assert!(t
            .announce(
                0,
                IpAddr(1),
                6881,
                false,
                AnnounceEvent::Stopped,
                50,
                &mut r
            )
            .is_none());
        assert_eq!(t.num_peers(), 0);
        assert_eq!(t.stopped, 1);
    }

    #[test]
    fn seeds_are_not_returned_to_seeds() {
        let mut t = SimTracker::new();
        let mut r = rng();
        for i in 0..5 {
            t.announce(
                i,
                IpAddr(i as u32 + 1),
                6881,
                true,
                AnnounceEvent::Started,
                50,
                &mut r,
            );
        }
        for i in 5..8 {
            t.announce(
                i,
                IpAddr(i as u32 + 1),
                6881,
                false,
                AnnounceEvent::Started,
                50,
                &mut r,
            );
        }
        // A seed announcing sees only the 3 leechers.
        let resp = t
            .announce(
                0,
                IpAddr(1),
                6881,
                true,
                AnnounceEvent::Periodic,
                50,
                &mut r,
            )
            .unwrap();
        assert_eq!(resp.peers.len(), 3);
        // A leecher still sees everyone else.
        let resp = t
            .announce(
                5,
                IpAddr(6),
                6881,
                false,
                AnnounceEvent::Periodic,
                50,
                &mut r,
            )
            .unwrap();
        assert_eq!(resp.peers.len(), 7);
    }

    #[test]
    fn completed_flips_seed_status() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(
            0,
            IpAddr(1),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        t.announce(
            0,
            IpAddr(1),
            6881,
            true,
            AnnounceEvent::Completed,
            50,
            &mut r,
        );
        assert_eq!(t.num_seeds(), 1);
        assert_eq!(t.completed, 1);
    }

    #[test]
    fn mark_seed_and_remove() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(
            3,
            IpAddr(9),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        t.mark_seed(3);
        assert_eq!(t.num_seeds(), 1);
        t.remove(3);
        assert_eq!(t.num_peers(), 0);
    }
}
