//! Engine-level runtime telemetry (`bt-obs` integration).
//!
//! [`EngineMetrics`] is a bundle of pre-registered handles into a
//! [`bt_obs::Registry`]: one counter per [`Input`](crate::Input)
//! variant, one per [`Action`](crate::Action) variant, one per
//! [`EngineError`](crate::EngineError) variant, per-round choke churn
//! counters (`core.choke.*`, fed by each
//! [`rechoke`](crate::Engine::rechoke) round), plus choke-round and
//! piece-pick latency histograms. Attach it with
//! [`EngineBuilder::metrics`](crate::EngineBuilder::metrics) (or
//! [`Engine::set_metrics`](crate::Engine::set_metrics) on a built
//! engine); cloning shares the same underlying instruments, so several
//! engines on one registry aggregate into a swarm-wide view, and a
//! per-engine `label` keeps them apart when the driver wants per-peer
//! numbers.
//!
//! Instrumentation never touches the engine's RNG or its §III-C trace,
//! so attaching metrics cannot perturb deterministic runs.

use crate::driver::Input;
use crate::engine::Action;
use crate::error::EngineError;
use bt_obs::{buckets, Counter, Histogram, Registry};

/// Pre-registered `bt-obs` handles for one engine (or one shared swarm
/// view); see the [module docs](self).
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    pub(crate) registry: Registry,

    pub(crate) in_start: Counter,
    pub(crate) in_tick: Counter,
    pub(crate) in_tracker_response: Counter,
    pub(crate) in_peer_connected: Counter,
    pub(crate) in_connect_failed: Counter,
    pub(crate) in_peer_disconnected: Counter,
    pub(crate) in_message: Counter,
    pub(crate) in_block_sent: Counter,

    pub(crate) act_send: Counter,
    pub(crate) act_send_block: Counter,
    pub(crate) act_cancel_block: Counter,
    pub(crate) act_disconnect: Counter,
    pub(crate) act_announce: Counter,
    pub(crate) act_connect: Counter,
    pub(crate) act_set_timer: Counter,

    pub(crate) err_bad_bitfield: Counter,
    pub(crate) err_piece_out_of_range: Counter,
    pub(crate) err_malformed_block: Counter,

    pub(crate) pieces_completed: Counter,
    pub(crate) pieces_failed: Counter,

    pub(crate) choke_rounds: Counter,
    pub(crate) choke_flips: Counter,
    pub(crate) choke_unchoked_slots: Counter,
    pub(crate) choke_reciprocal_slots: Counter,

    pub(crate) choke_round_us: Histogram,
    pub(crate) piece_pick_us: Histogram,
}

impl EngineMetrics {
    /// Register (or re-acquire) the engine instruments on `registry`
    /// with an empty label.
    pub fn register(registry: &Registry) -> EngineMetrics {
        EngineMetrics::register_labeled(registry, "")
    }

    /// Register with a per-engine `label` (e.g. `"peer3"`) so several
    /// engines on one registry stay distinguishable.
    pub fn register_labeled(registry: &Registry, label: &str) -> EngineMetrics {
        EngineMetrics {
            registry: registry.clone(),
            in_start: registry.counter_with("core.inputs.start", label),
            in_tick: registry.counter_with("core.inputs.tick", label),
            in_tracker_response: registry.counter_with("core.inputs.tracker_response", label),
            in_peer_connected: registry.counter_with("core.inputs.peer_connected", label),
            in_connect_failed: registry.counter_with("core.inputs.connect_failed", label),
            in_peer_disconnected: registry.counter_with("core.inputs.peer_disconnected", label),
            in_message: registry.counter_with("core.inputs.message", label),
            in_block_sent: registry.counter_with("core.inputs.block_sent", label),
            act_send: registry.counter_with("core.actions.send", label),
            act_send_block: registry.counter_with("core.actions.send_block", label),
            act_cancel_block: registry.counter_with("core.actions.cancel_block", label),
            act_disconnect: registry.counter_with("core.actions.disconnect", label),
            act_announce: registry.counter_with("core.actions.announce", label),
            act_connect: registry.counter_with("core.actions.connect", label),
            act_set_timer: registry.counter_with("core.actions.set_timer", label),
            err_bad_bitfield: registry.counter_with("core.errors.bad_bitfield", label),
            err_piece_out_of_range: registry.counter_with("core.errors.piece_out_of_range", label),
            err_malformed_block: registry.counter_with("core.errors.malformed_block", label),
            pieces_completed: registry.counter_with("core.pieces_completed", label),
            pieces_failed: registry.counter_with("core.pieces_failed", label),
            choke_rounds: registry.counter_with("core.choke.rounds", label),
            choke_flips: registry.counter_with("core.choke.flips", label),
            choke_unchoked_slots: registry.counter_with("core.choke.unchoked_slots", label),
            choke_reciprocal_slots: registry.counter_with("core.choke.reciprocal_slots", label),
            choke_round_us: registry.histogram_with(
                "core.choke_round_us",
                label,
                buckets::LATENCY_US,
            ),
            piece_pick_us: registry.histogram_with(
                "core.piece_pick_us",
                label,
                buckets::LATENCY_US,
            ),
        }
    }

    /// The registry the handles live in (also the latency clock).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn count_input(&self, input: &Input) {
        match input {
            Input::Start => self.in_start.inc(),
            Input::Tick => self.in_tick.inc(),
            Input::TrackerResponse { .. } => self.in_tracker_response.inc(),
            Input::PeerConnected { .. } => self.in_peer_connected.inc(),
            Input::ConnectFailed => self.in_connect_failed.inc(),
            Input::PeerDisconnected { .. } => self.in_peer_disconnected.inc(),
            Input::Message { .. } => self.in_message.inc(),
            Input::BlockSent { .. } => self.in_block_sent.inc(),
        }
    }

    pub(crate) fn count_action(&self, action: &Action) {
        match action {
            Action::Send { .. } => self.act_send.inc(),
            Action::SendBlock { .. } => self.act_send_block.inc(),
            Action::CancelBlock { .. } => self.act_cancel_block.inc(),
            Action::Disconnect { .. } => self.act_disconnect.inc(),
            Action::Announce { .. } => self.act_announce.inc(),
            Action::Connect { .. } => self.act_connect.inc(),
            Action::SetTimer { .. } => self.act_set_timer.inc(),
        }
    }

    pub(crate) fn count_error(&self, err: &EngineError) {
        match err {
            EngineError::BadBitfield { .. } => self.err_bad_bitfield.inc(),
            EngineError::PieceOutOfRange { .. } => self.err_piece_out_of_range.inc(),
            EngineError::MalformedBlock { .. } => self.err_malformed_block.inc(),
        }
    }
}
