//! Transport-level runtime telemetry (`bt-obs` integration).
//!
//! [`NetMetrics`] holds the pre-registered handles a [`NetRuntime`]
//! (crate::runtime::NetRuntime) increments while driving its engine.
//! All instruments carry the runtime's label (e.g. `"peer3"`), so
//! several runtimes sharing one registry — the loopback swarm — stay
//! distinguishable, per-peer bytes in/out included; aggregate views
//! sum across labels at snapshot time
//! ([`bt_obs::Snapshot::counter_sum`]).
//!
//! The legacy [`NetStats`](crate::runtime::NetStats) struct is now a
//! thin snapshot view over these counters ([`NetMetrics::stats`]).

use bt_obs::{buckets, Counter, Gauge, Histogram, Registry};

/// Pre-registered `bt-obs` handles for one `NetRuntime`.
#[derive(Clone, Debug)]
pub struct NetMetrics {
    registry: Registry,

    pub(crate) ticks: Counter,
    pub(crate) messages_in: Counter,
    pub(crate) blocks_sent: Counter,
    pub(crate) dial_failures: Counter,
    pub(crate) dial_retries: Counter,
    pub(crate) protocol_errors: Counter,
    pub(crate) disconnects: Counter,
    pub(crate) handshakes_ok: Counter,
    pub(crate) bytes_in: Counter,
    pub(crate) bytes_out: Counter,
    pub(crate) keepalives_in: Counter,
    pub(crate) keepalives_out: Counter,

    pub(crate) handshake_us: Histogram,

    pub(crate) conns: Gauge,
    pub(crate) write_queue_frames: Gauge,
    pub(crate) write_queue_bytes: Gauge,
    pub(crate) read_buffer_bytes: Gauge,
}

impl NetMetrics {
    /// Register (or re-acquire) the transport instruments on
    /// `registry` under `label`.
    pub fn register(registry: &Registry, label: &str) -> NetMetrics {
        NetMetrics {
            registry: registry.clone(),
            ticks: registry.counter_with("net.ticks", label),
            messages_in: registry.counter_with("net.messages_in", label),
            blocks_sent: registry.counter_with("net.blocks_sent", label),
            dial_failures: registry.counter_with("net.dial_failures", label),
            dial_retries: registry.counter_with("net.dial_retries", label),
            protocol_errors: registry.counter_with("net.protocol_errors", label),
            disconnects: registry.counter_with("net.disconnects", label),
            handshakes_ok: registry.counter_with("net.handshakes_ok", label),
            bytes_in: registry.counter_with("net.bytes_in", label),
            bytes_out: registry.counter_with("net.bytes_out", label),
            keepalives_in: registry.counter_with("net.keepalives_in", label),
            keepalives_out: registry.counter_with("net.keepalives_out", label),
            handshake_us: registry.histogram_with("net.handshake_us", label, buckets::LATENCY_US),
            conns: registry.gauge_with("net.conns", label),
            write_queue_frames: registry.gauge_with("net.write_queue_frames", label),
            write_queue_bytes: registry.gauge_with("net.write_queue_bytes", label),
            read_buffer_bytes: registry.gauge_with("net.read_buffer_bytes", label),
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The legacy counter view, read straight from the registry.
    pub fn stats(&self) -> crate::runtime::NetStats {
        crate::runtime::NetStats {
            ticks: self.ticks.get(),
            messages_in: self.messages_in.get(),
            blocks_sent: self.blocks_sent.get(),
            dial_failures: self.dial_failures.get(),
            protocol_errors: self.protocol_errors.get(),
            disconnects: self.disconnects.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            dial_retries: self.dial_retries.get(),
            handshakes_ok: self.handshakes_ok.get(),
        }
    }
}
