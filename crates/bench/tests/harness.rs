//! Tests of the experiment drivers themselves: every figure/ablation
//! driver must run at quick scale and return structurally sane data.

use bt_bench::experiments as exp;
use bt_bench::report;
use bt_torrents::{run_scenario, torrent, RunConfig};

fn quick() -> RunConfig {
    RunConfig::quick()
}

#[test]
fn fig1_rows_cover_requested_torrents() {
    // A three-torrent mini-sweep exercises the fig1 pipeline.
    let cfg = quick();
    let outcomes: Vec<_> = [2, 3, 13]
        .iter()
        .map(|&id| run_scenario(&torrent(id), &cfg))
        .collect();
    let rows = exp::fig1(&outcomes);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        for v in [
            r.local_in_remote.p20,
            r.local_in_remote.p50,
            r.local_in_remote.p80,
            r.remote_in_local.p50,
        ] {
            assert!(
                v.is_nan() || (0.0..=1.0).contains(&v),
                "ratio out of range: {v}"
            );
        }
    }
    // Percentiles are ordered when defined.
    for r in &rows {
        if !r.local_in_remote.p20.is_nan() {
            assert!(r.local_in_remote.p20 <= r.local_in_remote.p50 + 1e-9);
            assert!(r.local_in_remote.p50 <= r.local_in_remote.p80 + 1e-9);
        }
    }
}

#[test]
fn replication_and_interarrival_drivers() {
    let cfg = quick();
    let o = run_scenario(&torrent(3), &cfg);
    let full = exp::replication_series(&o, false);
    let ls = exp::replication_series(&o, true);
    assert!(ls.points.len() <= full.points.len());
    assert!(!full.points.is_empty());
    let (pieces, blocks) = exp::interarrivals(&o);
    assert_eq!(
        pieces.count, o.scaled.pieces as usize,
        "every piece completed once"
    );
    assert!(blocks.count >= pieces.count, "blocks outnumber pieces");
}

#[test]
fn fairness_shares_are_simplex_like() {
    let cfg = quick();
    let outcomes = vec![run_scenario(&torrent(13), &cfg)];
    for (_, f) in exp::fig9(&outcomes)
        .iter()
        .chain(exp::fig11(&outcomes).iter())
    {
        let sum: f64 = f.upload_share.iter().sum();
        assert!((0.0..=1.0 + 1e-9).contains(&sum), "share sum {sum}");
        for s in &f.upload_share {
            assert!((0.0..=1.0).contains(s));
        }
        let j = f.jain_index();
        assert!(j == 0.0 || (0.0..=1.0 + 1e-9).contains(&j));
    }
}

#[test]
fn fig10_driver_counts_match_trace() {
    let cfg = quick();
    let o = run_scenario(&torrent(13), &cfg);
    let (c, _r_ls, _r_ss) = exp::fig10(&o);
    use bt_instrument::trace::TraceEvent;
    let unchokes_in_trace = o
        .trace
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::LocalChoke { choked: false, .. }))
        .count() as u32;
    let unchokes_in_points: u32 = c
        .leecher
        .iter()
        .map(|p| p.unchokes)
        .chain(c.seed.iter().map(|p| p.unchokes))
        .sum();
    assert_eq!(unchokes_in_points, unchokes_in_trace);
}

#[test]
fn report_rendering_is_robust() {
    // Render helpers must not panic on edge inputs.
    assert_eq!(report::sparkline(&[]), "");
    assert_eq!(report::bar(f64::NAN, 5).chars().count(), 5);
    let t = report::table(&["a"], &[]);
    assert!(t.contains('a'));
    assert_eq!(report::downsample(&[], 8), Vec::<f64>::new());
    assert_eq!(report::secs(f64::INFINITY), "-");
}

#[test]
fn endgame_ablation_direction() {
    let cfg = quick();
    let rows = exp::ablation_endgame(&cfg);
    assert_eq!(rows.len(), 2);
    let on = rows.iter().find(|r| r.endgame).unwrap();
    let off = rows.iter().find(|r| !r.endgame).unwrap();
    // Both complete at this scale; end game must not make the tail gap
    // longer.
    if let (Some(a), Some(b)) = (on.local_download_secs, off.local_download_secs) {
        assert!(
            a <= b * 1.25,
            "end game made the download much slower: {a} vs {b}"
        );
    }
    assert!(on.last_blocks_max_gap <= off.last_blocks_max_gap + 1e-9);
}

#[test]
fn superseed_ablation_direction() {
    let cfg = quick();
    let rows = exp::ablation_superseed(&cfg);
    let plain = rows.iter().find(|r| !r.super_seed).unwrap();
    let ss = rows.iter().find(|r| r.super_seed).unwrap();
    assert!(
        ss.duplicate_ratio <= plain.duplicate_ratio,
        "super-seeding must not increase duplicates ({} vs {})",
        ss.duplicate_ratio,
        plain.duplicate_ratio
    );
}
