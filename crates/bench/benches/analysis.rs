//! Analysis-pipeline benchmarks: the cost of turning a full scenario
//! trace into each figure's metrics.

use bt_analysis::{
    entropy, fairness, unchoke_correlation, InterarrivalAnalysis, ReplicationSeries, StateWindow,
};
use bt_instrument::trace::Trace;
use bt_torrents::{run_scenario, torrent, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn trace() -> Trace {
    let cfg = RunConfig::quick();
    run_scenario(&torrent(3), &cfg).trace
}

fn bench_analysis(c: &mut Criterion) {
    let tr = trace();
    let mut group = c.benchmark_group("analysis");
    group.bench_function("entropy", |b| b.iter(|| black_box(entropy(&tr))));
    group.bench_function("replication", |b| {
        b.iter(|| black_box(ReplicationSeries::from_trace(&tr)))
    });
    group.bench_function("interarrival_blocks", |b| {
        b.iter(|| black_box(InterarrivalAnalysis::blocks(&tr)))
    });
    group.bench_function("fairness_ls", |b| {
        b.iter(|| black_box(fairness(&tr, StateWindow::Leecher)))
    });
    group.bench_function("unchoke_correlation", |b| {
        b.iter(|| black_box(unchoke_correlation(&tr)))
    });
    group.bench_function("jsonl_roundtrip", |b| {
        b.iter(|| {
            let text = tr.to_jsonl();
            black_box(Trace::from_jsonl(&text).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
