//! The simulated tracker.
//!
//! §II-B: "the tracker ... keeps track of the peers currently involved in
//! the torrent and collects statistics". A joining peer receives "a list
//! of IP addresses of peers ... typically 50 peers chosen at random".
//!
//! The model keeps the live peer registry and serves announce requests.
//! Responses go through the *real* compact bencoded encoding and back
//! (`bt_wire::tracker`), so the wire format is exercised on every
//! announce.

use bt_wire::peer_id::IpAddr;
use bt_wire::tracker::{AnnounceEvent, AnnounceResponse, PeerEntry, ANNOUNCE_INTERVAL_SECS};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Index of a peer in the swarm's peer table.
pub type PeerIdx = usize;

#[derive(Debug, Clone, Copy)]
struct Registered {
    ip: IpAddr,
    port: u16,
    is_seed: bool,
}

/// The tracker's view of one torrent.
///
/// Peer indices are dense (the swarm's peer-table indices), so the
/// registry is a slot vector plus an unordered `live` list with an
/// inverse position map: register, deregister, seed/leecher counts are
/// all O(1), and announce responses sample from `live` directly.
#[derive(Debug, Default)]
pub struct SimTracker {
    /// Registration slots, indexed by `PeerIdx` (grown on demand).
    regs: Vec<Option<Registered>>,
    /// Registered peer indices, unordered within each region: seeds in
    /// `live[..part]`, leechers in `live[part..]` (swap-maintained).
    live: Vec<PeerIdx>,
    /// `live_pos[idx]` = position of `idx` in `live`, when registered.
    live_pos: Vec<Option<u32>>,
    /// Seed/leecher partition point: `live[..part]` are the seeds.
    part: usize,
    /// Sample announce responses with an O(num_want) partial shuffle of
    /// the `live` list instead of the legacy sort-shuffle-truncate over
    /// every registered peer. Off by default: the legacy path's RNG draw
    /// sequence is part of the golden-trace contract, so only mega-swarm
    /// scenarios (which have no prior goldens) opt in.
    pub scalable_sampling: bool,
    /// Announce tallies per event kind, mirroring real tracker statistics.
    pub started: u64,
    /// Number of `completed` announces observed.
    pub completed: u64,
    /// Number of `stopped` announces observed.
    pub stopped: u64,
}

impl SimTracker {
    /// An empty tracker.
    pub fn new() -> SimTracker {
        SimTracker::default()
    }

    /// Current number of seeds (`complete` in tracker responses).
    pub fn num_seeds(&self) -> u32 {
        self.part as u32
    }

    /// Current number of leechers (`incomplete`).
    pub fn num_leechers(&self) -> u32 {
        (self.live.len() - self.part) as u32
    }

    /// Total registered peers.
    pub fn num_peers(&self) -> usize {
        self.live.len()
    }

    fn swap_live(&mut self, a: usize, b: usize) {
        self.live.swap(a, b);
        self.live_pos[self.live[a]] = Some(a as u32);
        self.live_pos[self.live[b]] = Some(b as u32);
    }

    /// Move a registered leecher into the seed region.
    fn promote(&mut self, peer: PeerIdx) {
        let pos = self.live_pos[peer].expect("registered") as usize;
        debug_assert!(pos >= self.part);
        self.swap_live(pos, self.part);
        self.part += 1;
    }

    fn register(&mut self, peer: PeerIdx, r: Registered) {
        if self.regs.len() <= peer {
            self.regs.resize_with(peer + 1, || None);
            self.live_pos.resize(peer + 1, None);
        }
        match self.regs[peer].replace(r) {
            Some(old) => match (old.is_seed, r.is_seed) {
                (false, true) => self.promote(peer),
                (true, false) => {
                    // Seed back to leecher (a restart from scratch).
                    let pos = self.live_pos[peer].expect("registered") as usize;
                    self.part -= 1;
                    self.swap_live(pos, self.part);
                }
                _ => {}
            },
            None => {
                self.live_pos[peer] = Some(self.live.len() as u32);
                self.live.push(peer);
                if r.is_seed {
                    self.promote(peer);
                }
            }
        }
    }

    /// Handle an announce. Returns the peer list (already round-tripped
    /// through the compact wire encoding), or `None` for `stopped`.
    #[allow(clippy::too_many_arguments)] // mirrors the announce request fields
    pub fn announce(
        &mut self,
        peer: PeerIdx,
        ip: IpAddr,
        port: u16,
        is_seed: bool,
        event: AnnounceEvent,
        num_want: usize,
        rng: &mut SmallRng,
    ) -> Option<AnnounceResponse> {
        match event {
            AnnounceEvent::Started => self.started += 1,
            AnnounceEvent::Completed => self.completed += 1,
            AnnounceEvent::Stopped => self.stopped += 1,
            AnnounceEvent::Periodic => {}
        }
        if matches!(event, AnnounceEvent::Stopped) {
            self.remove(peer);
            return None;
        }
        self.register(peer, Registered { ip, port, is_seed });

        // Random sample of other peers. Seeds are not returned to seeds —
        // the standard deployed-tracker optimisation (a seed↔seed
        // connection carries nothing and both ends drop it immediately).
        let others = if self.scalable_sampling {
            self.sample_scalable(peer, is_seed, num_want, rng)
        } else {
            self.sample_legacy(peer, is_seed, num_want, rng)
        };

        let response = AnnounceResponse {
            interval: ANNOUNCE_INTERVAL_SECS,
            complete: self.num_seeds(),
            incomplete: self.num_leechers(),
            peers: others,
        };
        // Exercise the real compact encoding on every announce.
        let encoded = response.encode_compact();
        Some(AnnounceResponse::decode_compact(&encoded).expect("self-encoded response decodes"))
    }

    /// The original sampling: materialise every eligible peer, sort for
    /// determinism, full Fisher–Yates shuffle, truncate. O(n log n) per
    /// announce and exactly the RNG draw sequence the golden traces pin.
    fn sample_legacy(
        &self,
        peer: PeerIdx,
        is_seed: bool,
        num_want: usize,
        rng: &mut SmallRng,
    ) -> Vec<PeerEntry> {
        let mut others: Vec<PeerEntry> = self
            .live
            .iter()
            .map(|&idx| (idx, self.regs[idx].expect("live peers are registered")))
            .filter(|&(idx, r)| idx != peer && !(is_seed && r.is_seed))
            .map(|(_, r)| PeerEntry {
                ip: r.ip,
                port: r.port,
            })
            .collect();
        others.sort_by_key(|p| (p.ip, p.port)); // determinism before shuffle
        others.shuffle(rng);
        others.truncate(num_want);
        others
    }

    /// Scalable sampling: rejection-sample distinct positions uniformly
    /// from the eligible region of `live` — the whole list for a leecher,
    /// the leecher region for a seed (seed↔seed is never returned). Cost
    /// is O(num_want) expected, independent of swarm size, and `live` is
    /// never reordered. The draw-attempt cap guarantees termination when
    /// the region is barely larger than `num_want` (the response may then
    /// miss a few eligible peers — the next announce redraws). The draw
    /// sequence is a pure function of the announce history, so runs stay
    /// byte-identical; it *differs* from the legacy path, which is why
    /// this is opt-in per scenario.
    fn sample_scalable(
        &mut self,
        peer: PeerIdx,
        is_seed: bool,
        num_want: usize,
        rng: &mut SmallRng,
    ) -> Vec<PeerEntry> {
        // Seeds draw from the leecher region only.
        let lo = if is_seed { self.part } else { 0 };
        let region = self.live.len() - lo;
        let in_region = self.live_pos[peer].is_some_and(|p| p as usize >= lo);
        let eligible = region - usize::from(in_region);
        let target = num_want.min(eligible);
        let mut out = Vec::with_capacity(target);
        let mut drawn: Vec<u32> = Vec::with_capacity(target);
        let mut attempts = 0usize;
        let cap = 16 + 8 * num_want;
        while out.len() < target && attempts < cap {
            attempts += 1;
            let j = lo + rng.random_range(0..region);
            let j32 = j as u32;
            if drawn.contains(&j32) {
                continue;
            }
            drawn.push(j32);
            let idx = self.live[j];
            if idx == peer {
                continue;
            }
            let r = self.regs[idx].expect("live peers are registered");
            out.push(PeerEntry {
                ip: r.ip,
                port: r.port,
            });
        }
        out
    }

    /// Mark a peer as having become a seed without a full announce (used
    /// when the simulator observes the transition directly).
    pub fn mark_seed(&mut self, peer: PeerIdx) {
        match self.regs.get_mut(peer).and_then(|r| r.as_mut()) {
            Some(r) if !r.is_seed => {
                r.is_seed = true;
                self.promote(peer);
            }
            _ => {}
        }
    }

    /// Remove a peer (departure without a clean `stopped` announce).
    pub fn remove(&mut self, peer: PeerIdx) {
        let Some(old) = self.regs.get_mut(peer).and_then(|r| r.take()) else {
            return;
        };
        let mut at = self.live_pos[peer].expect("registered peers are live") as usize;
        if old.is_seed {
            // Slide to the seed-region boundary, shrink the region, then
            // the vacated slot sits at the start of the leecher region.
            self.part -= 1;
            self.swap_live(at, self.part);
            at = self.part;
        }
        self.live_pos[peer] = None;
        self.live.swap_remove(at);
        if at < self.live.len() {
            self.live_pos[self.live[at]] = Some(at as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn registers_and_counts() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(0, IpAddr(1), 6881, true, AnnounceEvent::Started, 50, &mut r);
        t.announce(
            1,
            IpAddr(2),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        assert_eq!(t.num_seeds(), 1);
        assert_eq!(t.num_leechers(), 1);
        assert_eq!(t.started, 2);
    }

    #[test]
    fn response_excludes_requester_and_caps_size() {
        let mut t = SimTracker::new();
        let mut r = rng();
        for i in 0..100 {
            t.announce(
                i,
                IpAddr(i as u32 + 1),
                6881,
                false,
                AnnounceEvent::Started,
                0,
                &mut r,
            );
        }
        let resp = t
            .announce(
                0,
                IpAddr(1),
                6881,
                false,
                AnnounceEvent::Periodic,
                50,
                &mut r,
            )
            .unwrap();
        assert_eq!(resp.peers.len(), 50);
        assert!(resp.peers.iter().all(|p| p.ip != IpAddr(1)));
        assert_eq!(resp.incomplete, 100);
    }

    #[test]
    fn stopped_removes_peer() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(
            0,
            IpAddr(1),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        assert!(t
            .announce(
                0,
                IpAddr(1),
                6881,
                false,
                AnnounceEvent::Stopped,
                50,
                &mut r
            )
            .is_none());
        assert_eq!(t.num_peers(), 0);
        assert_eq!(t.stopped, 1);
    }

    #[test]
    fn seeds_are_not_returned_to_seeds() {
        let mut t = SimTracker::new();
        let mut r = rng();
        for i in 0..5 {
            t.announce(
                i,
                IpAddr(i as u32 + 1),
                6881,
                true,
                AnnounceEvent::Started,
                50,
                &mut r,
            );
        }
        for i in 5..8 {
            t.announce(
                i,
                IpAddr(i as u32 + 1),
                6881,
                false,
                AnnounceEvent::Started,
                50,
                &mut r,
            );
        }
        // A seed announcing sees only the 3 leechers.
        let resp = t
            .announce(
                0,
                IpAddr(1),
                6881,
                true,
                AnnounceEvent::Periodic,
                50,
                &mut r,
            )
            .unwrap();
        assert_eq!(resp.peers.len(), 3);
        // A leecher still sees everyone else.
        let resp = t
            .announce(
                5,
                IpAddr(6),
                6881,
                false,
                AnnounceEvent::Periodic,
                50,
                &mut r,
            )
            .unwrap();
        assert_eq!(resp.peers.len(), 7);
    }

    #[test]
    fn completed_flips_seed_status() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(
            0,
            IpAddr(1),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        t.announce(
            0,
            IpAddr(1),
            6881,
            true,
            AnnounceEvent::Completed,
            50,
            &mut r,
        );
        assert_eq!(t.num_seeds(), 1);
        assert_eq!(t.completed, 1);
    }

    #[test]
    fn mark_seed_and_remove() {
        let mut t = SimTracker::new();
        let mut r = rng();
        t.announce(
            3,
            IpAddr(9),
            6881,
            false,
            AnnounceEvent::Started,
            50,
            &mut r,
        );
        t.mark_seed(3);
        assert_eq!(t.num_seeds(), 1);
        t.remove(3);
        assert_eq!(t.num_peers(), 0);
    }
}
