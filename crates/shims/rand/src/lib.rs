//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment for this repository has no crates.io access, so
//! the workspace ships its own small, deterministic PRNG under the same
//! crate name. Only the API surface the workspace actually uses is
//! provided: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the contract here — every simulator trace, golden
//! fixture, and parallel-vs-sequential comparison in this repo depends on
//! `SmallRng::seed_from_u64(s)` producing the same stream forever. Do not
//! change the generator or the seeding path without regenerating the
//! golden fixtures (see `tests/golden_trace.rs` at the workspace root).

/// The core of a random number generator: object-safe raw output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (the same scheme
    /// the real `rand` uses, so small seeds still give well-mixed state).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Build by drawing a seed from another generator.
    fn from_rng(rng: &mut impl RngCore) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// Types a range expression can be sampled from.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                // The inclusive upper bound is hit with probability ~0 for
                // floats; sampling the closed interval as half-open keeps
                // the arithmetic simple and is indistinguishable in use.
                start + (unit as $t) * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++.
    ///
    /// Not the bit-stream of the real `rand` crate's `SmallRng`, but the
    /// workspace only requires determinism, not upstream compatibility.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    0xFE9D5C2A7B3E8F41,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (&mut *rng).random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..=3usize);
            assert!(w <= 3);
            let f = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let n = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1900..3100).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
