//! # bt-bench — benchmark and figure-regeneration harness
//!
//! * [`experiments`] — one driver per paper table/figure/ablation,
//!   returning structured results;
//! * [`report`] — plain-text tables, bars and sparklines for terminal
//!   rendering.
//!
//! The `figures` binary glues the two together (`figures --help`), and
//! the Criterion benches in `benches/` measure the hot paths (codec,
//! picker, choker, event queue, whole-swarm steps).

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
