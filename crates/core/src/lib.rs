//! # bt-core — the BitTorrent client engine
//!
//! A complete, transport-agnostic implementation of the client the paper
//! instruments (mainline 4.0.2 semantics): peer-set management, interest
//! tracking, request pipelining with strict priority and end game mode,
//! hash verification, and the choke algorithm in leecher and seed state.
//!
//! * [`builder`] — named-parameter [`builder::EngineBuilder`] construction;
//! * [`config`] — the §III-C default parameters;
//! * [`connection`] — per-peer protocol state;
//! * [`content`] — real-bytes vs. metadata-only data modes;
//! * [`driver`] — the sans-io [`driver::Input`]/[`driver::Actions`]
//!   contract every driver follows;
//! * [`engine`] — the [`engine::Engine`] state machine and its
//!   [`engine::Action`] effect type;
//! * [`error`] — typed [`error::EngineError`] protocol violations;
//! * [`metrics`] — optional `bt-obs` runtime telemetry
//!   ([`metrics::EngineMetrics`]).
//!
//! The engine is sans-io: it contains no clock, no sockets and no
//! randomness source of its own beyond a seeded PRNG. A driver (the
//! `bt-sim` discrete-event simulator, the `bt-net` real-socket runtime,
//! or a test) feeds [`driver::Input`] events through
//! [`engine::Engine::handle`] and executes the returned actions, so
//! identical inputs produce identical outputs — the property the
//! simulator and the regression tests rely on.

#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod connection;
pub mod content;
pub mod driver;
pub mod engine;
pub mod error;
pub mod metrics;

pub use builder::EngineBuilder;
pub use config::Config;
pub use connection::{ConnId, Connection};
pub use content::{DataMode, PieceBuffer};
pub use driver::{Actions, Input};
pub use engine::{
    Action, ChokeAudit, ChokeAuditEntry, ChokeOutcome, ChokeRoundStats, Engine, PeerCaps, PickEvent,
};
pub use error::EngineError;
pub use metrics::EngineMetrics;
