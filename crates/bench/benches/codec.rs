//! Micro-benchmarks of the wire formats: peer message codec, bencoding,
//! SHA-1, and bitfield encoding.

use bt_piece::Bitfield;
use bt_wire::bencode;
use bt_wire::message::{BlockRef, Decoder, Message};
use bt_wire::metainfo::SyntheticContent;
use bt_wire::sha1::sha1;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_message_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let piece_msg = Message::Piece {
        block: BlockRef {
            piece: 3,
            offset: 16384,
            length: 16384,
        },
        data: Bytes::from(vec![0xA5u8; 16384]),
    };
    let encoded = piece_msg.encode_to_vec();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_piece_16k", |b| {
        b.iter(|| black_box(piece_msg.encode_to_vec()))
    });
    group.bench_function("decode_piece_16k", |b| {
        b.iter(|| {
            let mut dec = Decoder::default();
            dec.feed(&encoded);
            black_box(dec.next_message().unwrap())
        })
    });
    let small = Message::Request(BlockRef {
        piece: 9,
        offset: 0,
        length: 16384,
    });
    group.bench_function("encode_request", |b| {
        b.iter(|| black_box(small.encode_to_vec()))
    });
    group.finish();
}

fn bench_bencode(c: &mut Criterion) {
    let content = SyntheticContent::generate("bench", 1, 64 * 256 * 1024, 256 * 1024);
    let torrent_file = content.metainfo.encode();
    let mut group = c.benchmark_group("bencode");
    group.throughput(Throughput::Bytes(torrent_file.len() as u64));
    group.bench_function("decode_metainfo", |b| {
        b.iter(|| black_box(bencode::decode(&torrent_file).unwrap()))
    });
    group.bench_function("parse_metainfo", |b| {
        b.iter(|| black_box(bt_wire::Metainfo::parse(&torrent_file).unwrap()))
    });
    group.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let block = vec![0x5Au8; 16384];
    let piece = vec![0x5Au8; 256 * 1024];
    let mut group = c.benchmark_group("sha1");
    group.throughput(Throughput::Bytes(block.len() as u64));
    group.bench_function("block_16k", |b| b.iter(|| black_box(sha1(&block))));
    group.throughput(Throughput::Bytes(piece.len() as u64));
    group.bench_function("piece_256k", |b| b.iter(|| black_box(sha1(&piece))));
    group.finish();
}

fn bench_bitfield(c: &mut Criterion) {
    let mut bf = Bitfield::new(2800); // torrent-7-sized piece map
    for i in (0..2800).step_by(3) {
        bf.set(i);
    }
    let wire = bf.to_wire();
    let mut group = c.benchmark_group("bitfield");
    group.bench_function("to_wire_2800", |b| b.iter(|| black_box(bf.to_wire())));
    group.bench_function("from_wire_2800", |b| {
        b.iter(|| black_box(Bitfield::from_wire(&wire, 2800)))
    });
    let other = Bitfield::full(2800);
    group.bench_function("interest_check", |b| {
        b.iter(|| black_box(bf.is_interested_in(&other)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_message_codec,
    bench_bencode,
    bench_sha1,
    bench_bitfield
);
criterion_main!(benches);
