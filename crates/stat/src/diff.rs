//! `btstat diff`: cross-run comparison with regression attribution.
//!
//! Two layers. [`diff_runs`] compares every shared-or-one-sided metric
//! (counters, gauges, histogram p50/p95/p99) between a baseline run A
//! and a candidate run B, as `(value, baseline, delta %)` rows.
//! [`attribute`] then answers the question a headline delta raises:
//! *which code paid for it* — per-span self-time deltas from the two
//! profiles, ranked by absolute contribution to the total shift, each
//! with its share of that shift. The collapsed-stack exports
//! ([`ProfileDoc::to_collapsed`]) drop straight into inferno or
//! speedscope for the visual version of the same answer.

use bt_obs::schema::{MetricsDoc, ProfileDoc};

/// One metric's before/after row.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric key (`name`, `name{label}`, or `name/pNN` for histogram
    /// quantiles).
    pub key: String,
    /// Baseline (run A) value.
    pub baseline: f64,
    /// Candidate (run B) value.
    pub value: f64,
    /// `value - baseline` as a percentage of the baseline (`None` when
    /// the baseline is zero and the delta is not).
    pub pct: Option<f64>,
}

impl MetricDelta {
    fn new(key: String, baseline: f64, value: f64) -> MetricDelta {
        let pct = if baseline != 0.0 {
            Some((value - baseline) / baseline * 100.0)
        } else if value == 0.0 {
            Some(0.0)
        } else {
            None
        };
        MetricDelta {
            key,
            baseline,
            value,
            pct,
        }
    }

    fn to_json(&self) -> String {
        use bt_obs::series::json_f64;
        let pct = self
            .pct
            .map(|p| json_f64((p * 100.0).round() / 100.0))
            .unwrap_or_else(|| "null".to_string());
        format!(
            "{{\"key\":\"{}\",\"baseline\":{},\"value\":{},\"pct\":{}}}",
            self.key,
            json_f64(self.baseline),
            json_f64(self.value),
            pct
        )
    }
}

/// One span's contribution to the fleet's self-time shift.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanDelta {
    /// `/`-joined span path.
    pub path: String,
    /// Baseline (run A) self time, µs.
    pub baseline_self_us: u64,
    /// Candidate (run B) self time, µs.
    pub value_self_us: u64,
    /// Signed self-time delta, µs.
    pub delta_us: i64,
    /// `|delta|` as a percentage of the total absolute shift across
    /// all spans (so the table reads "this span explains N% of the
    /// change").
    pub share_pct: f64,
}

impl SpanDelta {
    fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"baseline_self_us\":{},\"value_self_us\":{},\
             \"delta_us\":{},\"share_pct\":{}}}",
            self.path,
            self.baseline_self_us,
            self.value_self_us,
            self.delta_us,
            bt_obs::series::json_f64((self.share_pct * 100.0).round() / 100.0)
        )
    }
}

/// A full A-vs-B comparison, ready to render.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunDiff {
    /// Per-metric rows, sorted by key.
    pub metrics: Vec<MetricDelta>,
    /// Per-span attribution, ranked by `|delta_us|` descending.
    pub spans: Vec<SpanDelta>,
}

impl RunDiff {
    /// Render as one JSON document (deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":\"btstat-diff-v1\",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&m.to_json());
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Render the human table (metric rows, then span attribution).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>9}\n",
            "metric", "baseline", "value", "delta"
        ));
        for m in &self.metrics {
            let pct = m
                .pct
                .map(|p| format!("{p:+.1}%"))
                .unwrap_or_else(|| "new".to_string());
            out.push_str(&format!(
                "{:<44} {:>14} {:>14} {:>9}\n",
                m.key,
                trim_f64(m.baseline),
                trim_f64(m.value),
                pct
            ));
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "\n{:<44} {:>12} {:>12} {:>10} {:>7}\n",
                "span (self µs)", "baseline", "value", "delta", "share"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<44} {:>12} {:>12} {:>+10} {:>6.1}%\n",
                    s.path, s.baseline_self_us, s.value_self_us, s.delta_us, s.share_pct
                ));
            }
        }
        out
    }
}

fn trim_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Compare two runs' final metrics snapshots. Keys present in only one
/// run appear with a zero on the other side.
pub fn diff_runs(a: &MetricsDoc, b: &MetricsDoc) -> RunDiff {
    let mut metrics = Vec::new();

    let counter_keys: std::collections::BTreeSet<_> =
        a.counters.keys().chain(b.counters.keys()).collect();
    for key in counter_keys {
        metrics.push(MetricDelta::new(
            key.clone(),
            a.counters.get(key).copied().unwrap_or(0) as f64,
            b.counters.get(key).copied().unwrap_or(0) as f64,
        ));
    }
    let gauge_keys: std::collections::BTreeSet<_> =
        a.gauges.keys().chain(b.gauges.keys()).collect();
    for key in gauge_keys {
        metrics.push(MetricDelta::new(
            key.clone(),
            a.gauges.get(key).copied().unwrap_or(0) as f64,
            b.gauges.get(key).copied().unwrap_or(0) as f64,
        ));
    }
    let hist_keys: std::collections::BTreeSet<_> =
        a.histograms.keys().chain(b.histograms.keys()).collect();
    for key in hist_keys {
        for (tag, q) in [("p50", 50u64), ("p95", 95), ("p99", 99)] {
            metrics.push(MetricDelta::new(
                format!("{key}/{tag}"),
                a.histograms
                    .get(key)
                    .map(|h| h.quantile(q, 100))
                    .unwrap_or(0) as f64,
                b.histograms
                    .get(key)
                    .map(|h| h.quantile(q, 100))
                    .unwrap_or(0) as f64,
            ));
        }
    }
    metrics.sort_by(|x, y| x.key.cmp(&y.key));
    RunDiff {
        metrics,
        spans: Vec::new(),
    }
}

/// Rank every span path by its contribution to the total self-time
/// shift between two profiles. Paths in only one profile count from
/// zero; unchanged spans are dropped. `top` caps the table (0 = all).
pub fn attribute(a: &ProfileDoc, b: &ProfileDoc, top: usize) -> Vec<SpanDelta> {
    let paths: std::collections::BTreeSet<_> = a.spans.keys().chain(b.spans.keys()).collect();
    let mut deltas = Vec::new();
    let mut total_shift = 0u64;
    for path in paths {
        let base = a.spans.get(path).map(|s| s.self_us).unwrap_or(0);
        let val = b.spans.get(path).map(|s| s.self_us).unwrap_or(0);
        if base == val {
            continue;
        }
        let delta = val as i64 - base as i64;
        total_shift += delta.unsigned_abs();
        deltas.push(SpanDelta {
            path: path.join("/"),
            baseline_self_us: base,
            value_self_us: val,
            delta_us: delta,
            share_pct: 0.0,
        });
    }
    for d in &mut deltas {
        d.share_pct = if total_shift == 0 {
            0.0
        } else {
            d.delta_us.unsigned_abs() as f64 / total_shift as f64 * 100.0
        };
    }
    deltas.sort_by(|x, y| {
        y.delta_us
            .unsigned_abs()
            .cmp(&x.delta_us.unsigned_abs())
            .then_with(|| x.path.cmp(&y.path))
    });
    if top > 0 {
        deltas.truncate(top);
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_obs::schema::{HistogramDoc, SpanDoc};

    fn metrics(n: u64, bound: u64) -> MetricsDoc {
        let mut doc = MetricsDoc::default();
        doc.counters.insert("sim.events".to_string(), n);
        doc.gauges.insert("sim.live_peers".to_string(), n as i64);
        doc.histograms.insert(
            "lat".to_string(),
            HistogramDoc {
                count: 10,
                sum: bound * 10,
                buckets: vec![(bound, 10)],
                overflow: 0,
            },
        );
        doc
    }

    fn profile(pairs: &[(&str, u64)]) -> ProfileDoc {
        let mut doc = ProfileDoc::default();
        for &(path, self_us) in pairs {
            doc.spans.insert(
                path.split('/').map(str::to_string).collect(),
                SpanDoc {
                    count: 1,
                    total_us: self_us,
                    self_us,
                    buckets: HistogramDoc::default(),
                },
            );
        }
        doc
    }

    #[test]
    fn diff_covers_both_sides_and_quantiles() {
        let mut a = metrics(100, 10);
        a.counters.insert("only.a".to_string(), 7);
        let b = metrics(150, 100);
        let diff = diff_runs(&a, &b);
        let by_key = |k: &str| diff.metrics.iter().find(|m| m.key == k).unwrap().clone();
        assert_eq!(by_key("sim.events").pct, Some(50.0));
        let only_a = by_key("only.a");
        assert_eq!((only_a.baseline, only_a.value), (7.0, 0.0));
        assert_eq!(only_a.pct, Some(-100.0));
        assert_eq!(by_key("lat/p95").baseline, 10.0);
        assert_eq!(by_key("lat/p95").value, 100.0);
        // Sorted by key, render stable.
        let keys: Vec<_> = diff.metrics.iter().map(|m| m.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(diff.render().contains("+50.0%"));
    }

    #[test]
    fn attribution_ranks_by_contribution() {
        let a = profile(&[("tick", 100), ("tick/choke", 50), ("tick/pick", 30)]);
        let b = profile(&[
            ("tick", 100),
            ("tick/choke", 350),
            ("tick/pick", 10),
            ("io", 80),
        ]);
        let deltas = attribute(&a, &b, 0);
        assert_eq!(deltas[0].path, "tick/choke");
        assert_eq!(deltas[0].delta_us, 300);
        assert_eq!(deltas[1].path, "io");
        assert_eq!(deltas[2].path, "tick/pick");
        let total: f64 = deltas.iter().map(|d| d.share_pct).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((deltas[0].share_pct - 75.0).abs() < 1e-9);
        // `tick` unchanged: not listed.
        assert!(deltas.iter().all(|d| d.path != "tick"));
        assert_eq!(attribute(&a, &b, 2).len(), 2);
    }

    #[test]
    fn diff_json_is_valid_and_deterministic() {
        let a = metrics(100, 10);
        let b = metrics(150, 100);
        let mut diff = diff_runs(&a, &b);
        diff.spans = attribute(&profile(&[("tick", 10)]), &profile(&[("tick", 30)]), 0);
        let json = diff.to_json();
        assert_eq!(json, diff.to_json());
        let parsed = bt_obs::parse_json(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(bt_obs::JsonValue::as_str),
            Some("btstat-diff-v1")
        );
        assert!(!parsed.get("spans").unwrap().as_array().unwrap().is_empty());
    }
}
