//! The causal trace layer (DESIGN.md §11) must be a free observer with
//! deterministic exports, in the same discipline as the series tests:
//!
//! 1. **Export determinism** — the sorted JSONL and Chrome trace-event
//!    JSON for a scenario are byte-identical whether the sweep runs on
//!    1, 2, or 8 workers, and across repeated runs (events are sorted
//!    by virtual time, never wall time or thread arrival order).
//! 2. **Non-perturbation** — a traced run's instrumented trace equals
//!    the bare run's, so the golden fingerprints are untouched (the
//!    golden guard in `golden_traces.rs` pins the 10k digest too).
//! 3. **Flight recorder** — a forced invariant violation (tightened
//!    thresholds) dumps a self-contained bundle whose explanation names
//!    the starved peer, and piece lifecycles in the export run from
//!    `injected` to `k_replicated`.

use bt_repro::analysis::live::Thresholds;
use bt_repro::obs::{FlightRecorder, Registry, Tracer};
use bt_repro::sim::Swarm;
use bt_repro::torrents::{run_scenario, run_scenarios_parallel, torrent, RunConfig};

#[test]
fn trace_exports_are_byte_identical_across_job_counts() {
    let cfg = RunConfig {
        trace_sample: Some(2),
        ..RunConfig::quick()
    };
    let specs = [torrent(2), torrent(19), torrent(3)];
    let baseline = run_scenarios_parallel(&cfg, &specs, 1, |_| {});
    for o in &baseline {
        let jsonl = o.trace_jsonl.as_ref().expect("causal trace requested");
        assert!(
            jsonl.contains("\"name\":\"injected\""),
            "torrent {}: no piece lifecycle sampled",
            o.spec.id
        );
        assert!(
            o.trace_chrome
                .as_ref()
                .is_some_and(|c| c.contains("\"traceEvents\"")),
            "torrent {}: no Chrome export",
            o.spec.id
        );
    }
    for jobs in [2, 8] {
        let parallel = run_scenarios_parallel(&cfg, &specs, jobs, |_| {});
        for (seq, par) in baseline.iter().zip(&parallel) {
            assert_eq!(
                seq.trace_jsonl, par.trace_jsonl,
                "jobs={jobs} torrent {}: trace JSONL drifted",
                seq.spec.id
            );
            assert_eq!(
                seq.trace_chrome, par.trace_chrome,
                "jobs={jobs} torrent {}: Chrome JSON drifted",
                seq.spec.id
            );
        }
    }
}

#[test]
fn trace_exports_are_byte_identical_across_runs() {
    let cfg = RunConfig {
        trace_sample: Some(1),
        ..RunConfig::quick()
    };
    let a = run_scenario(&torrent(2), &cfg);
    let b = run_scenario(&torrent(2), &cfg);
    assert_eq!(
        a.trace_jsonl, b.trace_jsonl,
        "JSONL export is not a pure function of the spec"
    );
    assert_eq!(
        a.trace_chrome, b.trace_chrome,
        "Chrome export is not a pure function of the spec"
    );
}

#[test]
fn tracing_at_full_sampling_does_not_perturb_the_run() {
    let bare_cfg = RunConfig::quick();
    let traced_cfg = RunConfig {
        trace_sample: Some(1),
        ..RunConfig::quick()
    };
    let bare = run_scenario(&torrent(3), &bare_cfg);
    let traced = run_scenario(&torrent(3), &traced_cfg);
    assert_eq!(
        bare.trace.events, traced.trace.events,
        "the causal tracer changed the instrumented trace"
    );
    assert_eq!(bare.result.completion, traced.result.completion);
    assert_eq!(bare.result.events_processed, traced.result.events_processed);
}

/// Every sampled piece lifecycle that closes must chain
/// `injected → verified… → k_replicated`, and at least one must close
/// in a completing swarm.
#[test]
fn sampled_lifecycles_run_from_injection_to_k_replication() {
    let cfg = RunConfig {
        trace_sample: Some(1),
        ..RunConfig::quick()
    };
    let outcome = run_scenario(&torrent(2), &cfg);
    let jsonl = outcome.trace_jsonl.expect("causal trace requested");
    let mut complete = 0;
    for line in jsonl
        .lines()
        .filter(|l| l.contains("\"name\":\"k_replicated\""))
    {
        let id = line
            .split("\"id\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .expect("k_replicated line carries an id");
        let opened = jsonl
            .lines()
            .any(|l| l.contains("\"name\":\"injected\"") && l.contains(&format!("\"id\":{id},")));
        assert!(opened, "piece {id} closed without an injected event");
        complete += 1;
    }
    assert!(complete > 0, "no sampled lifecycle reached k_replicated");
    assert!(
        jsonl.contains("\"name\":\"round\"") && jsonl.contains("\"name\":\"audit\""),
        "no full choke-round audit in the export"
    );
}

/// Tightening the live-monitor thresholds until they must trip forces a
/// flight-recorder dump; the bundle is self-contained JSON whose trace
/// slice and explanation name the starved peer.
#[test]
fn forced_invariant_violation_dumps_a_bundle_naming_the_starved_peer() {
    let dir = std::env::temp_dir().join(format!("bt-flightrec-inv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = bt_repro::torrents::PresetOptions {
        seed: 42,
        pieces: 8,
        duration: bt_repro::wire::time::Duration::from_secs(900),
        ..Default::default()
    };
    let spec = bt_repro::torrents::scenarios::mega_flash_crowd(300, &opts);
    let recorder = FlightRecorder::new(&dir, 4096, spec.seed);
    let tracer = Tracer::new(spec.seed, 1).with_flight(recorder.clone());
    let thresholds = Thresholds {
        // A leecher swarm can never reciprocate 200% of its unchokes,
        // and one virtual second without progress is routine: the first
        // health sample after warm-up must trip.
        min_reciprocation: 2.0,
        max_starvation_secs: 1,
        ..Thresholds::default()
    };
    let result = Swarm::new(spec)
        .with_metrics(Registry::new_manual())
        .with_health(thresholds)
        .with_trace(tracer)
        .with_flight_recorder(recorder)
        .run();
    let health = result.health.expect("health monitors attached");
    assert!(!health.healthy(), "tightened thresholds failed to trip");

    let bundle_path = dir.join("flightrec-0.json");
    let bundle = std::fs::read_to_string(&bundle_path)
        .unwrap_or_else(|e| panic!("no bundle at {}: {e}", bundle_path.display()));
    assert!(bundle.contains("\"reason\":\"invariant:"), "{bundle:.200}");
    assert!(
        bundle.contains("worst-starved peer:"),
        "explanation does not name the starved peer"
    );
    assert!(
        bundle.contains("\"seed\":42"),
        "bundle is not self-contained"
    );
    assert!(bundle.contains("\"trace\":["), "bundle has no trace slice");
    let _ = std::fs::remove_dir_all(&dir);
}
