//! End-to-end tests of the post-paper protocol extensions through the
//! full simulator: Fast Extension bootstrap and PEX peer discovery.

use bt_repro::analysis::ReplicationSeries;
use bt_repro::core::Config;
use bt_repro::instrument::trace::TraceEvent;
use bt_repro::sim::{BehaviorProfile, CapacityClass, Role, Swarm, SwarmSpec};
use bt_repro::torrents::scenarios::{self, PresetOptions};
use bt_repro::wire::peer_id::ClientKind;
use bt_repro::wire::time::Duration;

/// First-block latency of a late joiner, with and without the Fast
/// Extension: the allowed-fast bootstrap must never be slower, and
/// should typically be much faster.
#[test]
fn fast_extension_cuts_first_block_latency() {
    let run = |fast: bool| -> f64 {
        let cfg = Config {
            fast_extension: fast,
            ..Config::default()
        };
        let mut peers = vec![BehaviorProfile::seed(), BehaviorProfile::seed()];
        for i in 0..12 {
            let mut p = BehaviorProfile::leecher(Duration::from_secs(i));
            p.capacity = CapacityClass::Dsl;
            p.prepopulate = true;
            peers.push(p);
        }
        let join = 200u64;
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: ClientKind::Mainline402,
            capacity: CapacityClass::Default,
            join_at: Duration::from_secs(join),
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
        let local = peers.len() - 1;
        let spec = SwarmSpec {
            seed: 5,
            total_len: 32 * 256 * 1024,
            piece_len: 256 * 1024,
            duration: Duration::from_secs(3600),
            base_config: cfg,
            peers,
            local: Some(local),
            ..SwarmSpec::default()
        };
        let result = Swarm::new(spec).run();
        let trace = result.trace.unwrap();
        let first = trace
            .iter()
            .find(|(_, e)| matches!(e, TraceEvent::BlockReceived { .. }))
            .map(|(t, _)| t.as_secs_f64() - join as f64)
            .expect("late joiner received at least one block");
        first
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with <= without,
        "fast extension slowed the first block: {with} vs {without}"
    );
}

/// Under a rationing tracker, PEX must grow the late joiner's peer set
/// well beyond what the tracker alone provides.
#[test]
fn pex_recovers_peer_set_under_rationed_tracker() {
    let mean_peer_set = |pex: bool| -> f64 {
        let mut opts = PresetOptions {
            pieces: 24,
            duration: Duration::from_secs(3600),
            ..PresetOptions::default()
        };
        opts.config.pex_enabled = pex;
        let mut spec = scenarios::steady_state(2, 20, 120, &opts);
        spec.tracker_response_cap = Some(2);
        let result = Swarm::new(spec).run();
        let trace = result.trace.unwrap();
        ReplicationSeries::from_trace(&trace)
            .leecher_state(&trace)
            .mean_peer_set()
    };
    let without = mean_peer_set(false);
    let with = mean_peer_set(true);
    assert!(
        with > without * 1.3,
        "pex should grow the peer set substantially: {with} vs {without}"
    );
}

/// With both extensions on, everything still completes and verifies
/// (real-data mode).
#[test]
fn extensions_compose_with_real_data() {
    let cfg = Config {
        fast_extension: true,
        pex_enabled: true,
        ..Config::default()
    };
    let mut spec = scenarios::flash_crowd(
        6,
        &PresetOptions {
            pieces: 8,
            duration: Duration::from_secs(6000),
            config: cfg,
            ..PresetOptions::default()
        },
    );
    spec.real_data = true;
    let result = Swarm::new(spec).run();
    assert_eq!(
        result.completed_peers, 6,
        "every leecher verifies and finishes"
    );
    let trace = result.trace.unwrap();
    assert!(!trace
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::PieceFailed { .. })));
}
