//! Offline fleet analytics over `bt-*` run artifacts.
//!
//! Every run mode in this workspace already emits deterministic,
//! byte-stable artifacts — metrics JSONL, series JSON, span profiles,
//! causal trace JSONL, flight-recorder bundles. This crate is the layer
//! that makes those artifacts *comparable*: it loads the one-directory
//! layout `swarmrun --emit-dir` writes ([`RunArtifacts`]) and supports
//! three operations, mirrored by the `btstat` CLI:
//!
//! * **merge** ([`FleetReport::merge`]) — commutative aggregation
//!   across N runs: counters summed, histograms bucket-merged with
//!   exact fleet-wide quantiles, call-tree profiles merged, series
//!   overlaid per run key, paper-claim verdicts re-asserted over the
//!   merged data. The report (JSON or self-contained HTML) is
//!   byte-identical regardless of input order.
//! * **diff** ([`diff::diff_runs`], [`diff::attribute`]) — per-metric
//!   deltas between two runs plus regression *attribution*: per-span
//!   self-time deltas ranked by contribution to the total shift, and
//!   collapsed-stack flamegraph export for inferno/speedscope.
//! * **bisect** ([`bisect::bisect_traces`]) — the determinism
//!   debugger: when two digests disagree, walk both trace JSONLs in
//!   lockstep and report the first diverging event with its ±K window.
//!
//! Everything here is deterministic and offline; the only inputs are
//! artifact bytes, the only outputs are strings.

pub mod artifacts;
pub mod bisect;
pub mod diff;
pub mod merge;

pub use artifacts::{RunArtifacts, StatError};
pub use bisect::{bisect_traces, BisectReport};
pub use diff::{attribute, diff_runs, MetricDelta, RunDiff, SpanDelta};
pub use merge::FleetReport;
