//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms.
//!
//! Instruments are registered by a `&'static str` name plus an optional
//! runtime label (e.g. per-peer `"peer3"`); registering the same
//! `(name, label)` twice returns a handle to the *same* underlying
//! instrument, so independent components (and independent engines
//! sharing a swarm-wide registry) aggregate naturally. Handles are
//! `Arc`-backed: clone them freely, increment them from hot paths.
//!
//! [`Registry::snapshot`] walks the instruments in `(name, label)`
//! order, which makes the serialized snapshot deterministic whenever
//! the underlying values are (same inputs + a virtual [`TimeSource`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{EventSink, Field, Level, Record};
use crate::time::TimeSource;

/// Preset histogram bucket boundaries (inclusive upper bounds).
///
/// Values above the last bound land in an implicit overflow bucket.
pub mod buckets {
    /// Latency in microseconds: 1 µs … 10 s.
    pub const LATENCY_US: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

    /// Queue/buffer depths (items or frames).
    pub const DEPTH: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024];

    /// Sizes in bytes: 64 B … 16 MiB.
    pub const BYTES: &[u64] = &[
        64,
        1 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        16 << 20,
    ];
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds; `counts` has one extra overflow slot.
    bounds: &'static [u64],
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram with deterministic integer quantiles.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        let counts: Vec<u64> = core
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q_num: u64, q_den: u64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based, rounded up.
            let rank = (total * q_num).div_ceil(q_den).max(1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Overflow bucket reports the largest finite bound.
                    return core
                        .bounds
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| core.bounds.last().copied().unwrap_or(u64::MAX));
                }
            }
            core.bounds.last().copied().unwrap_or(0)
        };
        HistogramSnapshot {
            count: total,
            sum: core.sum.load(Ordering::Relaxed),
            p50: quantile(50, 100),
            p95: quantile(95, 100),
            p99: quantile(99, 100),
            buckets: core
                .bounds
                .iter()
                .zip(counts.iter())
                .filter(|(_, &c)| c > 0)
                .map(|(&b, &c)| (b, c))
                .collect(),
            overflow: counts[core.bounds.len()],
        }
    }
}

/// Point-in-time view of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Median, as the upper bound of the bucket holding the p50 sample.
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Non-empty finite buckets as `(upper_bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last finite bound.
    pub overflow: u64,
}

#[derive(Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registration key: static name + runtime label (usually empty).
type Key = (&'static str, String);

#[derive(Debug)]
struct Inner {
    time: TimeSource,
    instruments: Mutex<BTreeMap<Key, Instrument>>,
    sink: Mutex<Option<Arc<dyn EventSink>>>,
    /// Minimum level that reaches the sink; `LEVEL_OFF` = no sink.
    min_level: AtomicU8,
}

const LEVEL_OFF: u8 = u8::MAX;

/// The shared registry; see the [module docs](self). Cloning is cheap
/// and all clones share the same instruments, clock and sink.
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// New empty registry reading time from `time`.
    pub fn new(time: TimeSource) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                time,
                instruments: Mutex::new(BTreeMap::new()),
                sink: Mutex::new(None),
                min_level: AtomicU8::new(LEVEL_OFF),
            }),
        }
    }

    /// Convenience: registry on a wall clock.
    pub fn new_wall() -> Registry {
        Registry::new(TimeSource::wall())
    }

    /// Convenience: registry on a virtual (manually advanced) clock.
    pub fn new_manual() -> Registry {
        Registry::new(TimeSource::manual())
    }

    /// The registry's clock.
    pub fn time(&self) -> &TimeSource {
        &self.inner.time
    }

    /// Current clock reading in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.inner.time.now_micros()
    }

    /// Get-or-create an unlabeled counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, "")
    }

    /// Get-or-create a labeled counter (e.g. per-peer).
    pub fn counter_with(&self, name: &'static str, label: &str) -> Counter {
        let mut map = self.inner.instruments.lock().unwrap();
        match map
            .entry((name, label.to_string()))
            .or_insert_with(|| Instrument::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} registered as a non-counter"),
        }
    }

    /// Get-or-create an unlabeled gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauge_with(name, "")
    }

    /// Get-or-create a labeled gauge.
    pub fn gauge_with(&self, name: &'static str, label: &str) -> Gauge {
        let mut map = self.inner.instruments.lock().unwrap();
        match map
            .entry((name, label.to_string()))
            .or_insert_with(|| Instrument::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} registered as a non-gauge"),
        }
    }

    /// Get-or-create an unlabeled histogram over `bounds` (see
    /// [`buckets`] for presets).
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind
    /// or with different bounds.
    pub fn histogram(&self, name: &'static str, bounds: &'static [u64]) -> Histogram {
        self.histogram_with(name, "", bounds)
    }

    /// Get-or-create a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        label: &str,
        bounds: &'static [u64],
    ) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram {name:?} needs at least one bucket"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly increasing"
        );
        let mut map = self.inner.instruments.lock().unwrap();
        match map.entry((name, label.to_string())).or_insert_with(|| {
            let counts: Box<[AtomicU64]> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Instrument::Histogram(Histogram(Arc::new(HistogramCore {
                bounds,
                counts,
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        }) {
            Instrument::Histogram(h) => {
                assert!(
                    std::ptr::eq(h.0.bounds, bounds),
                    "metric {name:?} re-registered with different bounds"
                );
                h.clone()
            }
            _ => panic!("metric {name:?} registered as a non-histogram"),
        }
    }

    /// Install `sink` and forward records at `min_level` and above.
    pub fn set_sink(&self, sink: Arc<dyn EventSink>, min_level: Level) {
        *self.inner.sink.lock().unwrap() = Some(sink);
        self.inner
            .min_level
            .store(min_level as u8, Ordering::Release);
    }

    /// Remove any installed sink (log calls become near-free again).
    pub fn clear_sink(&self) {
        self.inner.min_level.store(LEVEL_OFF, Ordering::Release);
        *self.inner.sink.lock().unwrap() = None;
    }

    /// Would a record at `level` reach the sink? One relaxed atomic load.
    #[inline]
    pub fn log_enabled(&self, level: Level) -> bool {
        level as u8 >= self.inner.min_level.load(Ordering::Relaxed)
    }

    /// Emit a structured record (prefer the [`obs_info!`](crate::obs_info)
    /// family of macros, which check [`log_enabled`](Self::log_enabled)
    /// before evaluating fields).
    pub fn log(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: &[Field<'_>],
    ) {
        if !self.log_enabled(level) {
            return;
        }
        let sink = self.inner.sink.lock().unwrap().clone();
        if let Some(sink) = sink {
            sink.emit(&Record {
                at_micros: self.now_micros(),
                level,
                target,
                name,
                fields,
            });
        }
    }

    /// Point-in-time snapshot of every instrument, sorted by
    /// `(name, label)`, timestamped from the registry clock.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.instruments.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for ((name, label), inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => counters.push((*name, label.clone(), c.get())),
                Instrument::Gauge(g) => gauges.push((*name, label.clone(), g.get())),
                Instrument::Histogram(h) => histograms.push((*name, label.clone(), h.snapshot())),
            }
        }
        Snapshot {
            at_micros: self.now_micros(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time, serialization-ready view of a [`Registry`].
///
/// Entries are `(name, label, value)` sorted by `(name, label)`;
/// serializers render `name` alone when the label is empty and
/// `name{label}` otherwise.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Clock reading (µs) when the snapshot was taken.
    pub at_micros: u64,
    /// All counters.
    pub counters: Vec<(&'static str, String, u64)>,
    /// All gauges.
    pub gauges: Vec<(&'static str, String, i64)>,
    /// All histograms.
    pub histograms: Vec<(&'static str, String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the counter `name{label}`, if present.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, l, _)| *n == name && l == label)
            .map(|(_, _, v)| *v)
    }

    /// Value of the gauge `name{label}`, if present.
    pub fn gauge(&self, name: &str, label: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, l, _)| *n == name && l == label)
            .map(|(_, _, v)| *v)
    }

    /// The histogram `name{label}`, if present.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, l, _)| *n == name && l == label)
            .map(|(_, _, h)| h)
    }

    /// Sum of a counter across every label (e.g. total bytes over all
    /// per-peer `net.bytes_in` counters).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _, _)| *n == name)
            .map(|(_, _, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new_manual();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        // Same name → same instrument.
        assert_eq!(reg.counter("a.count").get(), 5);

        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("a.depth").get(), 5);
    }

    #[test]
    fn labels_separate_instruments() {
        let reg = Registry::new_manual();
        reg.counter_with("bytes", "p0").add(10);
        reg.counter_with("bytes", "p1").add(32);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("bytes", "p0"), Some(10));
        assert_eq!(snap.counter("bytes", "p1"), Some(32));
        assert_eq!(snap.counter_sum("bytes"), 42);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new_manual();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let reg = Registry::new_manual();
        let h = reg.histogram("lat", buckets::LATENCY_US);
        for _ in 0..90 {
            h.observe(5); // ≤ 10 bucket
        }
        for _ in 0..10 {
            h.observe(50_000); // ≤ 100_000 bucket
        }
        let s = reg.snapshot();
        let hs = s.histogram("lat", "").unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.p50, 10);
        assert_eq!(hs.p95, 100_000);
        assert_eq!(hs.p99, 100_000);
        assert_eq!(hs.buckets, vec![(10, 90), (100_000, 10)]);
        assert_eq!(hs.overflow, 0);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let reg = Registry::new_manual();
        let h = reg.histogram("big", buckets::DEPTH);
        h.observe(u64::MAX);
        h.observe(0);
        let s = reg.snapshot().histogram("big", "").unwrap().clone();
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 2);
        // Overflow quantiles clamp to the largest finite bound.
        assert_eq!(s.p99, *buckets::DEPTH.last().unwrap());
    }

    #[test]
    fn empty_histogram_snapshot() {
        let reg = Registry::new_manual();
        reg.histogram("none", buckets::LATENCY_US);
        let s = reg.snapshot();
        let hs = s.histogram("none", "").unwrap();
        assert_eq!((hs.count, hs.sum, hs.p50, hs.p95, hs.p99), (0, 0, 0, 0, 0));
        assert!(hs.buckets.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_timestamped() {
        let reg = Registry::new_manual();
        reg.counter("z.last");
        reg.counter("a.first");
        reg.counter_with("m.mid", "b");
        reg.counter_with("m.mid", "a");
        reg.time().advance_to(123);
        let snap = reg.snapshot();
        assert_eq!(snap.at_micros, 123);
        let names: Vec<_> = snap
            .counters
            .iter()
            .map(|(n, l, _)| format!("{n}{{{l}}}"))
            .collect();
        assert_eq!(names, vec!["a.first{}", "m.mid{a}", "m.mid{b}", "z.last{}"]);
    }

    #[test]
    fn clones_share_instruments() {
        let reg = Registry::new_manual();
        let c = reg.counter("shared");
        let reg2 = reg.clone();
        reg2.counter("shared").add(3);
        assert_eq!(c.get(), 3);
    }
}
