//! Property tests for the word-packed [`Bitfield`] against a `Vec<bool>`
//! reference model.
//!
//! The word-level operations (`iter_ones_andnot`, `count_and`,
//! `count_andnot`, `first_zero`, `is_interested_in`, `iter_zeros`) all
//! mask or skip the padding bits of a ragged final word; these tests
//! deliberately draw lengths that are not multiples of 64 (and exact
//! multiples, and lengths under one word) so every tail-mask branch is
//! exercised against the obviously-correct bit-by-bit answer.

use bt_piece::Bitfield;
use proptest::prelude::*;

/// Lengths chosen to land on word boundaries, just beside them, and deep
/// inside ragged territory.
fn arb_len() -> impl Strategy<Value = u32> {
    prop_oneof![
        3 => 1u32..200,
        1 => Just(63u32),
        1 => Just(64u32),
        1 => Just(65u32),
        1 => Just(128u32),
        1 => Just(129u32),
    ]
}

fn build(bits: &[bool]) -> Bitfield {
    let mut bf = Bitfield::new(bits.len() as u32);
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bf.set(i as u32);
        }
    }
    bf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-bitfield queries match the reference model, including on
    /// the ragged final word.
    #[test]
    fn unary_ops_match_reference(
        len in arb_len(),
        seed_bits in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let model: Vec<bool> = (0..len as usize)
            .map(|i| seed_bits.get(i).copied().unwrap_or(false))
            .collect();
        let bf = build(&model);

        let expect_ones: Vec<u32> = (0..len).filter(|&i| model[i as usize]).collect();
        let expect_zeros: Vec<u32> = (0..len).filter(|&i| !model[i as usize]).collect();

        prop_assert_eq!(bf.len(), len);
        prop_assert_eq!(bf.count_ones(), expect_ones.len() as u32);
        prop_assert_eq!(bf.is_complete(), expect_zeros.is_empty());
        prop_assert_eq!(bf.iter_ones().collect::<Vec<_>>(), expect_ones);
        prop_assert_eq!(bf.iter_zeros().collect::<Vec<_>>(), expect_zeros);
        prop_assert_eq!(bf.first_zero(), expect_zeros.first().copied());
        for i in 0..len {
            prop_assert_eq!(bf.get(i), model[i as usize]);
        }
    }

    /// Pairwise word-level operations match per-index enumeration.
    #[test]
    fn binary_ops_match_reference(
        len in arb_len(),
        a_bits in proptest::collection::vec(any::<bool>(), 0..200),
        b_bits in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let a_model: Vec<bool> = (0..len as usize)
            .map(|i| a_bits.get(i).copied().unwrap_or(false))
            .collect();
        let b_model: Vec<bool> = (0..len as usize)
            .map(|i| b_bits.get(i).copied().unwrap_or(false))
            .collect();
        let a = build(&a_model);
        let b = build(&b_model);

        let and: Vec<u32> = (0..len)
            .filter(|&i| a_model[i as usize] && b_model[i as usize])
            .collect();
        let andnot: Vec<u32> = (0..len)
            .filter(|&i| a_model[i as usize] && !b_model[i as usize])
            .collect();

        prop_assert_eq!(a.count_and(&b), and.len() as u32);
        prop_assert_eq!(a.count_andnot(&b), andnot.len() as u32);
        prop_assert_eq!(a.iter_ones_andnot(&b).collect::<Vec<_>>(), andnot);
        // Interest is "other has something I lack": b \ a non-empty.
        prop_assert_eq!(a.is_interested_in(&b), b.count_andnot(&a) > 0);
        prop_assert_eq!(b.iter_ones_andnot(&a).count() as u32, b.count_andnot(&a));
    }

    /// set/clear histories keep `count_ones` and membership exact, and
    /// the wire round-trip preserves the packed representation.
    #[test]
    fn mutation_history_and_wire_roundtrip(
        len in arb_len(),
        ops in proptest::collection::vec((any::<bool>(), 0u32..200), 0..120),
    ) {
        let mut model = vec![false; len as usize];
        let mut bf = Bitfield::new(len);
        for (set, raw) in ops {
            let i = raw % len;
            if set {
                prop_assert_eq!(bf.set(i), !model[i as usize]);
                model[i as usize] = true;
            } else {
                prop_assert_eq!(bf.clear(i), model[i as usize]);
                model[i as usize] = false;
            }
            prop_assert_eq!(
                bf.count_ones() as usize,
                model.iter().filter(|&&b| b).count()
            );
        }
        // Wire round-trip: padding bits in the final byte stay zero and
        // decoding restores an identical bitfield.
        let wire = bf.to_wire();
        prop_assert_eq!(wire.len(), (len as usize).div_ceil(8));
        prop_assert_eq!(Bitfield::from_wire(&wire, len), Some(bf));
    }
}
