//! The per-link network model.
//!
//! Every simulated connection is backed by a pair of directed links
//! with independent parameters ([`LinkParams`]): a constant one-way
//! delay fixed at establishment, an optional per-direction bandwidth
//! cap, and a loss probability with deterministic
//! redelivery-after-timeout semantics. A [`LinkModel`] decides those
//! parameters per peer pair:
//!
//! * [`UniformLink`] reproduces the legacy flat `latency`/`latency_jitter`
//!   path byte-for-byte — one jitter draw per connection, shared by
//!   both directions, no loss, no link caps;
//! * [`FullDuplexLink`] resolves a [`TopologySpec`]: peers map to
//!   classes, class pairs map to asymmetric per-direction parameters.
//!
//! [`NetModel`] is the serialisable selector stored on
//! [`SwarmSpec`](crate::swarm::SwarmSpec) (`net` section); build the
//! runtime model with [`NetModel::build`].
//!
//! ## Determinism contract
//!
//! `establish` is called exactly once per accepted connection, in
//! event order, with the swarm's master PRNG; any jitter draws happen
//! there and nowhere else. Loss draws happen per transmission on the
//! same PRNG, but only on links whose `loss > 0` — so a loss-free
//! model consumes no extra randomness and replays legacy traces
//! unchanged.

use crate::topology::TopologySpec;
use crate::tracker::PeerIdx;
use bt_wire::time::Duration;
use rand::rngs::SmallRng;
use rand::Rng;

/// Parameters of one direction of an established link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Constant one-way delay (fixed at establishment, so TCP's
    /// in-order delivery holds without reordering logic).
    pub delay: Duration,
    /// Probability that a transmission is lost; a lost transmission is
    /// redelivered `rto` later (never dropped outright — the simulated
    /// transport is reliable, like TCP above a lossy path).
    pub loss: f64,
    /// Per-direction bandwidth cap in bytes/second (`None` = the link
    /// itself is never the bottleneck).
    pub bandwidth: Option<u64>,
    /// Retransmission timeout added to a lost transmission's delivery.
    pub rto: Duration,
}

impl LinkParams {
    /// A lossless, uncapped direction with the given delay — what
    /// every legacy connection used.
    pub fn flat(delay: Duration) -> LinkParams {
        LinkParams {
            delay,
            loss: 0.0,
            bandwidth: None,
            rto: Duration::ZERO,
        }
    }
}

/// Decides per-connection link parameters. See the module docs for the
/// determinism contract.
pub trait LinkModel: Send {
    /// Control-plane one-way delay: dial setup and tracker responses.
    fn base_delay(&self) -> Duration;

    /// Parameters for a new connection, as `(from -> to, to -> from)`.
    /// Called once per accepted connection with the swarm's master
    /// PRNG; all establishment-time draws must happen here.
    fn establish(&self, from: PeerIdx, to: PeerIdx, rng: &mut SmallRng)
        -> (LinkParams, LinkParams);
}

/// The legacy network model: one flat latency plus a per-connection
/// jitter draw shared by both directions. Byte-identical to the old
/// `SwarmSpec::latency`/`latency_jitter` path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformLink {
    /// Base one-way delay for every link and the control plane.
    pub latency: Duration,
    /// Per-connection extra delay drawn uniformly from `[0, jitter]`.
    pub jitter: Duration,
}

impl LinkModel for UniformLink {
    fn base_delay(&self) -> Duration {
        self.latency
    }

    fn establish(
        &self,
        _from: PeerIdx,
        _to: PeerIdx,
        rng: &mut SmallRng,
    ) -> (LinkParams, LinkParams) {
        // Exactly the legacy draw: one sample, only when jitter is
        // non-zero, shared by both directions.
        let delay = self.latency
            + Duration(if self.jitter.0 > 0 {
                rng.random_range(0..=self.jitter.0)
            } else {
                0
            });
        let p = LinkParams::flat(delay);
        (p, p)
    }
}

/// A resolved [`TopologySpec`]: class membership per peer plus a dense
/// class-pair parameter matrix, queried in O(1) per establishment.
#[derive(Debug, Clone)]
pub struct FullDuplexLink {
    base_delay: Duration,
    rto: Duration,
    /// Class index per peer (resolved once from `(seed, index)`).
    class_of: Vec<u8>,
    /// Class names, for reporting.
    class_names: Vec<String>,
    /// Row-major `classes × classes` matrix of directed link specs.
    matrix: Vec<crate::topology::LinkSpec>,
    k: usize,
}

impl FullDuplexLink {
    /// Resolve `spec` over a swarm of `num_peers` peers. Class
    /// membership hashes `(seed, peer index)` — the master PRNG is
    /// untouched, so the rest of the run's draw sequence is unchanged
    /// by the choice of topology.
    ///
    /// # Panics
    /// If the spec fails [`TopologySpec::validate`] (more than 255
    /// classes also rejected).
    pub fn new(spec: &TopologySpec, num_peers: usize, seed: u64) -> FullDuplexLink {
        spec.validate().expect("valid topology");
        let k = spec.classes.len();
        assert!(k <= u8::MAX as usize + 1, "at most 256 peer classes");
        let mut matrix = Vec::with_capacity(k * k);
        for a in &spec.classes {
            for b in &spec.classes {
                matrix.push(
                    spec.resolve(&a.name, &b.name)
                        .expect("validate() covered every pair")
                        .clone(),
                );
            }
        }
        let class_of = (0..num_peers)
            .map(|i| spec.class_index(seed, i) as u8)
            .collect();
        FullDuplexLink {
            base_delay: spec.base_delay,
            rto: spec.rto,
            class_of,
            class_names: spec.classes.iter().map(|c| c.name.clone()).collect(),
            matrix,
            k,
        }
    }

    /// The class name a peer resolved to.
    pub fn class_name(&self, peer: PeerIdx) -> &str {
        &self.class_names[usize::from(self.class_of[peer])]
    }

    fn direction(&self, from: PeerIdx, to: PeerIdx, rng: &mut SmallRng) -> LinkParams {
        let spec = &self.matrix
            [usize::from(self.class_of[from]) * self.k + usize::from(self.class_of[to])];
        let delay = spec.delay
            + Duration(if spec.jitter.0 > 0 {
                rng.random_range(0..=spec.jitter.0)
            } else {
                0
            });
        LinkParams {
            delay,
            loss: spec.loss,
            bandwidth: spec.bandwidth,
            rto: self.rto,
        }
    }
}

impl LinkModel for FullDuplexLink {
    fn base_delay(&self) -> Duration {
        self.base_delay
    }

    fn establish(
        &self,
        from: PeerIdx,
        to: PeerIdx,
        rng: &mut SmallRng,
    ) -> (LinkParams, LinkParams) {
        // Per-direction draws, forward direction first — the defined
        // order is part of the determinism contract.
        let ab = self.direction(from, to, rng);
        let ba = self.direction(to, from, rng);
        (ab, ba)
    }
}

/// The serialisable network-model section of a
/// [`SwarmSpec`](crate::swarm::SwarmSpec). Absent (`None`) means the
/// legacy flat latency fields drive a [`UniformLink`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NetModel {
    /// Flat latency/jitter on every link — the legacy model.
    Uniform {
        /// Base one-way delay.
        latency: Duration,
        /// Per-connection jitter bound.
        jitter: Duration,
    },
    /// Full-duplex per-link bandwidth/latency/loss over a topology.
    FullDuplex(TopologySpec),
}

impl NetModel {
    /// The legacy model with explicit parameters.
    pub fn uniform(latency: Duration, jitter: Duration) -> NetModel {
        NetModel::Uniform { latency, jitter }
    }

    /// A full-duplex model from a built-in topology preset name
    /// (see [`crate::topology::PRESET_NAMES`]).
    pub fn preset(name: &str) -> Option<NetModel> {
        TopologySpec::preset(name).map(NetModel::FullDuplex)
    }

    /// A short human label for logs and reports.
    pub fn label(&self) -> String {
        match self {
            NetModel::Uniform { latency, jitter } => {
                format!("uniform({}ms+{}ms)", latency.0 / 1000, jitter.0 / 1000)
            }
            NetModel::FullDuplex(spec) => format!("full-duplex({})", spec.name),
        }
    }

    /// Build the runtime model for a swarm of `num_peers` peers.
    pub fn build(&self, num_peers: usize, seed: u64) -> Box<dyn LinkModel> {
        match self {
            NetModel::Uniform { latency, jitter } => Box::new(UniformLink {
                latency: *latency,
                jitter: *jitter,
            }),
            NetModel::FullDuplex(spec) => Box::new(FullDuplexLink::new(spec, num_peers, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_link_matches_legacy_draw() {
        // The model must consume exactly one sample from the shared
        // stream, identical to the inlined legacy expression.
        let model = UniformLink {
            latency: Duration::from_millis(50),
            jitter: Duration::from_millis(100),
        };
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let (ab, ba) = model.establish(0, 1, &mut a);
        let legacy =
            Duration::from_millis(50) + Duration(b.random_range(0..=Duration::from_millis(100).0));
        assert_eq!(ab.delay, legacy);
        assert_eq!(ab, ba);
        assert_eq!(a.random_range(0..1u64 << 40), b.random_range(0..1u64 << 40));
    }

    #[test]
    fn uniform_link_zero_jitter_consumes_no_randomness() {
        let model = UniformLink {
            latency: Duration::from_millis(50),
            jitter: Duration::ZERO,
        };
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        let (ab, _) = model.establish(3, 4, &mut a);
        assert_eq!(ab, LinkParams::flat(Duration::from_millis(50)));
        assert_eq!(a.random_range(0..1u64 << 40), b.random_range(0..1u64 << 40));
    }

    #[test]
    fn full_duplex_directions_differ_by_sender_class() {
        let spec = TopologySpec::asymmetric_dsl();
        let model = FullDuplexLink::new(&spec, 200, 11);
        let mut rng = SmallRng::seed_from_u64(1);
        // Find a dsl peer and a campus peer.
        let dsl = (0..200).find(|&i| model.class_name(i) == "dsl").unwrap();
        let campus = (0..200).find(|&i| model.class_name(i) == "campus").unwrap();
        let (up, down) = model.establish(dsl, campus, &mut rng);
        assert_eq!(up.bandwidth, Some(14_000), "dsl uplink is narrow");
        assert_eq!(down.bandwidth, Some(400_000), "campus uplink is wide");
        assert!(up.loss > down.loss);
        assert_eq!(up.rto, spec.rto);
    }

    #[test]
    fn net_model_json_roundtrip() {
        let uniform = NetModel::uniform(Duration::from_millis(40), Duration::from_millis(80));
        let wan = NetModel::preset("two_isp_bottleneck").unwrap();
        for model in [uniform, wan] {
            let text = serde_json::to_string(&model).unwrap();
            let back: NetModel = serde_json::from_str(&text).unwrap();
            assert_eq!(model, back);
        }
        assert!(NetModel::preset("missing").is_none());
    }
}
