//! The engine over real TCP sockets.
//!
//! `bt_core::Engine` is a sans-io state machine: the simulator is only
//! one driver. This example proves it by running a small swarm — one
//! seed, two leechers — through `bt_net`'s socket runtime: genuine
//! handshake bytes, genuine length-prefixed frames through the
//! `bt_wire` codec, one poll-loop thread per peer, and SHA-1
//! verification of every piece on arrival.
//!
//! Protocol timers are accelerated (1 real millisecond = 1 virtual
//! second) so the 10-second choke rounds pass quickly.
//!
//! ```sh
//! cargo run --release --example tcp_loopback
//! ```

use bt_repro::net::{run_loopback_swarm, LoopbackSpec};

fn main() {
    let spec = LoopbackSpec {
        seeds: 1,
        leechers: 2,
        total_len: 8 * 256 * 1024, // 2 MB in eight 256 kB pieces
        piece_len: 256 * 1024,
        seed: 77,
        ..LoopbackSpec::default()
    };
    let pieces = spec.total_len / u64::from(spec.piece_len);
    println!(
        "transferring {pieces} pieces ({} kB) between {} peers over real TCP sockets ...",
        spec.total_len / 1024,
        spec.seeds + spec.leechers
    );

    let result = run_loopback_swarm(spec).expect("loopback swarm runs");

    for (i, outcome) in result.outcomes.iter().enumerate() {
        println!(
            "peer {i}: {:2} pieces, {:3} messages in, {:3} blocks uploaded, {} choke ticks",
            outcome.pieces,
            outcome.stats.messages_in,
            outcome.stats.blocks_sent,
            outcome.stats.ticks,
        );
    }
    assert_eq!(result.completed_leechers, 2, "every leecher must finish");
    println!(
        "ok: {pieces} pieces transferred and verified over TCP in {:.2?} — the same engine the simulator drives",
        result.wall_elapsed
    );
}
