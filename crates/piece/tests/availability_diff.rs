//! Differential tests: the bucketed [`Availability`] index against the
//! O(pieces) [`NaiveAvailability`] reference it replaced.
//!
//! Both structures are driven through identical random operation
//! sequences (peers joining and leaving with random bitfields, HAVE
//! announcements), and every query the picker relies on is compared
//! after every step. The bucketed structure additionally self-checks
//! its internal invariants (`check_invariants`) at each step, so any
//! drift in the `order`/`pos`/`first_ge` bookkeeping is caught at the
//! mutation that introduced it, not at a later query.

use bt_piece::{Availability, Bitfield, NaiveAvailability};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// A peer with bitfield drawn from `bits` joins.
    AddPeer(Vec<bool>),
    /// The `i`-th currently-joined peer leaves (modulo the live count).
    RemovePeer(usize),
    /// A HAVE for piece `p % num_pieces`.
    Have(u32),
}

fn arb_op(pieces: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec(any::<bool>(), pieces..=pieces)
            .prop_map(Op::AddPeer),
        1 => (0usize..8).prop_map(Op::RemovePeer),
        4 => (0u32..64).prop_map(Op::Have),
    ]
}

fn bitfield_from(bits: &[bool]) -> Bitfield {
    let mut bf = Bitfield::new(bits.len() as u32);
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bf.set(i as u32);
        }
    }
    bf
}

/// Compare every picker-facing query of the two structures.
fn assert_equivalent(bucketed: &Availability, naive: &NaiveAvailability, pieces: u32) {
    bucketed.check_invariants();
    for p in 0..pieces {
        assert_eq!(bucketed.count(p), naive.count(p), "count({p})");
    }
    assert_eq!(bucketed.min_count(), naive.min_count(), "min_count");
    assert_eq!(bucketed.rarest_set(), naive.rarest_set(), "rarest_set");
    assert_eq!(
        bucketed.rarest_set_size(),
        naive.rarest_set_size(),
        "rarest_set_size"
    );
    assert_eq!(bucketed.stats(), naive.stats(), "stats");
    assert_eq!(
        bucketed.has_missing_piece(),
        naive.has_missing_piece(),
        "has_missing_piece"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary join/leave/HAVE histories leave the two structures
    /// answering every query identically, and `rarest_among` agrees for
    /// arbitrary candidate sets drawn after each history.
    #[test]
    fn bucketed_matches_naive(
        pieces in 1u32..40,
        ops in proptest::collection::vec(arb_op(40), 1..80),
        candidates in proptest::collection::vec(0u32..40, 0..20),
    ) {
        let mut bucketed = Availability::new(pieces);
        let mut naive = NaiveAvailability::new(pieces);
        // Shadow roster so RemovePeer always removes a bitfield that was
        // actually added (removing arbitrary bitfields would underflow).
        let mut joined: Vec<Bitfield> = Vec::new();

        for op in ops {
            match op {
                Op::AddPeer(bits) => {
                    let bf = bitfield_from(&bits[..pieces as usize]);
                    bucketed.add_peer(&bf);
                    naive.add_peer(&bf);
                    joined.push(bf);
                }
                Op::RemovePeer(i) => {
                    if !joined.is_empty() {
                        let bf = joined.remove(i % joined.len());
                        bucketed.remove_peer(&bf);
                        naive.remove_peer(&bf);
                    }
                }
                Op::Have(p) => {
                    let p = p % pieces;
                    bucketed.add_have(p);
                    naive.add_have(p);
                    // Keep the roster consistent: attribute the HAVE to a
                    // joined peer when possible so later removals stay
                    // within recorded counts.
                    if let Some(bf) = joined.iter_mut().find(|bf| !bf.get(p)) {
                        bf.set(p);
                    } else {
                        let mut bf = Bitfield::new(pieces);
                        bf.set(p);
                        joined.push(bf);
                    }
                }
            }
            assert_equivalent(&bucketed, &naive, pieces);
        }

        // The rarest-first entry point: identical candidate multisets in,
        // identical (sorted, deduplicated) rarest subsets out.
        let cands: Vec<u32> = candidates.into_iter().map(|c| c % pieces).collect();
        prop_assert_eq!(
            bucketed.rarest_among(cands.iter().copied()),
            naive.rarest_among(cands.iter().copied())
        );
    }

    /// `rarest_among_fields` (the bucket-scan fast path) agrees with the
    /// naive candidate enumeration it shortcuts, for arbitrary remote and
    /// own bitfields over arbitrary availability states.
    #[test]
    fn fields_fast_path_matches_naive_scan(
        pieces in 1u32..40,
        peers in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 40), 0..8),
        remote_bits in proptest::collection::vec(any::<bool>(), 40),
        own_bits in proptest::collection::vec(any::<bool>(), 40),
        in_prog in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let mut bucketed = Availability::new(pieces);
        let mut naive = NaiveAvailability::new(pieces);
        for bits in &peers {
            let bf = bitfield_from(&bits[..pieces as usize]);
            bucketed.add_peer(&bf);
            naive.add_peer(&bf);
        }
        bucketed.check_invariants();
        let remote = bitfield_from(&remote_bits[..pieces as usize]);
        let own = bitfield_from(&own_bits[..pieces as usize]);
        let in_progress = |p: u32| in_prog[p as usize];

        let fast = bucketed.rarest_among_fields(&remote, &own, &in_progress);
        let reference = naive.rarest_among(
            (0..pieces).filter(|&p| remote.get(p) && !own.get(p) && !in_progress(p)),
        );
        prop_assert_eq!(fast, reference);
    }
}
