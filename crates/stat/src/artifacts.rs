//! Loading the `--emit-dir` one-directory artifact layout.
//!
//! ```text
//! run_dir/
//!   run.json       manifest: scenario, seed, peers, digest, ...
//!   metrics.jsonl  registry snapshots (last line = final state)
//!   series.json    SeriesStore export
//!   profile.json   span profile
//!   trace.jsonl    causal trace (sorted, deterministic)
//! ```
//!
//! Only `run.json` is required; every other artifact is optional so a
//! minimal run (or a hand-built directory in a test) still loads. The
//! trace is kept as raw text — bisection compares canonical lines and
//! only parses the handful it reports.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use bt_obs::schema::{parse_json, JsonValue, MetricsDoc, ProfileDoc, SchemaError, SeriesDoc};

/// Fleet-analytics error: which artifact failed and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatError(pub String);

impl StatError {
    pub(crate) fn new(msg: impl Into<String>) -> StatError {
        StatError(msg.into())
    }
}

impl fmt::Display for StatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StatError {}

impl From<SchemaError> for StatError {
    fn from(e: SchemaError) -> StatError {
        StatError(e.to_string())
    }
}

/// One run's artifacts, loaded from an `--emit-dir` directory (or
/// constructed directly in tests).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunArtifacts {
    /// Scenario label from the manifest (e.g. `flash_crowd_1k`).
    pub scenario: String,
    /// Simulation seed.
    pub seed: u64,
    /// Peer count, when the manifest recorded it.
    pub peers: u64,
    /// Piece count, when the manifest recorded it.
    pub pieces: u64,
    /// Events processed by the simulator.
    pub events_processed: u64,
    /// Peers that completed the content.
    pub completed_peers: u64,
    /// `SwarmResult::digest()` as 16 lowercase hex digits.
    pub digest: String,
    /// Final registry snapshot (last `metrics.jsonl` line), if emitted.
    pub metrics: Option<MetricsDoc>,
    /// Series export, if emitted.
    pub series: Option<SeriesDoc>,
    /// Span profile, if emitted.
    pub profile: Option<ProfileDoc>,
    /// Raw causal-trace JSONL, if emitted.
    pub trace_jsonl: Option<String>,
}

impl RunArtifacts {
    /// The key this run sorts and labels under in fleet reports:
    /// `scenario-s<seed>`, disambiguated by digest when a fleet holds
    /// repeat runs of one (scenario, seed) pair.
    pub fn key(&self) -> String {
        format!("{}-s{}", self.scenario, self.seed)
    }

    /// Load a run directory written by `swarmrun --emit-dir`.
    pub fn load(dir: &Path) -> Result<RunArtifacts, StatError> {
        let manifest_path = dir.join("run.json");
        let manifest_text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| StatError::new(format!("{}: {e}", manifest_path.display())))?;
        let manifest = parse_json(&manifest_text)
            .map_err(|e| StatError::new(format!("{}: {e}", manifest_path.display())))?;
        let num = |key: &str| manifest.get(key).and_then(JsonValue::as_u64).unwrap_or(0);

        let read_opt = |name: &str| -> Result<Option<String>, StatError> {
            let path = dir.join(name);
            if !path.exists() {
                return Ok(None);
            }
            std::fs::read_to_string(&path)
                .map(Some)
                .map_err(|e| StatError::new(format!("{}: {e}", path.display())))
        };

        let metrics = match read_opt("metrics.jsonl")? {
            Some(text) => MetricsDoc::parse_jsonl(&text)?.into_iter().next_back(),
            None => None,
        };
        let series = read_opt("series.json")?
            .map(|t| SeriesDoc::parse(&t))
            .transpose()?;
        let profile = read_opt("profile.json")?
            .map(|t| ProfileDoc::parse(&t))
            .transpose()?;
        let trace_jsonl = read_opt("trace.jsonl")?;

        Ok(RunArtifacts {
            scenario: manifest
                .get("scenario")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string(),
            seed: num("seed"),
            peers: num("peers"),
            pieces: num("pieces"),
            events_processed: num("events_processed"),
            completed_peers: num("completed_peers"),
            digest: manifest
                .get("digest")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            metrics,
            series,
            profile,
            trace_jsonl,
        })
    }

    /// Render the `run.json` manifest for this run (the writer side of
    /// [`RunArtifacts::load`]; `swarmrun --emit-dir` uses the same
    /// layout).
    pub fn manifest_json(&self) -> String {
        manifest_json(
            &self.scenario,
            self.seed,
            self.peers,
            self.pieces,
            self.events_processed,
            self.completed_peers,
            &self.digest,
        )
    }

    /// Summary row for fleet-report JSON (sorted fixed keys).
    pub(crate) fn summary_json(&self) -> String {
        format!(
            "{{\"key\":\"{}\",\"scenario\":\"{}\",\"seed\":{},\"peers\":{},\"pieces\":{},\
             \"events_processed\":{},\"completed_peers\":{},\"digest\":\"{}\"}}",
            self.key(),
            self.scenario,
            self.seed,
            self.peers,
            self.pieces,
            self.events_processed,
            self.completed_peers,
            self.digest
        )
    }
}

/// Render a `run.json` manifest from parts (shared with `swarmrun`,
/// which has the fields but no [`RunArtifacts`]).
pub fn manifest_json(
    scenario: &str,
    seed: u64,
    peers: u64,
    pieces: u64,
    events_processed: u64,
    completed_peers: u64,
    digest: &str,
) -> String {
    format!(
        "{{\"schema\":\"btstat-run-v1\",\"scenario\":\"{scenario}\",\"seed\":{seed},\
         \"peers\":{peers},\"pieces\":{pieces},\"events_processed\":{events_processed},\
         \"completed_peers\":{completed_peers},\"digest\":\"{digest}\"}}"
    )
}

/// Series documents keyed by run, as fleet reports overlay them.
pub(crate) fn series_by_run(runs: &[RunArtifacts]) -> BTreeMap<String, SeriesDoc> {
    let mut map = BTreeMap::new();
    for run in runs {
        if let Some(series) = &run.series {
            map.insert(run.key(), series.clone());
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("btstat-art-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_round_trips_a_written_directory() {
        let dir = temp_dir("rt");
        let run = RunArtifacts {
            scenario: "flash_crowd_1k".to_string(),
            seed: 42,
            peers: 1000,
            pieces: 8,
            events_processed: 1234,
            completed_peers: 1000,
            digest: "00deadbeef00cafe".to_string(),
            ..RunArtifacts::default()
        };
        std::fs::write(dir.join("run.json"), run.manifest_json()).unwrap();
        std::fs::write(
            dir.join("metrics.jsonl"),
            "{\"t\":1,\"counters\":{\"a\":1},\"gauges\":{},\"histograms\":{}}\n\
             {\"t\":2,\"counters\":{\"a\":5},\"gauges\":{},\"histograms\":{}}\n",
        )
        .unwrap();
        std::fs::write(dir.join("trace.jsonl"), "{\"t\":0}\n").unwrap();

        let loaded = RunArtifacts::load(&dir).unwrap();
        assert_eq!(loaded.key(), "flash_crowd_1k-s42");
        assert_eq!(loaded.digest, run.digest);
        assert_eq!(loaded.events_processed, 1234);
        // Last metrics line wins.
        assert_eq!(loaded.metrics.as_ref().unwrap().counters["a"], 5);
        assert!(loaded.series.is_none());
        assert!(loaded.profile.is_none());
        assert_eq!(loaded.trace_jsonl.as_deref(), Some("{\"t\":0}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = temp_dir("missing");
        let err = RunArtifacts::load(&dir).unwrap_err();
        assert!(err.0.contains("run.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
