//! Per-client-family breakdown.
//!
//! §III-D: "We are aware of around 20 different BitTorrent clients, each
//! client existing in several different versions." The instrumented
//! trace carries every remote's client-ID prefix; this module breaks the
//! local peer's interactions down by client family — membership time,
//! bytes exchanged, interest behaviour — the view a measurement study
//! uses to spot misbehaving implementations (§IV-A.1's "modified or
//! misbehaving clients").

use crate::intervals::window_overlap_secs;
use bt_instrument::identify::PeerRegistry;
use bt_instrument::trace::{Trace, TraceEvent};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregates for one client family (client-ID prefix).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientAggregate {
    /// Connections observed from this family.
    pub connections: usize,
    /// Unique peers after §III-D (IP, client-ID) de-duplication.
    pub unique_peers: usize,
    /// Total seconds this family spent in the peer set.
    pub membership_secs: f64,
    /// Bytes the local peer downloaded from this family.
    pub downloaded: u64,
    /// Bytes the local peer uploaded to this family.
    pub uploaded: u64,
}

/// Per-family breakdown of one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientBreakdown {
    /// Family (client-ID prefix) → aggregates, sorted for stable output.
    pub families: BTreeMap<String, ClientAggregate>,
}

/// Compute the client-family breakdown of a trace.
pub fn client_breakdown(trace: &Trace) -> ClientBreakdown {
    let registry = PeerRegistry::from_trace(trace);
    let mut families: BTreeMap<String, ClientAggregate> = BTreeMap::new();
    let mut family_of: std::collections::HashMap<u32, String> = std::collections::HashMap::new();
    let mut uniques: BTreeMap<
        String,
        std::collections::HashSet<&bt_instrument::identify::UniquePeer>,
    > = BTreeMap::new();

    for m in &registry.memberships {
        let fam = m.peer.client_id.clone();
        family_of.insert(m.handle, fam.clone());
        let agg = families.entry(fam.clone()).or_default();
        agg.connections += 1;
        agg.membership_secs +=
            window_overlap_secs(m.joined, m.left, Instant::ZERO, trace.meta.session_end);
        uniques.entry(fam).or_default().insert(&m.peer);
    }
    for (fam, set) in uniques {
        families.entry(fam).or_default().unique_peers = set.len();
    }
    for (_, ev) in trace.iter() {
        match ev {
            TraceEvent::BlockReceived { peer, block } => {
                if let Some(fam) = family_of.get(peer) {
                    families.entry(fam.clone()).or_default().downloaded += u64::from(block.length);
                }
            }
            TraceEvent::BlockSent { peer, block } => {
                if let Some(fam) = family_of.get(peer) {
                    families.entry(fam.clone()).or_default().uploaded += u64::from(block.length);
                }
            }
            _ => {}
        }
    }
    ClientBreakdown { families }
}

impl ClientBreakdown {
    /// Number of distinct client families observed.
    pub fn num_families(&self) -> usize {
        self.families.len()
    }

    /// Total bytes downloaded across families.
    pub fn total_downloaded(&self) -> u64 {
        self.families.values().map(|a| a.downloaded).sum()
    }

    /// The family contributing the most downloaded bytes, if any traffic
    /// was observed.
    pub fn top_source(&self) -> Option<(&str, u64)> {
        self.families
            .iter()
            .filter(|(_, a)| a.downloaded > 0)
            .max_by_key(|(_, a)| a.downloaded)
            .map(|(k, a)| (k.as_str(), a.downloaded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::TraceMeta;
    use bt_wire::message::BlockRef;
    use bt_wire::peer_id::{ClientKind, IpAddr, PeerId};

    fn trace() -> Trace {
        let meta = TraceMeta {
            torrent: "c".into(),
            torrent_id: 1,
            num_pieces: 10,
            num_blocks: 160,
            initial_seeds: 1,
            initial_leechers: 3,
            session_end: Instant::from_secs(1000),
            seed_at: None,
        };
        let mut tr = Trace::new(meta);
        for (h, kind) in [
            (0u32, ClientKind::Azureus),
            (1, ClientKind::Azureus),
            (2, ClientKind::BitComet),
        ] {
            tr.push(
                Instant::from_secs(0),
                TraceEvent::PeerJoined {
                    peer: h,
                    ip: IpAddr(h + 1),
                    peer_id: PeerId::new(kind, u64::from(h)),
                    pieces_on_arrival: 0,
                    total_pieces: 10,
                },
            );
        }
        tr.push(Instant::from_secs(500), TraceEvent::PeerLeft { peer: 0 });
        let block = BlockRef {
            piece: 0,
            offset: 0,
            length: 100,
        };
        tr.push(
            Instant::from_secs(600),
            TraceEvent::BlockReceived { peer: 1, block },
        );
        tr.push(
            Instant::from_secs(600),
            TraceEvent::BlockReceived { peer: 2, block },
        );
        tr.push(
            Instant::from_secs(600),
            TraceEvent::BlockReceived { peer: 2, block },
        );
        tr.push(
            Instant::from_secs(601),
            TraceEvent::BlockSent { peer: 2, block },
        );
        tr
    }

    #[test]
    fn families_aggregated() {
        let b = client_breakdown(&trace());
        assert_eq!(b.num_families(), 2);
        let az = &b.families["-AZ2304-"];
        assert_eq!(az.connections, 2);
        assert_eq!(az.unique_peers, 2);
        assert_eq!(az.downloaded, 100);
        assert_eq!(az.uploaded, 0);
        assert!((az.membership_secs - 1500.0).abs() < 1e-9); // 500 + 1000
        let bc = &b.families["-BC0059-"];
        assert_eq!(bc.downloaded, 200);
        assert_eq!(bc.uploaded, 100);
    }

    #[test]
    fn top_source_and_totals() {
        let b = client_breakdown(&trace());
        assert_eq!(b.total_downloaded(), 300);
        assert_eq!(b.top_source(), Some(("-BC0059-", 200)));
    }

    #[test]
    fn empty_trace() {
        let meta = TraceMeta {
            torrent: "e".into(),
            torrent_id: 0,
            num_pieces: 1,
            num_blocks: 16,
            initial_seeds: 0,
            initial_leechers: 0,
            session_end: Instant::from_secs(1),
            seed_at: None,
        };
        let b = client_breakdown(&Trace::new(meta));
        assert_eq!(b.num_families(), 0);
        assert_eq!(b.top_source(), None);
    }
}
