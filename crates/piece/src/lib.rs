//! # bt-piece — piece and block bookkeeping
//!
//! The *piece selection* half of the paper's subject matter:
//!
//! * [`bitfield`] — piece maps with the BEP 3 wire encoding and the
//!   interest relation of §II-A;
//! * [`availability`] — per-piece copy counts over the peer set and the
//!   rarest-pieces set of §II-C.1;
//! * [`geometry`] — piece/block size arithmetic;
//! * [`picker`] — the [`picker::PiecePicker`] trait with the paper's
//!   rarest first algorithm (random first policy included) and the
//!   baselines it is compared against (random, sequential, global-rarest
//!   oracle);
//! * [`scheduler`] — block-level strict priority and end game mode.

#![warn(missing_docs)]

pub mod availability;
pub mod bitfield;
pub mod geometry;
pub mod picker;
pub mod scheduler;

pub use availability::{Availability, AvailabilityStats, NaiveAvailability};
pub use bitfield::Bitfield;
pub use geometry::Geometry;
pub use picker::{
    GlobalRarest, PickContext, PickerKind, PiecePicker, RandomPicker, RarestFirst,
    SequentialPicker, RANDOM_FIRST_THRESHOLD,
};
pub use scheduler::{BlockReceipt, RequestScheduler};
