//! The Extension Protocol (BEP 10) and Peer Exchange (BEP 11, `ut_pex`).
//!
//! §II-B of the paper describes a torrent as "a collection of
//! interconnected peer sets" whose interconnection is maintained by the
//! tracker's random 50-peer lists. Peer exchange decentralises that:
//! peers gossip their peer sets to each other, so discovery keeps
//! working when the tracker is slow, overloaded, or rationing its
//! responses. This module carries the wire formats:
//!
//! * the extension handshake (`extended` message, inner ID 0): a
//!   bencoded dictionary advertising supported extensions under `m`;
//! * the `ut_pex` payload: bencoded `added`/`dropped` keys holding
//!   compact 6-byte peer entries, exactly like tracker responses.
//!
//! The `extended` framing itself lives in [`crate::message`]
//! (`Message::Extended`); engine behaviour in `bt-core`.

use crate::bencode::{self, DictBuilder, Value};
use crate::peer_id::IpAddr;
use crate::tracker::PeerEntry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Reserved-bits byte 5 flag advertising the extension protocol
/// (`reserved[5] & 0x10`).
pub const RESERVED_BIT: u8 = 0x10;

/// The inner message ID of the extension handshake.
pub const HANDSHAKE_ID: u8 = 0;

/// The local extension ID this implementation assigns to `ut_pex`.
pub const UT_PEX_LOCAL_ID: u8 = 1;

/// Extension-protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtensionError {
    /// Payload was not valid bencoding.
    Bencode(bencode::BencodeError),
    /// A required key was missing or mistyped.
    MissingField(&'static str),
    /// Compact peer blob length not a multiple of 6.
    BadCompactPeers(usize),
}

impl std::fmt::Display for ExtensionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtensionError::Bencode(e) => write!(f, "bencode error: {e}"),
            ExtensionError::MissingField(k) => write!(f, "missing field `{k}`"),
            ExtensionError::BadCompactPeers(n) => write!(f, "compact blob of {n} bytes"),
        }
    }
}

impl std::error::Error for ExtensionError {}

/// The extension handshake: which extensions the sender speaks, under
/// which inner message IDs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExtendedHandshake {
    /// Extension name → the ID the *sender* will accept it under.
    pub extensions: BTreeMap<String, u8>,
}

impl ExtendedHandshake {
    /// A handshake advertising `ut_pex` under [`UT_PEX_LOCAL_ID`].
    pub fn with_pex() -> ExtendedHandshake {
        let mut extensions = BTreeMap::new();
        extensions.insert("ut_pex".to_owned(), UT_PEX_LOCAL_ID);
        ExtendedHandshake { extensions }
    }

    /// The ID under which the sender accepts `ut_pex`, if advertised.
    pub fn ut_pex_id(&self) -> Option<u8> {
        self.extensions.get("ut_pex").copied().filter(|&id| id != 0)
    }

    /// Encode the bencoded handshake payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut m = DictBuilder::new();
        for (name, id) in &self.extensions {
            m = m.int(name, i64::from(*id));
        }
        DictBuilder::new().insert("m", m.build()).build().encode()
    }

    /// Decode a bencoded handshake payload.
    pub fn decode(data: &[u8]) -> Result<ExtendedHandshake, ExtensionError> {
        let root = bencode::decode(data).map_err(ExtensionError::Bencode)?;
        let m = root
            .get("m")
            .and_then(Value::as_dict)
            .ok_or(ExtensionError::MissingField("m"))?;
        let mut extensions = BTreeMap::new();
        for (k, v) in m {
            if let (Ok(name), Some(id)) = (std::str::from_utf8(k), v.as_int()) {
                if (0..=255).contains(&id) {
                    extensions.insert(name.to_owned(), id as u8);
                }
            }
        }
        Ok(ExtendedHandshake { extensions })
    }
}

/// A `ut_pex` gossip payload: peers recently added to / dropped from the
/// sender's peer set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PexPayload {
    /// Newly connected peers.
    pub added: Vec<PeerEntry>,
    /// Recently departed peers.
    pub dropped: Vec<PeerEntry>,
}

fn compact(peers: &[PeerEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(peers.len() * 6);
    for p in peers {
        out.extend_from_slice(&p.ip.0.to_be_bytes());
        out.extend_from_slice(&p.port.to_be_bytes());
    }
    out
}

fn uncompact(blob: &[u8]) -> Result<Vec<PeerEntry>, ExtensionError> {
    if !blob.len().is_multiple_of(6) {
        return Err(ExtensionError::BadCompactPeers(blob.len()));
    }
    Ok(blob
        .chunks_exact(6)
        .map(|c| PeerEntry {
            ip: IpAddr(u32::from_be_bytes([c[0], c[1], c[2], c[3]])),
            port: u16::from_be_bytes([c[4], c[5]]),
        })
        .collect())
}

impl PexPayload {
    /// Encode the bencoded `ut_pex` payload.
    pub fn encode(&self) -> Vec<u8> {
        DictBuilder::new()
            .bytes("added", compact(&self.added))
            .bytes("dropped", compact(&self.dropped))
            .build()
            .encode()
    }

    /// Decode a bencoded `ut_pex` payload. Missing keys read as empty.
    pub fn decode(data: &[u8]) -> Result<PexPayload, ExtensionError> {
        let root = bencode::decode(data).map_err(ExtensionError::Bencode)?;
        let added = match root.get("added").and_then(Value::as_bytes) {
            Some(blob) => uncompact(blob)?,
            None => Vec::new(),
        };
        let dropped = match root.get("dropped").and_then(Value::as_bytes) {
            Some(blob) => uncompact(blob)?,
            None => Vec::new(),
        };
        Ok(PexPayload { added, dropped })
    }
}

/// True if the handshake reserved bytes advertise the extension protocol.
pub fn supports_extended(reserved: &[u8; 8]) -> bool {
    reserved[5] & RESERVED_BIT != 0
}

/// Set the extension-protocol bit in a reserved-bytes array.
pub fn advertise_extended(reserved: &mut [u8; 8]) {
    reserved[5] |= RESERVED_BIT;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_roundtrip() {
        let hs = ExtendedHandshake::with_pex();
        let enc = hs.encode();
        let dec = ExtendedHandshake::decode(&enc).unwrap();
        assert_eq!(dec, hs);
        assert_eq!(dec.ut_pex_id(), Some(UT_PEX_LOCAL_ID));
    }

    #[test]
    fn handshake_without_pex() {
        let hs = ExtendedHandshake::default();
        let dec = ExtendedHandshake::decode(&hs.encode()).unwrap();
        assert_eq!(dec.ut_pex_id(), None);
    }

    #[test]
    fn pex_roundtrip() {
        let p = PexPayload {
            added: vec![
                PeerEntry {
                    ip: IpAddr(0x0A000001),
                    port: 6881,
                },
                PeerEntry {
                    ip: IpAddr(0x0A000002),
                    port: 51413,
                },
            ],
            dropped: vec![PeerEntry {
                ip: IpAddr(0x0A000003),
                port: 6881,
            }],
        };
        assert_eq!(PexPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn pex_empty_roundtrip() {
        let p = PexPayload::default();
        assert_eq!(PexPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn pex_rejects_misaligned_blob() {
        let enc = DictBuilder::new()
            .bytes("added", vec![1, 2, 3])
            .build()
            .encode();
        assert!(matches!(
            PexPayload::decode(&enc),
            Err(ExtensionError::BadCompactPeers(3))
        ));
    }

    #[test]
    fn handshake_rejects_missing_m() {
        let enc = DictBuilder::new().int("v", 1).build().encode();
        assert!(matches!(
            ExtendedHandshake::decode(&enc),
            Err(ExtensionError::MissingField("m"))
        ));
    }

    #[test]
    fn reserved_bit() {
        let mut r = [0u8; 8];
        assert!(!supports_extended(&r));
        advertise_extended(&mut r);
        assert!(supports_extended(&r));
        assert_eq!(r[5], 0x10);
    }
}
