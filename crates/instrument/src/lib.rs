//! # bt-instrument — local-peer instrumentation
//!
//! The measurement apparatus of the reproduction: the paper instruments a
//! single mainline 4.0.2 client and logs all messages, choke state
//! changes, rate estimates and lifecycle events (§III-C). This crate
//! defines that trace schema ([`trace`]) and the peer identification /
//! de-duplication rules of §III-D ([`identify`]).

#![warn(missing_docs)]

pub mod identify;
pub mod trace;

pub use identify::{Membership, PeerRegistry, UniquePeer};
pub use trace::{LocalState, PeerHandle, Trace, TraceEvent, TraceMeta, UnchokeRole};
