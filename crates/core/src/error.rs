//! Typed protocol-violation errors.
//!
//! A remote peer on a real socket can send anything; the engine must
//! never `panic!` on malformed input. Every validation failure in the
//! message-handling paths surfaces as an [`EngineError`]. When a
//! violation is detected inside [`crate::Engine::handle`], the engine
//! removes the offending connection from its state, emits
//! [`crate::Action::Disconnect`], and reports the error through
//! [`crate::Actions::take_error`] so the driver can log it and close
//! the socket.

use crate::connection::ConnId;
use bt_wire::message::BlockRef;

/// A protocol violation by a remote peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A `bitfield` payload whose length does not match the torrent.
    BadBitfield {
        /// The offending connection.
        conn: ConnId,
        /// The payload length received, in bytes.
        len: usize,
    },
    /// A `have` carrying a piece index outside the torrent.
    PieceOutOfRange {
        /// The offending connection.
        conn: ConnId,
        /// The out-of-range index.
        piece: u32,
        /// Number of pieces in the torrent.
        num_pieces: u32,
    },
    /// A `request`, `piece` or `cancel` whose block does not lie on the
    /// torrent's 16 kB block grid (bad piece, offset or length).
    MalformedBlock {
        /// The offending connection.
        conn: ConnId,
        /// The block reference as received.
        block: BlockRef,
    },
}

impl EngineError {
    /// The connection the violation arrived on.
    pub fn conn(&self) -> ConnId {
        match *self {
            EngineError::BadBitfield { conn, .. }
            | EngineError::PieceOutOfRange { conn, .. }
            | EngineError::MalformedBlock { conn, .. } => conn,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadBitfield { conn, len } => {
                write!(
                    f,
                    "conn {conn}: bitfield payload of {len} bytes does not fit the torrent"
                )
            }
            EngineError::PieceOutOfRange {
                conn,
                piece,
                num_pieces,
            } => write!(
                f,
                "conn {conn}: piece index {piece} out of range (torrent has {num_pieces} pieces)"
            ),
            EngineError::MalformedBlock { conn, block } => write!(
                f,
                "conn {conn}: block {}/{}+{} is not on the block grid",
                block.piece, block.offset, block.length
            ),
        }
    }
}

impl std::error::Error for EngineError {}
