//! Scenario runner: Table I rows → swarm specs → instrumented traces.
//!
//! Real torrents with thousands of peers and gigabytes of content cannot
//! be replayed at full scale on one machine, so the runner applies an
//! explicit, printed *scaling*: peer counts shrink proportionally
//! (preserving Table I's seed/leecher ratio — the quantity the paper
//! argues actually stresses the algorithms, §III-E.2) and content size
//! maps to a bounded piece count at the real 256 kB piece size. No
//! silent truncation: [`ScaledParams`] records exactly what ran.

use crate::table1::ScenarioSpec;
use bt_core::Config;
use bt_instrument::trace::Trace;
use bt_sim::behavior::{BehaviorProfile, CapacityClass, Role};
use bt_sim::swarm::{Swarm, SwarmResult, SwarmSpec};
use bt_sim::NetModel;
use bt_wire::peer_id::ClientKind;
use bt_wire::time::Duration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scaling and session parameters for a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Master seed (scenario seeds derive from it and the torrent ID).
    pub seed: u64,
    /// Cap on simulated peers (seeds + leechers, before arrivals).
    pub max_peers: usize,
    /// Piece-count bounds for the scaled content.
    pub min_pieces: u32,
    /// Upper bound on pieces.
    pub max_pieces: u32,
    /// Simulated session length. The paper ran 8 hours; the default here
    /// is shorter but long past the local peer's completion.
    pub session: Duration,
    /// Fraction of leechers that are free riders (§IV-B robustness).
    pub free_rider_fraction: f64,
    /// Fraction of extra churner joins (the <10 s noise peers).
    pub churner_fraction: f64,
    /// Fraction of initial leechers that crash and restart mid-session,
    /// returning with the same IP and a fresh peer-ID suffix (the §III-D
    /// multi-ID noise: the paper saw 0–26 % of IPs with several IDs,
    /// mean ≈ 9 %).
    pub restarter_fraction: f64,
    /// Extra leechers arriving during the session, as a fraction of the
    /// initial leecher population.
    pub arrival_fraction: f64,
    /// Fraction of pieces pre-replicated beyond the initial seed for
    /// *transient* torrents (the rest stay rare).
    pub transient_available: f64,
    /// Engine configuration shared by all peers (the local peer included).
    pub base_config: Config,
    /// Carry real bytes and verify hashes (slower; for small scenarios).
    pub real_data: bool,
    /// Attach a manual-clock `bt-obs` registry to every swarm; the
    /// deterministic snapshots land in
    /// [`SwarmResult::metrics`](bt_sim::swarm::SwarmResult::metrics).
    pub metrics: bool,
    /// Attach a manual-clock span [`bt_obs::Profiler`] to every swarm;
    /// the deterministic call-tree profile lands in
    /// [`ScenarioOutcome::profile`]. Spans never touch engine RNG or
    /// traces, so profiled runs stay byte-identical to bare ones.
    pub profile: bool,
    /// Attach a [`bt_obs::SeriesStore`] plus the live health monitors to
    /// every swarm (implies a metrics registry). The deterministic
    /// time-series JSON lands in [`ScenarioOutcome::series`] and the
    /// final verdicts in
    /// [`SwarmResult::health`](bt_sim::swarm::SwarmResult::health).
    pub series: bool,
    /// Network model applied to every scenario swarm (`None` = the
    /// spec default: uniform latency). Set a full-duplex topology here
    /// to rerun Table I under WAN conditions — `swarmrun --table1
    /// --topology asymmetric_dsl` routes through this.
    pub net: Option<NetModel>,
    /// Attach a causal [`bt_obs::Tracer`] to every swarm, sampling one
    /// in `N` piece/peer ids (`Some(1)` = everything, `None` = off).
    /// The deterministic exports land in
    /// [`ScenarioOutcome::trace_jsonl`] /
    /// [`ScenarioOutcome::trace_chrome`]. Sampling hashes ids — never
    /// the swarm RNG — so traced runs stay byte-identical to bare ones.
    pub trace_sample: Option<u64>,
    /// Directory for a per-scenario [`bt_obs::FlightRecorder`]: recent
    /// trace events are kept in a bounded ring and dumped as a
    /// self-contained bundle on a live-monitor invariant trip (needs
    /// [`series`](RunConfig::series)) or on panic.
    pub flight_dir: Option<String>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 42,
            max_peers: 120,
            min_pieces: 64,
            max_pieces: 256,
            session: Duration::from_secs(3600),
            free_rider_fraction: 0.05,
            churner_fraction: 0.05,
            restarter_fraction: 0.08,
            arrival_fraction: 1.0,
            transient_available: 0.35,
            base_config: Config::default(),
            real_data: false,
            metrics: false,
            profile: false,
            series: false,
            net: None,
            trace_sample: None,
            flight_dir: None,
        }
    }
}

impl RunConfig {
    /// A smaller, faster profile for tests and examples.
    pub fn quick() -> RunConfig {
        RunConfig {
            max_peers: 40,
            min_pieces: 24,
            max_pieces: 48,
            session: Duration::from_secs(1800),
            ..RunConfig::default()
        }
    }

    /// Start building a config from the defaults — the mirror of
    /// [`SwarmSpec::builder`].
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder {
            cfg: RunConfig::default(),
        }
    }

    /// Continue building from an existing config (e.g.
    /// `RunConfig::quick().into_builder()`).
    pub fn into_builder(self) -> RunConfigBuilder {
        RunConfigBuilder { cfg: self }
    }
}

/// Fluent construction of [`RunConfig`]s; obtain one with
/// [`RunConfig::builder`] or [`RunConfig::into_builder`].
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    /// Master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Cap on simulated peers.
    #[must_use]
    pub fn max_peers(mut self, max: usize) -> Self {
        self.cfg.max_peers = max;
        self
    }

    /// Piece-count bounds for the scaled content.
    #[must_use]
    pub fn piece_bounds(mut self, min: u32, max: u32) -> Self {
        self.cfg.min_pieces = min;
        self.cfg.max_pieces = max;
        self
    }

    /// Simulated session length.
    #[must_use]
    pub fn session(mut self, session: Duration) -> Self {
        self.cfg.session = session;
        self
    }

    /// Fraction of leechers that are free riders.
    #[must_use]
    pub fn free_rider_fraction(mut self, fraction: f64) -> Self {
        self.cfg.free_rider_fraction = fraction;
        self
    }

    /// Fraction of extra churner joins.
    #[must_use]
    pub fn churner_fraction(mut self, fraction: f64) -> Self {
        self.cfg.churner_fraction = fraction;
        self
    }

    /// Fraction of leechers that crash and restart mid-session.
    #[must_use]
    pub fn restarter_fraction(mut self, fraction: f64) -> Self {
        self.cfg.restarter_fraction = fraction;
        self
    }

    /// Extra mid-session arrivals, as a fraction of initial leechers.
    #[must_use]
    pub fn arrival_fraction(mut self, fraction: f64) -> Self {
        self.cfg.arrival_fraction = fraction;
        self
    }

    /// Pre-replicated piece fraction for transient torrents.
    #[must_use]
    pub fn transient_available(mut self, fraction: f64) -> Self {
        self.cfg.transient_available = fraction;
        self
    }

    /// Engine configuration shared by all peers.
    #[must_use]
    pub fn base_config(mut self, config: Config) -> Self {
        self.cfg.base_config = config;
        self
    }

    /// Edit the base engine configuration in place.
    #[must_use]
    pub fn configure(mut self, edit: impl FnOnce(&mut Config)) -> Self {
        edit(&mut self.cfg.base_config);
        self
    }

    /// Carry real bytes and verify hashes.
    #[must_use]
    pub fn real_data(mut self, on: bool) -> Self {
        self.cfg.real_data = on;
        self
    }

    /// Attach a deterministic metrics registry to every swarm.
    #[must_use]
    pub fn metrics(mut self, on: bool) -> Self {
        self.cfg.metrics = on;
        self
    }

    /// Attach a deterministic span profiler to every swarm.
    #[must_use]
    pub fn profile(mut self, on: bool) -> Self {
        self.cfg.profile = on;
        self
    }

    /// Attach series + live health monitors to every swarm.
    #[must_use]
    pub fn series(mut self, on: bool) -> Self {
        self.cfg.series = on;
        self
    }

    /// Network model applied to every scenario swarm.
    #[must_use]
    pub fn net(mut self, model: NetModel) -> Self {
        self.cfg.net = Some(model);
        self
    }

    /// Attach a causal tracer sampling one in `rate` piece/peer ids.
    #[must_use]
    pub fn trace_sample(mut self, rate: u64) -> Self {
        self.cfg.trace_sample = Some(rate.max(1));
        self
    }

    /// Directory for per-scenario flight-recorder bundles.
    #[must_use]
    pub fn flight_dir(mut self, dir: impl Into<String>) -> Self {
        self.cfg.flight_dir = Some(dir.into());
        self
    }

    /// Finish: returns the assembled config.
    pub fn build(self) -> RunConfig {
        self.cfg
    }
}

/// What actually ran after scaling (printed by every harness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledParams {
    /// Torrent ID.
    pub id: u32,
    /// Simulated seeds.
    pub seeds: u32,
    /// Simulated leechers (initial population, local peer excluded).
    pub leechers: u32,
    /// Pieces in the scaled content.
    pub pieces: u32,
    /// Piece length (bytes).
    pub piece_len: u32,
    /// Scale factor applied to the peer population.
    pub peer_scale: f64,
    /// Session length in seconds.
    pub session_secs: u64,
}

/// A completed scenario: the local peer's trace plus swarm-level results.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The Table I row that was simulated.
    pub spec: ScenarioSpec,
    /// The scaling that was applied.
    pub scaled: ScaledParams,
    /// The instrumented local peer's trace.
    pub trace: Trace,
    /// Swarm-level results (completions, tracker stats).
    pub result: SwarmResult,
    /// Deterministic span profile, when [`RunConfig::profile`] was set.
    /// Per-scenario profiles merge commutatively
    /// ([`bt_obs::Profile::merge`]), so a sweep can aggregate them in
    /// spec order regardless of which worker ran what.
    pub profile: Option<bt_obs::Profile>,
    /// Time-series JSON export, when [`RunConfig::series`] was set. A
    /// pure function of the spec and seed: byte-identical across runs
    /// and worker counts.
    pub series: Option<String>,
    /// Sorted deterministic JSONL causal-trace export, when
    /// [`RunConfig::trace_sample`] was set. Byte-identical across runs
    /// and worker counts.
    pub trace_jsonl: Option<String>,
    /// Chrome trace-event JSON of the same causal events (open in
    /// Perfetto / `chrome://tracing`).
    pub trace_chrome: Option<String>,
}

/// Scale a Table I row under `cfg`.
pub fn scale(spec: &ScenarioSpec, cfg: &RunConfig) -> ScaledParams {
    let total = spec.seeds + spec.leechers;
    let peer_scale = if total as usize <= cfg.max_peers {
        1.0
    } else {
        cfg.max_peers as f64 / f64::from(total)
    };
    let mut seeds = (f64::from(spec.seeds) * peer_scale).round() as u32;
    if spec.seeds > 0 {
        seeds = seeds.max(1);
    }
    let mut leechers = (f64::from(spec.leechers) * peer_scale).round() as u32;
    if spec.leechers > 0 {
        leechers = leechers.max(2);
    }
    // 256 kB pieces: size → piece count, clamped. (Table I's sizes range
    // 6 MB – 3 GB; the *relative* sizes survive the clamp.)
    let pieces = (spec.size_mb * 4).clamp(cfg.min_pieces, cfg.max_pieces);
    ScaledParams {
        id: spec.id,
        seeds,
        leechers,
        pieces,
        piece_len: 256 * 1024,
        peer_scale,
        session_secs: cfg.session.0 / 1_000_000,
    }
}

/// Build the swarm spec for one Table I row. The *local* (instrumented)
/// peer is always the last entry and joins a torrent that is already
/// running, exactly like the paper's measurement client.
pub fn build_swarm_spec(spec: &ScenarioSpec, cfg: &RunConfig) -> (SwarmSpec, ScaledParams) {
    let scaled = scale(spec, cfg);
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(2654435761)
            .wrapping_add(u64::from(spec.id)),
    );
    let mut peers: Vec<BehaviorProfile> = Vec::new();

    let clients = [
        ClientKind::Mainline402,
        ClientKind::Mainline400,
        ClientKind::Mainline362,
        ClientKind::Azureus,
        ClientKind::BitComet,
        ClientKind::LibTorrent,
    ];
    let pick_client = |rng: &mut SmallRng| clients[rng.random_range(0..clients.len())];

    // Initial seeds. The first is the *initial seed* of the torrent with
    // the paper's default 20 kB/s upload; later seeds get the usual mix.
    for i in 0..scaled.seeds {
        let capacity = if i == 0 {
            CapacityClass::Default
        } else {
            CapacityClass::sample(&mut rng)
        };
        peers.push(BehaviorProfile {
            role: Role::Seed,
            client: pick_client(&mut rng),
            capacity,
            join_at: Duration::ZERO,
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    // Initial leechers: capacity mix, some free riders, staggered joins
    // within the first minute (they were already present; the stagger
    // only avoids a same-instant thundering herd).
    for _ in 0..scaled.leechers {
        let role = if rng.random_range(0.0..1.0) < cfg.free_rider_fraction {
            Role::FreeRider
        } else {
            Role::Leecher
        };
        let restart_after = if rng.random_range(0.0..1.0) < cfg.restarter_fraction {
            Some(Duration::from_secs(rng.random_range(300..1500)))
        } else {
            None
        };
        peers.push(BehaviorProfile {
            role,
            client: pick_client(&mut rng),
            capacity: CapacityClass::sample(&mut rng),
            join_at: Duration::from_millis(rng.random_range(0..60_000)),
            seed_linger: Some(Duration::from_secs(rng.random_range(300..1200))),
            depart_at: None,
            prepopulate: true,
            restart_after,
        });
    }
    // Churners and later arrivals spread over the session.
    let churners = (f64::from(scaled.leechers) * cfg.churner_fraction).round() as u32;
    for _ in 0..churners {
        peers.push(BehaviorProfile {
            role: Role::Churner,
            client: pick_client(&mut rng),
            capacity: CapacityClass::sample(&mut rng),
            join_at: Duration(rng.random_range(0..cfg.session.0)),
            seed_linger: None,
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    let arrivals = (f64::from(scaled.leechers) * cfg.arrival_fraction).round() as u32;
    for _ in 0..arrivals {
        peers.push(BehaviorProfile {
            role: Role::Leecher,
            client: pick_client(&mut rng),
            capacity: CapacityClass::sample(&mut rng),
            join_at: Duration(rng.random_range(60_000_000..cfg.session.0.max(120_000_000))),
            seed_linger: Some(Duration::from_secs(rng.random_range(300..1200))),
            depart_at: None,
            prepopulate: false,
            restart_after: None,
        });
    }
    // The instrumented local peer: paper defaults, joins shortly after
    // the initial minute.
    let local_idx = peers.len();
    peers.push(BehaviorProfile {
        role: Role::Leecher,
        client: ClientKind::Mainline402,
        capacity: CapacityClass::Default,
        join_at: Duration::from_secs(90),
        seed_linger: None, // stays for the whole session, like the paper
        depart_at: None,
        prepopulate: false,
        restart_after: None,
    });

    let mut builder = SwarmSpec::builder()
        .seed(cfg.seed.wrapping_add(u64::from(spec.id) * 1_000_003))
        .pieces(scaled.pieces, scaled.piece_len)
        .real_data(cfg.real_data)
        .duration(cfg.session)
        .base_config(cfg.base_config.clone())
        .peers(peers)
        .local(local_idx)
        .available_fraction(if spec.transient {
            cfg.transient_available
        } else {
            1.0
        })
        .prepop_completion_max(0.9);
    if let Some(net) = &cfg.net {
        builder = builder.net(net.clone());
    }
    (builder.build(), scaled)
}

/// Run one Table I scenario end to end.
pub fn run_scenario(spec: &ScenarioSpec, cfg: &RunConfig) -> ScenarioOutcome {
    let (mut swarm_spec, scaled) = build_swarm_spec(spec, cfg);
    let mut swarm = Swarm::new(std::mem::take(&mut swarm_spec));
    let registry = (cfg.metrics || cfg.series).then(bt_obs::Registry::new_manual);
    if let Some(reg) = &registry {
        swarm = swarm.with_metrics(reg.clone());
    }
    let store = match (&registry, cfg.series) {
        (Some(reg), true) => Some(bt_obs::SeriesStore::new(reg)),
        _ => None,
    };
    if let Some(s) = &store {
        swarm = swarm
            .with_series(s.clone())
            .with_health(bt_analysis::live::Thresholds::default());
    }
    if cfg.profile {
        swarm = swarm.with_profiler(bt_obs::Profiler::new(bt_obs::TimeSource::manual()));
    }
    // Causal tracer + flight recorder, seeded like the swarm so the
    // sampled id set is a pure function of (cfg.seed, torrent id).
    let swarm_seed = cfg.seed.wrapping_add(u64::from(spec.id) * 1_000_003);
    let flight = cfg
        .flight_dir
        .as_ref()
        .map(|dir| bt_obs::FlightRecorder::new(dir, 4096, swarm_seed));
    let tracer = cfg.trace_sample.map(|rate| {
        let t = bt_obs::Tracer::new(swarm_seed, rate);
        match &flight {
            Some(fr) => t.with_flight(fr.clone()),
            None => t,
        }
    });
    if let Some(t) = &tracer {
        swarm = swarm.with_trace(t.clone());
    }
    if let Some(fr) = &flight {
        swarm = swarm.with_flight_recorder(fr.clone());
    }
    // Label the trace with the Table I identity.
    let mut result = swarm.run();
    let profile = result.profile.take();
    let mut trace = result.trace.as_ref().expect("local peer recorded").clone();
    trace.meta.torrent = spec.label();
    trace.meta.torrent_id = spec.id;
    ScenarioOutcome {
        spec: *spec,
        scaled,
        trace,
        result,
        profile,
        series: store.map(|s| s.to_json(None)),
        trace_jsonl: tracer.as_ref().map(bt_obs::Tracer::to_jsonl),
        trace_chrome: tracer.as_ref().map(bt_obs::Tracer::to_chrome_json),
    }
}

/// Run every Table I scenario in sequence, calling `progress` after each.
pub fn run_table1(
    cfg: &RunConfig,
    mut progress: impl FnMut(&ScenarioOutcome),
) -> Vec<ScenarioOutcome> {
    let mut out = Vec::new();
    for spec in crate::table1::table1() {
        let outcome = run_scenario(&spec, cfg);
        progress(&outcome);
        out.push(outcome);
    }
    out
}

/// The default worker count for parallel sweeps: one per hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `specs` across a pool of `jobs` worker threads.
///
/// Every scenario derives its RNG seeds from `(cfg.seed, spec.id)` alone
/// — nothing about worker count, scheduling, or completion order feeds
/// into a simulation — so each outcome is byte-identical to what
/// [`run_scenario`] produces sequentially, and the returned vector is in
/// `specs` order regardless of which worker finished first.
///
/// `progress` is invoked once per completed scenario, in *completion*
/// order, from whichever worker finished it (serialised by a lock).
///
/// A panic inside one scenario does not tear down the pool: remaining
/// scenarios still run, and the panic is re-raised afterwards naming the
/// torrent ID that failed.
pub fn run_scenarios_parallel(
    cfg: &RunConfig,
    specs: &[ScenarioSpec],
    jobs: usize,
    progress: impl FnMut(&ScenarioOutcome) + Send,
) -> Vec<ScenarioOutcome> {
    run_specs_with(specs, jobs, progress, |spec| run_scenario(spec, cfg))
}

/// The worker-pool core behind [`run_scenarios_parallel`], generic over
/// the per-scenario function so panic isolation is testable.
fn run_specs_with(
    specs: &[ScenarioSpec],
    jobs: usize,
    progress: impl FnMut(&ScenarioOutcome) + Send,
    run: impl Fn(&ScenarioSpec) -> ScenarioOutcome + Sync,
) -> Vec<ScenarioOutcome> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let jobs = jobs.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let progress = parking_lot::Mutex::new(progress);
    let slots: Vec<parking_lot::Mutex<Option<ScenarioOutcome>>> = specs
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let panics: parking_lot::Mutex<Vec<(u32, String)>> = parking_lot::Mutex::new(Vec::new());

    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(spec))) {
                    Ok(outcome) => {
                        (progress.lock())(&outcome);
                        *slots[i].lock() = Some(outcome);
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panics.lock().push((spec.id, msg));
                    }
                }
            });
        }
    })
    .expect("scenario panics are caught inside the workers");

    let mut failures = panics.into_inner();
    if !failures.is_empty() {
        failures.sort_unstable();
        let ids: Vec<String> = failures.iter().map(|(id, _)| id.to_string()).collect();
        panic!(
            "scenario worker panicked for torrent(s) {}: {}",
            ids.join(", "),
            failures[0].1
        );
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("no panic, so every slot filled"))
        .collect()
}

/// Run every Table I scenario across `jobs` workers. Outcomes come back
/// in Table I order and are byte-identical to [`run_table1`]'s; see
/// [`run_scenarios_parallel`].
pub fn run_table1_parallel(
    cfg: &RunConfig,
    jobs: usize,
    progress: impl FnMut(&ScenarioOutcome) + Send,
) -> Vec<ScenarioOutcome> {
    run_scenarios_parallel(cfg, &crate::table1::table1(), jobs, progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::torrent;

    #[test]
    fn scaling_preserves_ratio_direction() {
        let cfg = RunConfig::default();
        let s8 = scale(&torrent(8), &cfg); // 1 : 861
        assert_eq!(s8.seeds, 1, "single-seed torrents keep exactly one seed");
        assert!(s8.leechers > 50);
        let s25 = scale(&torrent(25), &cfg); // 11641 : 5418 (seed-heavy)
        assert!(
            s25.seeds > s25.leechers,
            "seed-heavy torrents stay seed-heavy"
        );
        let s2 = scale(&torrent(2), &cfg); // tiny torrent: unscaled
        assert_eq!(s2.peer_scale, 1.0);
        assert_eq!(s2.seeds, 1);
        assert_eq!(s2.leechers, 2);
        let s19 = scale(&torrent(19), &cfg); // 160 : 5, mildly scaled
        assert!(
            s19.seeds > 20 * s19.leechers,
            "ratio 32:1 preserved in direction"
        );
    }

    #[test]
    fn piece_counts_bounded_but_ordered() {
        let cfg = RunConfig::default();
        let small = scale(&torrent(19), &cfg); // 6 MB
        let large = scale(&torrent(8), &cfg); // 3000 MB
        assert_eq!(small.pieces, cfg.min_pieces);
        assert_eq!(large.pieces, cfg.max_pieces);
        assert!(small.pieces < large.pieces);
    }

    #[test]
    fn swarm_spec_marks_transient_availability() {
        let cfg = RunConfig::quick();
        let (spec8, _) = build_swarm_spec(&torrent(8), &cfg);
        assert!((spec8.available_fraction - cfg.transient_available).abs() < 1e-9);
        let (spec7, _) = build_swarm_spec(&torrent(7), &cfg);
        assert_eq!(spec7.available_fraction, 1.0);
    }

    #[test]
    fn builder_mirrors_struct_construction_and_net_reaches_specs() {
        let built = RunConfig::quick()
            .into_builder()
            .seed(7)
            .session(Duration::from_secs(900))
            .build();
        let literal = RunConfig {
            seed: 7,
            session: Duration::from_secs(900),
            ..RunConfig::quick()
        };
        assert_eq!(built, literal);

        let wan = RunConfig::quick()
            .into_builder()
            .net(bt_sim::NetModel::preset("two_isp_bottleneck").unwrap())
            .build();
        let (spec, _) = build_swarm_spec(&torrent(2), &wan);
        assert!(matches!(spec.net, Some(bt_sim::NetModel::FullDuplex(_))));
        let (plain, _) = build_swarm_spec(&torrent(2), &RunConfig::quick());
        assert_eq!(plain.net, None, "no override leaves the spec default");
    }

    #[test]
    fn local_peer_is_last_and_instrumented() {
        let cfg = RunConfig::quick();
        let (spec, _) = build_swarm_spec(&torrent(3), &cfg);
        assert_eq!(spec.local, Some(spec.peers.len() - 1));
        let local = &spec.peers[spec.peers.len() - 1];
        assert_eq!(local.client, ClientKind::Mainline402);
        assert_eq!(local.capacity, CapacityClass::Default);
    }

    #[test]
    fn quick_scenario_runs_and_labels_trace() {
        let cfg = RunConfig::quick();
        let outcome = run_scenario(&torrent(3), &cfg);
        assert_eq!(outcome.trace.meta.torrent_id, 3);
        assert_eq!(outcome.trace.meta.torrent, "torrent-03");
        assert!(!outcome.trace.is_empty());
        // The local peer should complete this small, seeded torrent.
        let local = outcome.result.completion.last().unwrap();
        assert!(local.is_some(), "local peer did not finish torrent 3");
    }

    #[test]
    fn deterministic_outcomes() {
        let cfg = RunConfig::quick();
        let a = run_scenario(&torrent(2), &cfg);
        let b = run_scenario(&torrent(2), &cfg);
        assert_eq!(a.trace.events, b.trace.events);
    }

    #[test]
    fn profiled_scenario_matches_bare_run_and_carries_profile() {
        let cfg = RunConfig::quick();
        let bare = run_scenario(&torrent(2), &cfg);
        assert!(bare.profile.is_none());
        let profiled_cfg = RunConfig {
            profile: true,
            ..RunConfig::quick()
        };
        let profiled = run_scenario(&torrent(2), &profiled_cfg);
        let profile = profiled.profile.as_ref().expect("profile requested");
        assert_eq!(
            bare.trace.events, profiled.trace.events,
            "span recording must not perturb the simulation"
        );
        let pops = profile.get(&["sim.event_pop"]).expect("root span present");
        assert_eq!(pops.count, profiled.result.events_processed);
    }

    #[test]
    fn traced_scenario_matches_bare_run_and_exports_lifecycles() {
        let bare = run_scenario(&torrent(2), &RunConfig::quick());
        let traced_cfg = RunConfig::quick().into_builder().trace_sample(1).build();
        let traced = run_scenario(&torrent(2), &traced_cfg);
        assert_eq!(
            bare.trace.events, traced.trace.events,
            "causal tracing must not perturb the simulation"
        );
        let jsonl = traced.trace_jsonl.as_deref().expect("trace requested");
        assert!(jsonl.contains("\"injected\""), "{jsonl}");
        assert!(jsonl.contains("\"verified\""), "{jsonl}");
        assert!(jsonl.contains("\"round\""), "missing choke audit");
        let chrome = traced.trace_chrome.as_deref().expect("trace requested");
        assert!(chrome.contains("\"traceEvents\""));
        assert!(bare.trace_jsonl.is_none());
    }

    #[test]
    fn parallel_subset_matches_sequential_in_spec_order() {
        let cfg = RunConfig::quick();
        let specs = [torrent(2), torrent(19), torrent(3)];
        let sequential: Vec<ScenarioOutcome> =
            specs.iter().map(|s| run_scenario(s, &cfg)).collect();
        let progressed = parking_lot::Mutex::new(Vec::new());
        let parallel = run_scenarios_parallel(&cfg, &specs, 3, |o| {
            progressed.lock().push(o.spec.id);
        });
        assert_eq!(parallel.len(), specs.len());
        for (seq, par) in sequential.iter().zip(&parallel) {
            assert_eq!(seq.spec.id, par.spec.id, "outcome order follows specs");
            assert_eq!(seq.scaled, par.scaled);
            assert_eq!(seq.trace.events, par.trace.events);
            assert_eq!(seq.result.completion, par.result.completion);
        }
        let mut seen = progressed.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, vec![2, 3, 19], "progress fired once per scenario");
    }

    #[test]
    fn parallel_panic_reports_torrent_id_and_finishes_rest() {
        let cfg = RunConfig::quick();
        let specs = [torrent(2), torrent(19)];
        let completed = parking_lot::Mutex::new(Vec::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            super::run_specs_with(
                &specs,
                2,
                |o| completed.lock().push(o.spec.id),
                |spec| {
                    if spec.id == 19 {
                        panic!("injected failure");
                    }
                    run_scenario(spec, &cfg)
                },
            )
        }));
        let payload = result.expect_err("the injected panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(
            msg.contains("torrent(s) 19"),
            "panic names the torrent: {msg}"
        );
        assert!(
            msg.contains("injected failure"),
            "panic keeps the cause: {msg}"
        );
        assert_eq!(
            completed.into_inner(),
            vec![2],
            "the healthy scenario still completed"
        );
    }
}
