//! Block request scheduling: strict priority and end game mode.
//!
//! §II-C.1 describes two block-level policies layered on the piece picker:
//!
//! * **Strict priority** — "When at least one block of a piece has been
//!   requested, the other blocks of the same piece are requested with the
//!   highest priority", minimising partially received pieces (only
//!   complete pieces can be served).
//! * **End game mode** — "once a peer has requested all blocks ... the
//!   peer requests all blocks not yet received to all the peers in its
//!   peer set that have the corresponding blocks. Each time a block is
//!   received, it cancels the request for the received block to all the
//!   peers ... that have the corresponding pending request."
//!
//! [`RequestScheduler`] owns the partial-piece state and the per-peer
//! outstanding-request bookkeeping; it consults a [`PiecePicker`] only to
//! open new pieces.

use crate::geometry::Geometry;
use crate::picker::{PickContext, PiecePicker};
use bt_wire::message::BlockRef;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Download state of one partially received piece.
#[derive(Debug, Clone)]
struct PartialPiece {
    /// Per-block: received?
    received: Vec<bool>,
    /// Per-block: number of outstanding requests (can exceed 1 in end game).
    requested: Vec<u16>,
    received_count: u32,
}

impl PartialPiece {
    fn new(blocks: u32) -> PartialPiece {
        PartialPiece {
            received: vec![false; blocks as usize],
            requested: vec![0; blocks as usize],
            received_count: 0,
        }
    }

    fn is_complete(&self) -> bool {
        self.received_count as usize == self.received.len()
    }
}

/// Result of [`RequestScheduler::on_block_received`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockReceipt<P> {
    /// `Some(piece)` when this block completed its piece. The caller must
    /// verify the hash and then call [`RequestScheduler::on_piece_verified`]
    /// or [`RequestScheduler::on_piece_failed`].
    pub completed_piece: Option<u32>,
    /// `cancel` messages to send: end-game duplicates now satisfied.
    pub cancels: Vec<(P, BlockRef)>,
    /// False if the block was not an outstanding request from this peer
    /// (stale, duplicate, or unsolicited) and was dropped.
    pub accepted: bool,
}

/// Block request scheduler for one torrent, generic over the peer key `P`.
#[derive(Debug)]
pub struct RequestScheduler<P: Copy + Eq + Ord + Hash> {
    geometry: Geometry,
    partial: HashMap<u32, PartialPiece>,
    outstanding: HashMap<P, HashSet<BlockRef>>,
    endgame: bool,
    endgame_enabled: bool,
}

impl<P: Copy + Eq + Ord + Hash> RequestScheduler<P> {
    /// Create a scheduler for a torrent with the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        RequestScheduler {
            geometry,
            partial: HashMap::new(),
            outstanding: HashMap::new(),
            endgame: false,
            endgame_enabled: true,
        }
    }

    /// Disable end game mode (ablation switch; §IV-A.3 notes all paper
    /// experiments ran with it enabled, which is the default here too).
    pub fn set_endgame_enabled(&mut self, enabled: bool) {
        self.endgame_enabled = enabled;
        if !enabled {
            self.endgame = false;
        }
    }

    /// The torrent geometry this scheduler operates on.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Whether end game mode has been entered (§II-C.1). It is sticky until
    /// the download completes, matching mainline.
    pub fn in_endgame(&self) -> bool {
        self.endgame
    }

    /// Pieces currently being downloaded.
    pub fn in_progress(&self) -> impl Iterator<Item = u32> + '_ {
        self.partial.keys().copied()
    }

    /// True if `piece` has at least one received or requested block.
    pub fn is_in_progress(&self, piece: u32) -> bool {
        self.partial.contains_key(&piece)
    }

    /// Outstanding requests to `peer`.
    pub fn outstanding_to(&self, peer: P) -> usize {
        self.outstanding.get(&peer).map_or(0, HashSet::len)
    }

    /// Total outstanding requests across all peers.
    pub fn total_outstanding(&self) -> usize {
        self.outstanding.values().map(HashSet::len).sum()
    }

    /// Compute up to `max_new` block requests to send to `peer`.
    ///
    /// Order of preference:
    /// 1. *strict priority*: missing, unrequested blocks of pieces already
    ///    in progress that the remote has;
    /// 2. new pieces chosen by `picker`;
    /// 3. if the torrent is fully requested, *end game*: duplicate
    ///    requests for missing blocks the remote has (at most one
    ///    duplicate per block per peer).
    ///
    /// The returned requests are already recorded as outstanding; the
    /// caller must actually transmit them.
    pub fn next_requests(
        &mut self,
        peer: P,
        ctx: &PickContext<'_>,
        picker: &mut dyn PiecePicker,
        rng: &mut dyn rand::RngCore,
        max_new: usize,
    ) -> Vec<BlockRef> {
        let mut out = Vec::new();
        if max_new == 0 {
            return out;
        }

        // 1. Strict priority: continue partial pieces the remote has.
        // Deterministic order (sorted piece index) keeps runs reproducible.
        let mut partial_pieces: Vec<u32> = self
            .partial
            .iter()
            .filter(|(_, st)| !st.is_complete())
            .map(|(&p, _)| p)
            .filter(|&p| p < ctx.remote.len() && ctx.remote.get(p))
            .collect();
        partial_pieces.sort_unstable();
        for piece in partial_pieces {
            self.fill_from_piece(peer, piece, max_new, &mut out);
            if out.len() >= max_new {
                return out;
            }
        }

        // 2. Open new pieces via the picker.
        while out.len() < max_new {
            let in_progress = |p: u32| self.partial.contains_key(&p) || (ctx.in_progress)(p);
            let sub_ctx = PickContext {
                own: ctx.own,
                remote: ctx.remote,
                availability: ctx.availability,
                in_progress: &in_progress,
                downloaded_pieces: ctx.downloaded_pieces,
            };
            let Some(piece) = picker.pick(&sub_ctx, rng) else {
                break;
            };
            debug_assert!(
                !self.partial.contains_key(&piece),
                "picker reopened a piece"
            );
            self.partial.insert(
                piece,
                PartialPiece::new(self.geometry.blocks_in_piece(piece)),
            );
            self.fill_from_piece(peer, piece, max_new, &mut out);
        }
        if out.len() >= max_new {
            return out;
        }

        // 3. End game: all blocks of all wanted pieces requested or
        // received? Then duplicate-request missing blocks from this peer.
        if self.endgame_enabled && !self.endgame && self.all_blocks_requested(ctx) {
            self.endgame = true;
        }
        if self.endgame {
            self.fill_endgame(peer, ctx, max_new, &mut out);
        }
        out
    }

    /// Record a received block. Returns what to do next (verify a piece,
    /// send cancels) and whether the block was accepted at all.
    pub fn on_block_received(&mut self, peer: P, block: BlockRef) -> BlockReceipt<P> {
        let was_outstanding = self
            .outstanding
            .get_mut(&peer)
            .is_some_and(|set| set.remove(&block));
        let Some(state) = self.partial.get_mut(&block.piece) else {
            return BlockReceipt {
                completed_piece: None,
                cancels: Vec::new(),
                accepted: false,
            };
        };
        let idx = block.block_index() as usize;
        if idx >= state.received.len() {
            return BlockReceipt {
                completed_piece: None,
                cancels: Vec::new(),
                accepted: false,
            };
        }
        if was_outstanding {
            state.requested[idx] = state.requested[idx].saturating_sub(1);
        }
        if state.received[idx] {
            // End-game duplicate that raced its cancel: drop it.
            return BlockReceipt {
                completed_piece: None,
                cancels: Vec::new(),
                accepted: false,
            };
        }
        state.received[idx] = true;
        state.received_count += 1;
        let completed = state.is_complete().then_some(block.piece);

        // Cancel this block everywhere else (end game mode semantics).
        let mut cancels = Vec::new();
        if state.requested[idx] > 0 {
            for (&other, set) in self.outstanding.iter_mut() {
                if set.remove(&block) {
                    cancels.push((other, block));
                }
            }
            cancels.sort_unstable_by_key(|(p, _)| *p);
            self.partial
                .get_mut(&block.piece)
                .expect("still present")
                .requested[idx] = 0;
        }
        BlockReceipt {
            completed_piece: completed,
            cancels,
            accepted: true,
        }
    }

    /// The engine verified the completed piece's hash: drop its state.
    /// The caller updates its own bitfield; the scheduler forgets the piece.
    pub fn on_piece_verified(&mut self, piece: u32) {
        let state = self.partial.remove(&piece);
        debug_assert!(
            state.is_some_and(|s| s.is_complete()),
            "verifying incomplete piece"
        );
    }

    /// The completed piece failed hash verification: reset it so every
    /// block is re-requested from scratch.
    pub fn on_piece_failed(&mut self, piece: u32) {
        if let Some(state) = self.partial.get_mut(&piece) {
            *state = PartialPiece::new(self.geometry.blocks_in_piece(piece));
            // Any outstanding end-game duplicates for this piece are now
            // stale; drop them from the bookkeeping.
            for set in self.outstanding.values_mut() {
                set.retain(|b| b.piece != piece);
            }
        }
    }

    /// The peer choked us: mainline discards its outstanding requests.
    /// Returns the requests that were dropped (their blocks become
    /// requestable again).
    pub fn on_choked(&mut self, peer: P) -> Vec<BlockRef> {
        let dropped: Vec<BlockRef> = self
            .outstanding
            .remove(&peer)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for b in &dropped {
            if let Some(state) = self.partial.get_mut(&b.piece) {
                let idx = b.block_index() as usize;
                state.requested[idx] = state.requested[idx].saturating_sub(1);
            }
        }
        dropped
    }

    /// The peer disconnected; same bookkeeping as a choke.
    pub fn on_peer_gone(&mut self, peer: P) -> Vec<BlockRef> {
        self.on_choked(peer)
    }

    /// The peer explicitly rejected one request (Fast Extension
    /// `reject request`): release just that block for re-requesting.
    pub fn on_request_rejected(&mut self, peer: P, block: BlockRef) -> bool {
        let removed = self
            .outstanding
            .get_mut(&peer)
            .is_some_and(|set| set.remove(&block));
        if removed {
            if let Some(state) = self.partial.get_mut(&block.piece) {
                let idx = block.block_index() as usize;
                state.requested[idx] = state.requested[idx].saturating_sub(1);
            }
        }
        removed
    }

    fn fill_from_piece(&mut self, peer: P, piece: u32, max: usize, out: &mut Vec<BlockRef>) {
        let state = self.partial.get_mut(&piece).expect("piece in progress");
        let blocks = state.received.len();
        for idx in 0..blocks {
            if out.len() >= max {
                return;
            }
            if !state.received[idx] && state.requested[idx] == 0 {
                let block = self.geometry.block_ref(piece, idx as u32);
                state.requested[idx] += 1;
                self.outstanding.entry(peer).or_default().insert(block);
                out.push(block);
            }
        }
    }

    fn all_blocks_requested(&self, ctx: &PickContext<'_>) -> bool {
        // Every piece we still need must be in progress...
        let all_open = ctx.own.iter_zeros().all(|p| self.partial.contains_key(&p));
        if !all_open {
            return false;
        }
        // ...and every block of every open piece received or requested.
        self.partial.values().all(|st| {
            st.received
                .iter()
                .zip(st.requested.iter())
                .all(|(&rcv, &req)| rcv || req > 0)
        })
    }

    fn fill_endgame(
        &mut self,
        peer: P,
        ctx: &PickContext<'_>,
        max: usize,
        out: &mut Vec<BlockRef>,
    ) {
        let mut pieces: Vec<u32> = self
            .partial
            .iter()
            .filter(|(_, st)| !st.is_complete())
            .map(|(&p, _)| p)
            .filter(|&p| p < ctx.remote.len() && ctx.remote.get(p))
            .collect();
        pieces.sort_unstable();
        for piece in pieces {
            let blocks = self.partial[&piece].received.len();
            for idx in 0..blocks {
                if out.len() >= max {
                    return;
                }
                let state = &self.partial[&piece];
                if state.received[idx] {
                    continue;
                }
                let block = self.geometry.block_ref(piece, idx as u32);
                let set = self.outstanding.entry(peer).or_default();
                if set.contains(&block) {
                    continue; // already asked this peer
                }
                set.insert(block);
                self.partial.get_mut(&piece).expect("present").requested[idx] += 1;
                out.push(block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::Availability;
    use crate::bitfield::Bitfield;
    use crate::picker::{RandomPicker, SequentialPicker};
    use bt_wire::metainfo::BLOCK_LEN;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    type Peer = u32;

    /// 4 pieces × 2 blocks of 16 kB.
    fn geometry() -> Geometry {
        Geometry::new(u64::from(8 * BLOCK_LEN), 2 * BLOCK_LEN)
    }

    struct Harness {
        own: Bitfield,
        remote: Bitfield,
        av: Availability,
        sched: RequestScheduler<Peer>,
        rng: SmallRng,
    }

    impl Harness {
        fn new() -> Harness {
            let g = geometry();
            let n = g.num_pieces();
            let mut av = Availability::new(n);
            av.add_peer(&Bitfield::full(n));
            Harness {
                own: Bitfield::new(n),
                remote: Bitfield::full(n),
                av,
                sched: RequestScheduler::new(g),
                rng: SmallRng::seed_from_u64(5),
            }
        }

        fn request(
            &mut self,
            peer: Peer,
            picker: &mut dyn PiecePicker,
            max: usize,
        ) -> Vec<BlockRef> {
            let ctx = PickContext {
                own: &self.own,
                remote: &self.remote,
                availability: &self.av,
                in_progress: &|_| false,
                downloaded_pieces: self.own.count_ones(),
            };
            self.sched
                .next_requests(peer, &ctx, picker, &mut self.rng, max)
        }
    }

    #[test]
    fn strict_priority_finishes_open_piece_first() {
        let mut h = Harness::new();
        let mut picker = SequentialPicker;
        let first = h.request(1, &mut picker, 1);
        assert_eq!(first.len(), 1);
        let piece = first[0].piece;
        // Next request (even from another peer) must be the open piece's
        // other block, not a new piece.
        let second = h.request(2, &mut picker, 1);
        assert_eq!(second[0].piece, piece);
        assert_ne!(second[0].offset, first[0].offset);
    }

    #[test]
    fn requests_are_not_duplicated_outside_endgame() {
        let mut h = Harness::new();
        let mut picker = RandomPicker;
        let a = h.request(1, &mut picker, 8);
        let b = h.request(2, &mut picker, 8);
        assert_eq!(a.len(), 8, "all blocks requested");
        assert!(
            b.is_empty() || h.sched.in_endgame(),
            "no duplicates before endgame"
        );
    }

    #[test]
    fn block_receipt_completes_piece() {
        let mut h = Harness::new();
        let mut picker = SequentialPicker;
        let reqs = h.request(1, &mut picker, 2);
        assert_eq!(reqs.len(), 2);
        let r1 = h.sched.on_block_received(1, reqs[0]);
        assert!(r1.accepted);
        assert_eq!(r1.completed_piece, None);
        let r2 = h.sched.on_block_received(1, reqs[1]);
        assert_eq!(r2.completed_piece, Some(reqs[0].piece));
        h.sched.on_piece_verified(reqs[0].piece);
        assert!(!h.sched.is_in_progress(reqs[0].piece));
    }

    #[test]
    fn unsolicited_block_is_rejected() {
        let mut h = Harness::new();
        let block = h.sched.geometry().block_ref(0, 0);
        let r = h.sched.on_block_received(9, block);
        assert!(!r.accepted);
    }

    #[test]
    fn endgame_duplicates_and_cancels() {
        let mut h = Harness::new();
        let mut picker = RandomPicker;
        // Peer 1 requests everything; torrent is now fully requested.
        let all = h.request(1, &mut picker, 64);
        assert_eq!(all.len(), 8);
        // Peer 2 now enters end game: duplicates of all 8 missing blocks.
        let dups = h.request(2, &mut picker, 64);
        assert!(h.sched.in_endgame());
        assert_eq!(dups.len(), 8);
        // Peer 2 must not be asked twice for the same block.
        let dups2 = h.request(2, &mut picker, 64);
        assert!(dups2.is_empty());
        // A block arriving from peer 1 cancels peer 2's duplicate.
        let receipt = h.sched.on_block_received(1, all[0]);
        assert!(receipt.accepted);
        assert_eq!(receipt.cancels, vec![(2, all[0])]);
        // The raced duplicate from peer 2 is then dropped.
        let dup_receipt = h.sched.on_block_received(2, all[0]);
        assert!(!dup_receipt.accepted);
    }

    #[test]
    fn choke_releases_blocks_for_rerequest() {
        let mut h = Harness::new();
        let mut picker = SequentialPicker;
        let reqs = h.request(1, &mut picker, 2);
        let dropped = h.sched.on_choked(1);
        assert_eq!(dropped.len(), 2);
        assert_eq!(h.sched.outstanding_to(1), 0);
        // The same blocks are re-requestable from another peer.
        let again = h.request(2, &mut picker, 2);
        let mut expected: Vec<_> = reqs.clone();
        expected.sort_by_key(|b| (b.piece, b.offset));
        let mut got = again.clone();
        got.sort_by_key(|b| (b.piece, b.offset));
        assert_eq!(got, expected);
    }

    #[test]
    fn hash_failure_resets_piece() {
        let mut h = Harness::new();
        let mut picker = SequentialPicker;
        let reqs = h.request(1, &mut picker, 2);
        h.sched.on_block_received(1, reqs[0]);
        let r = h.sched.on_block_received(1, reqs[1]);
        let piece = r.completed_piece.unwrap();
        h.sched.on_piece_failed(piece);
        assert!(h.sched.is_in_progress(piece));
        // Both blocks must be requestable again.
        let again = h.request(1, &mut picker, 2);
        assert_eq!(again.len(), 2);
        assert!(again.iter().all(|b| b.piece == piece));
    }

    #[test]
    fn respects_remote_bitfield() {
        let mut h = Harness::new();
        h.remote = Bitfield::new(4);
        h.remote.set(2);
        let mut picker = RandomPicker;
        let reqs = h.request(1, &mut picker, 64);
        assert!(reqs.iter().all(|b| b.piece == 2));
        assert_eq!(reqs.len(), 2);
    }

    #[test]
    fn max_new_caps_pipeline() {
        let mut h = Harness::new();
        let mut picker = RandomPicker;
        let reqs = h.request(1, &mut picker, 3);
        assert_eq!(reqs.len(), 3);
        assert_eq!(h.sched.outstanding_to(1), 3);
        assert_eq!(h.sched.total_outstanding(), 3);
    }

    #[test]
    fn endgame_not_triggered_while_unopened_pieces_remain() {
        let mut h = Harness::new();
        let mut picker = SequentialPicker;
        // Request only piece 0's blocks.
        let _ = h.request(1, &mut picker, 2);
        // Remote 2 has nothing: no requests, and no endgame either.
        h.remote = Bitfield::new(4);
        let none = h.request(2, &mut picker, 8);
        assert!(none.is_empty());
        assert!(!h.sched.in_endgame());
    }
}
