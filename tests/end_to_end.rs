//! End-to-end integration tests: full swarms through the public API,
//! checking protocol-level invariants on the resulting traces.

use bt_repro::analysis::{entropy, fairness, StateWindow};
use bt_repro::instrument::identify::PeerRegistry;
use bt_repro::instrument::trace::{Trace, TraceEvent};
use bt_repro::sim::{BehaviorProfile, Role, Swarm, SwarmSpec};
use bt_repro::torrents::{run_scenario, torrent, RunConfig};
use bt_repro::wire::time::Duration;
use std::collections::HashSet;

fn small_spec(seed: u64, real_data: bool) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile::seed()];
    for _ in 0..6 {
        peers.push(BehaviorProfile::leecher(Duration::ZERO));
    }
    SwarmSpec {
        seed,
        total_len: 12 * 256 * 1024,
        piece_len: 256 * 1024,
        real_data,
        duration: Duration::from_secs(4000),
        peers,
        local: Some(1),
        ..SwarmSpec::default()
    }
}

/// Every block the local peer reports receiving must be unique, and the
/// union of completed pieces must equal the content exactly.
#[test]
fn trace_block_and_piece_accounting() {
    let result = Swarm::new(small_spec(1, true)).run();
    let trace = result.trace.unwrap();
    let mut blocks = HashSet::new();
    let mut pieces = HashSet::new();
    for (_, ev) in trace.iter() {
        match ev {
            TraceEvent::BlockReceived { block, .. } => {
                assert!(
                    blocks.insert((block.piece, block.offset)),
                    "accepted duplicate block {block:?}"
                );
            }
            TraceEvent::PieceCompleted { piece } => {
                assert!(pieces.insert(*piece), "piece {piece} completed twice");
            }
            _ => {}
        }
    }
    assert_eq!(pieces.len(), 12, "all pieces completed");
    assert_eq!(blocks.len(), 12 * 16, "16 blocks per 256 kB piece");
}

/// Trace timestamps are non-decreasing and bounded by the session end.
#[test]
fn trace_is_time_ordered() {
    let result = Swarm::new(small_spec(2, false)).run();
    let trace = result.trace.unwrap();
    let mut last = bt_repro::wire::Instant::ZERO;
    for (t, _) in trace.iter() {
        assert!(t >= last, "events out of order");
        assert!(t <= trace.meta.session_end);
        last = t;
    }
}

/// Every join has at most one matching leave, and interest/choke events
/// only reference joined peers.
#[test]
fn membership_consistency() {
    let result = Swarm::new(small_spec(3, false)).run();
    let trace = result.trace.unwrap();
    let mut open: HashSet<u32> = HashSet::new();
    let mut ever: HashSet<u32> = HashSet::new();
    for (_, ev) in trace.iter() {
        match ev {
            TraceEvent::PeerJoined { peer, .. } => {
                assert!(open.insert(*peer), "peer {peer} joined twice while open");
                ever.insert(*peer);
            }
            TraceEvent::PeerLeft { peer } => {
                assert!(open.remove(peer), "peer {peer} left without joining");
            }
            TraceEvent::BlockReceived { peer, .. }
            | TraceEvent::BlockSent { peer, .. }
            | TraceEvent::LocalChoke { peer, .. } => {
                assert!(ever.contains(peer), "event for unknown peer {peer}");
            }
            _ => {}
        }
    }
}

/// The JSON-lines round trip is lossless for a real trace.
#[test]
fn trace_serialisation_roundtrip() {
    let result = Swarm::new(small_spec(4, false)).run();
    let trace = result.trace.unwrap();
    let text = trace.to_jsonl();
    let back = Trace::from_jsonl(&text).unwrap();
    assert_eq!(back, trace);
}

/// Block corruption in flight is detected (real data mode) and recovered:
/// the download still completes, with at least one recorded hash failure
/// across repeated seeds.
#[test]
fn corruption_detected_and_recovered() {
    let mut failures = 0usize;
    for seed in 0..3 {
        let mut spec = small_spec(100 + seed, true);
        spec.corrupt_block_prob = 0.08;
        spec.duration = Duration::from_secs(8000);
        let result = Swarm::new(spec).run();
        let trace = result.trace.unwrap();
        failures += trace
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::PieceFailed { .. }))
            .count();
        // The local peer must still finish despite corruption.
        assert!(
            result.completion[1].is_some(),
            "seed {seed}: local never completed"
        );
    }
    assert!(
        failures > 0,
        "8% corruption over 3 runs must hit the local peer at least once"
    );
}

/// A Table I scenario end to end: runs, the analysis pipeline consumes
/// the trace, and headline metrics are in-range.
#[test]
fn table1_scenario_with_analysis() {
    let cfg = RunConfig::quick();
    let outcome = run_scenario(&torrent(3), &cfg);
    let trace = &outcome.trace;
    let ent = entropy(trace);
    assert!(!ent.peers.is_empty());
    for p in &ent.peers {
        assert!((0.0..=1.0).contains(&p.local_in_remote));
        assert!((0.0..=1.0).contains(&p.remote_in_local));
        assert!(p.membership_secs >= 10.0, "10-second filter violated");
    }
    let f = fairness(trace, StateWindow::Leecher);
    let share_sum: f64 = f.upload_share.iter().sum();
    assert!(share_sum <= 1.0 + 1e-9, "set shares cannot exceed 1");
    let reg = PeerRegistry::from_trace(trace);
    assert!(reg.unique_peers() <= reg.memberships.len());
}

/// Free riders never serve a block: their trace footprint on other peers
/// contains no uploads.
#[test]
fn free_riders_never_upload() {
    let mut spec = small_spec(5, false);
    spec.peers.push(BehaviorProfile {
        role: Role::FreeRider,
        ..BehaviorProfile::leecher(Duration::ZERO)
    });
    // Instrument the free rider itself.
    spec.local = Some(spec.peers.len() - 1);
    spec.duration = Duration::from_secs(12_000);
    let result = Swarm::new(spec).run();
    let trace = result.trace.unwrap();
    assert!(
        !trace
            .iter()
            .any(|(_, e)| matches!(e, TraceEvent::BlockSent { .. })),
        "free rider uploaded"
    );
    // It still downloads (excess capacity, §IV-B.1).
    assert!(trace
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::BlockReceived { .. })));
}

/// The end game mode fires on the instrumented peer and is recorded.
#[test]
fn endgame_recorded_once() {
    let result = Swarm::new(small_spec(6, false)).run();
    let trace = result.trace.unwrap();
    let count = trace
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::EndGameEntered))
        .count();
    assert!(count <= 1, "end game recorded {count} times");
}
