//! Metrics must be free observers: attaching a `bt-obs` registry to a
//! simulated swarm changes nothing about the run, and the snapshots it
//! yields are a pure function of the spec and seed.
//!
//! Two contracts, both enforced by CI:
//!
//! 1. **Snapshot determinism** — the metrics JSONL for a scenario is
//!    byte-identical whether the sweep runs on 1, 2, or 8 workers
//!    (virtual-clock registries advance with the event queue, never
//!    with wall time).
//! 2. **Non-perturbation** — traces with metrics on equal traces with
//!    metrics off, so the PR 1 golden fingerprints are untouched by
//!    instrumentation.

use bt_repro::torrents::{run_scenarios_parallel, torrent, RunConfig, ScenarioOutcome};

fn metrics_jsonl(outcome: &ScenarioOutcome) -> String {
    outcome
        .result
        .metrics
        .iter()
        .map(|s| s.to_jsonl_line() + "\n")
        .collect()
}

#[test]
fn metrics_jsonl_is_byte_identical_across_job_counts() {
    let cfg = RunConfig {
        metrics: true,
        ..RunConfig::quick()
    };
    let specs = [torrent(2), torrent(19), torrent(3)];
    let baseline = run_scenarios_parallel(&cfg, &specs, 1, |_| {});
    for o in &baseline {
        assert!(
            !o.result.metrics.is_empty(),
            "torrent {}: no metrics snapshots collected",
            o.spec.id
        );
        let last = o.result.metrics.last().unwrap();
        assert!(last.counter_sum("core.inputs.message") > 0);
        assert!(last.counter_sum("sim.events") > 0);
    }
    for jobs in [2, 8] {
        let parallel = run_scenarios_parallel(&cfg, &specs, jobs, |_| {});
        for (seq, par) in baseline.iter().zip(&parallel) {
            assert_eq!(
                metrics_jsonl(seq),
                metrics_jsonl(par),
                "jobs={jobs} torrent {}: metrics JSONL drifted",
                seq.spec.id
            );
        }
    }
}

#[test]
fn metrics_do_not_perturb_scenario_traces() {
    let quick = RunConfig::quick();
    let with_metrics = RunConfig {
        metrics: true,
        ..RunConfig::quick()
    };
    for id in [2, 3] {
        let bare = bt_repro::torrents::run_scenario(&torrent(id), &quick);
        let instrumented = bt_repro::torrents::run_scenario(&torrent(id), &with_metrics);
        assert_eq!(
            bare.trace.events, instrumented.trace.events,
            "torrent {id}: instrumentation changed the trace"
        );
        assert_eq!(bare.result.completion, instrumented.result.completion);
        assert_eq!(
            bare.result.events_processed,
            instrumented.result.events_processed
        );
        assert!(instrumented.result.metrics.len() > bare.result.metrics.len());
    }
}
