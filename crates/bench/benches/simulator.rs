//! Whole-system benchmarks: event-queue throughput and complete swarm
//! runs at several scales (the cost of one Table I scenario).

use bt_sim::events::EventQueue;
use bt_sim::{BehaviorProfile, Swarm, SwarmSpec};
use bt_wire::time::{Duration, Instant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(Instant(i * 7919 % 1_000_000 + 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn swarm_spec(leechers: usize) -> SwarmSpec {
    let mut peers = vec![BehaviorProfile::seed()];
    for i in 0..leechers {
        peers.push(BehaviorProfile::leecher(Duration::from_secs(i as u64 % 30)));
    }
    SwarmSpec {
        seed: 17,
        total_len: 16 * 256 * 1024,
        piece_len: 256 * 1024,
        duration: Duration::from_secs(2400),
        peers,
        local: Some(1),
        ..SwarmSpec::default()
    }
}

fn bench_swarm(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm_run");
    group.sample_size(10);
    for leechers in [10usize, 30, 60] {
        group.bench_with_input(
            BenchmarkId::new("leechers", leechers),
            &leechers,
            |b, &n| {
                b.iter(|| {
                    let result = Swarm::new(swarm_spec(n)).run();
                    black_box(result.completed_peers)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_swarm);
criterion_main!(benches);
