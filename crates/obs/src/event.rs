//! Leveled structured event log.
//!
//! Events are typed records — a static `target` (layer) and `name`
//! plus borrowed key/value fields — emitted through the
//! [`obs_debug!`](crate::obs_debug)/[`obs_info!`](crate::obs_info)/
//! [`obs_warn!`](crate::obs_warn) macros into whatever [`EventSink`]
//! the registry carries. Records borrow everything, so a disabled
//! level allocates nothing and an enabled one allocates only inside
//! the sink.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Event severity. Ordering is `Debug < Info < Warn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// High-volume diagnostics.
    Debug = 0,
    /// Notable lifecycle events.
    Info = 1,
    /// Something went wrong but the process continues.
    Warn = 2,
}

impl Level {
    /// Uppercase name, padded to 5 columns for text sinks.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO ",
            Level::Warn => "WARN ",
        }
    }
}

/// A typed field value; borrows strings from the call site.
#[derive(Clone, Copy, Debug)]
pub enum FieldValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed string.
    Str(&'a str),
}

impl std::fmt::Display for FieldValue<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! from_impl {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl<'a> From<$ty> for FieldValue<'a> {
            fn from(v: $ty) -> FieldValue<'a> {
                FieldValue::$variant(v as $cast)
            }
        })*
    };
}

from_impl!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
);

impl<'a> From<bool> for FieldValue<'a> {
    fn from(v: bool) -> FieldValue<'a> {
        FieldValue::Bool(v)
    }
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> FieldValue<'a> {
        FieldValue::Str(v)
    }
}

/// One field: static key, borrowed value.
pub type Field<'a> = (&'static str, FieldValue<'a>);

/// A borrowed event record as handed to sinks.
#[derive(Debug)]
pub struct Record<'a> {
    /// Registry clock reading (µs) at emit time.
    pub at_micros: u64,
    /// Severity.
    pub level: Level,
    /// Emitting layer, e.g. `"net"` or `"core"`.
    pub target: &'static str,
    /// Event name, e.g. `"dial_failed"`.
    pub name: &'static str,
    /// Key/value payload.
    pub fields: &'a [Field<'a>],
}

/// Where event records go. Implementations must be cheap to call
/// concurrently (internal locking is their business).
pub trait EventSink: Send + Sync {
    /// Consume one record.
    fn emit(&self, record: &Record<'_>);
}

impl std::fmt::Debug for dyn EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink")
    }
}

/// Human-readable single-line text to stderr:
/// `12.345678s WARN  net/dial_failed addr=127.0.0.1:6881 attempts=3`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&self, r: &Record<'_>) {
        let mut line = format!(
            "{:>10.6}s {} {}/{}",
            r.at_micros as f64 / 1e6,
            r.level.as_str(),
            r.target,
            r.name
        );
        for (k, v) in r.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

/// One JSON object per record, appended to a file.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and log into it.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Flush buffered records to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().unwrap().flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, r: &Record<'_>) {
        let mut line = format!(
            "{{\"t\":{},\"level\":\"{}\",\"target\":\"{}\",\"event\":\"{}\"",
            r.at_micros,
            r.level.as_str().trim_end(),
            r.target,
            r.name
        );
        for (k, v) in r.fields {
            line.push_str(",\"");
            line.push_str(k);
            line.push_str("\":");
            match v {
                FieldValue::Str(s) => {
                    line.push('"');
                    crate::export::escape_json_into(&mut line, s);
                    line.push('"');
                }
                other => line.push_str(&other.to_string()),
            }
        }
        line.push('}');
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "{line}");
    }
}

/// An owned copy of a record, for test assertions.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedRecord {
    /// Registry clock reading (µs) at emit time.
    pub at_micros: u64,
    /// Severity.
    pub level: Level,
    /// Emitting layer.
    pub target: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Fields rendered to strings.
    pub fields: Vec<(String, String)>,
}

/// Keeps the last `capacity` records in memory; the test sink.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<OwnedRecord>>,
}

impl RingSink {
    /// Ring holding at most `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<OwnedRecord> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingSink {
    fn emit(&self, r: &Record<'_>) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(OwnedRecord {
            at_micros: r.at_micros,
            level: r.level,
            target: r.target,
            name: r.name,
            fields: r
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
    }

    #[test]
    fn field_value_conversions_render() {
        let fields: Vec<FieldValue<'_>> = vec![
            3u64.into(),
            7u32.into(),
            9usize.into(),
            (-4i64).into(),
            true.into(),
            "hi".into(),
        ];
        let rendered: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        assert_eq!(rendered, vec!["3", "7", "9", "-4", "true", "hi"]);
    }

    #[test]
    fn ring_sink_wraparound_keeps_newest_in_fifo_order() {
        let ring = RingSink::new(4);
        assert!(ring.is_empty());
        for i in 0..11u64 {
            ring.emit(&Record {
                at_micros: i,
                level: Level::Debug,
                target: "t",
                name: "e",
                fields: &[("i", FieldValue::U64(i))],
            });
        }
        // Capacity exceeded almost 3× over: only the newest 4 survive,
        // oldest first.
        assert_eq!(ring.len(), 4);
        let got: Vec<u64> = ring.records().iter().map(|r| r.at_micros).collect();
        assert_eq!(got, vec![7, 8, 9, 10]);
        let fields: Vec<String> = ring
            .records()
            .iter()
            .map(|r| r.fields[0].1.clone())
            .collect();
        assert_eq!(fields, vec!["7", "8", "9", "10"]);
    }

    /// Draining the ring while another thread is still writing must
    /// always observe a consistent FIFO window: at most `capacity`
    /// records, consecutive sequence numbers, oldest first. The lock
    /// makes eviction + push atomic per record, so a reader can never
    /// see a gap or a reordering — only an older or newer window.
    #[test]
    fn ring_sink_wraparound_order_survives_mid_write_drains() {
        use std::sync::Arc;
        let ring = Arc::new(RingSink::new(8));
        let writer_ring = Arc::clone(&ring);
        let total = 10_000u64;
        let writer = std::thread::spawn(move || {
            for i in 0..total {
                writer_ring.emit(&Record {
                    at_micros: i,
                    level: Level::Debug,
                    target: "t",
                    name: "e",
                    fields: &[("i", FieldValue::U64(i))],
                });
            }
        });
        let mut drains = 0u64;
        let mut last_head = 0u64;
        while !writer.is_finished() {
            let got: Vec<u64> = ring.records().iter().map(|r| r.at_micros).collect();
            assert!(got.len() <= 8, "window larger than capacity: {got:?}");
            for pair in got.windows(2) {
                assert_eq!(
                    pair[1],
                    pair[0] + 1,
                    "gap or reorder inside a drained window: {got:?}"
                );
            }
            if let Some(&head) = got.first() {
                assert!(head >= last_head, "window moved backwards: {got:?}");
                last_head = head;
            }
            drains += 1;
        }
        writer.join().unwrap();
        assert!(drains > 0, "reader never overlapped the writer");
        // After the writer stops the ring holds exactly the newest 8.
        let got: Vec<u64> = ring.records().iter().map(|r| r.at_micros).collect();
        assert_eq!(got, (total - 8..total).collect::<Vec<u64>>());
    }

    #[test]
    fn ring_sink_zero_capacity_clamps_to_one() {
        let ring = RingSink::new(0);
        for i in 0..3u64 {
            ring.emit(&Record {
                at_micros: i,
                level: Level::Info,
                target: "t",
                name: "e",
                fields: &[],
            });
        }
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.records()[0].at_micros, 2);
    }

    #[test]
    fn jsonl_sink_escapes_newlines_in_string_fields() {
        let dir = std::env::temp_dir().join("bt-obs-test-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-nl-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Record {
            at_micros: 9,
            level: Level::Info,
            target: "t",
            name: "e",
            fields: &[("msg", FieldValue::Str("line1\nline2\t\"q\""))],
        });
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        // Exactly one physical line despite the embedded newline.
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"msg\":\"line1\\nline2\\t\\\"q\\\"\""));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("bt-obs-test-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Record {
            at_micros: 5,
            level: Level::Warn,
            target: "net",
            name: "dial_failed",
            fields: &[
                ("addr", FieldValue::Str("127.0.0.1:1\"x\"")),
                ("attempts", FieldValue::U64(3)),
            ],
        });
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(
            text.trim(),
            "{\"t\":5,\"level\":\"WARN\",\"target\":\"net\",\"event\":\"dial_failed\",\
             \"addr\":\"127.0.0.1:1\\\"x\\\"\",\"attempts\":3}"
        );
    }
}
