//! # bt-core — the BitTorrent client engine
//!
//! A complete, transport-agnostic implementation of the client the paper
//! instruments (mainline 4.0.2 semantics): peer-set management, interest
//! tracking, request pipelining with strict priority and end game mode,
//! hash verification, and the choke algorithm in leecher and seed state.
//!
//! * [`config`] — the §III-C default parameters;
//! * [`connection`] — per-peer protocol state;
//! * [`content`] — real-bytes vs. metadata-only data modes;
//! * [`engine`] — the [`engine::Engine`] state machine and its
//!   [`engine::Action`] effect type.
//!
//! The engine contains no clock, no sockets and no randomness source of
//! its own beyond a seeded PRNG, so identical inputs produce identical
//! outputs — the property the simulator and the regression tests rely on.

#![warn(missing_docs)]

pub mod config;
pub mod connection;
pub mod content;
pub mod engine;

pub use config::Config;
pub use connection::{ConnId, Connection};
pub use content::{DataMode, PieceBuffer};
pub use engine::{Action, Engine, PeerCaps};
