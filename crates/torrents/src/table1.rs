//! The 26-torrent testbed of Table I.
//!
//! Each [`ScenarioSpec`] reproduces one row of the paper's Table I: the
//! number of seeds and leechers at experiment start, the observed maximum
//! peer-set size, and the content size. The `transient` flag marks the
//! torrents the paper found in their startup phase (low entropy in
//! figure 1's top graph: torrents 1, 2, 4, 5, 6, 8 and 9 — §IV-A.1),
//! which the simulator models by leaving a fraction of the pieces *rare*
//! (present only on the initial seed) at session start.

use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Torrent ID (column 1).
    pub id: u32,
    /// Seeds at experiment start (column 2).
    pub seeds: u32,
    /// Leechers at experiment start (column 3).
    pub leechers: u32,
    /// Maximum peer-set size observed in leecher state (column 5).
    pub max_peer_set: u32,
    /// Content size in MB (column 6).
    pub size_mb: u32,
    /// Startup-phase torrent (§IV-A.1's low-entropy list).
    pub transient: bool,
}

impl ScenarioSpec {
    /// Ratio seeds/leechers (column 4).
    pub fn ratio(&self) -> f64 {
        if self.leechers == 0 {
            f64::INFINITY
        } else {
            f64::from(self.seeds) / f64::from(self.leechers)
        }
    }

    /// A short label like `"torrent-08"`.
    pub fn label(&self) -> String {
        format!("torrent-{:02}", self.id)
    }
}

/// All 26 rows of Table I, in order.
pub fn table1() -> Vec<ScenarioSpec> {
    const ROWS: &[(u32, u32, u32, u32, u32)] = &[
        // (id, seeds, leechers, max peer set, size MB)
        (1, 0, 66, 60, 700),
        (2, 1, 2, 3, 580),
        (3, 1, 29, 34, 350),
        (4, 1, 40, 75, 800),
        (5, 1, 50, 60, 1419),
        (6, 1, 130, 80, 820),
        (7, 1, 713, 80, 700),
        (8, 1, 861, 80, 3000),
        (9, 1, 1055, 80, 2000),
        (10, 1, 1207, 80, 348),
        (11, 1, 1411, 80, 710),
        (12, 3, 612, 80, 1413),
        (13, 9, 30, 35, 350),
        (14, 20, 126, 80, 184),
        (15, 30, 230, 80, 820),
        (16, 50, 18, 40, 600),
        (17, 102, 342, 80, 200),
        (18, 115, 19, 55, 430),
        (19, 160, 5, 17, 6),
        (20, 177, 4657, 80, 2000),
        (21, 462, 180, 80, 2600),
        (22, 514, 1703, 80, 349),
        (23, 1197, 4151, 80, 349),
        (24, 3697, 7341, 80, 349),
        (25, 11641, 5418, 80, 350),
        (26, 12612, 7052, 80, 140),
    ];
    /// §IV-A.1: torrents whose low entropy the paper attributes to the
    /// startup (transient) phase.
    const TRANSIENT: &[u32] = &[1, 2, 4, 5, 6, 8, 9];
    ROWS.iter()
        .map(
            |&(id, seeds, leechers, max_peer_set, size_mb)| ScenarioSpec {
                id,
                seeds,
                leechers,
                max_peer_set,
                size_mb,
                transient: TRANSIENT.contains(&id),
            },
        )
        .collect()
}

/// Look up one Table I row by torrent ID (1-based).
pub fn torrent(id: u32) -> ScenarioSpec {
    table1()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("torrent id {id} not in Table I (1–26)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_26_rows_in_order() {
        let t = table1();
        assert_eq!(t.len(), 26);
        for (i, row) in t.iter().enumerate() {
            assert_eq!(row.id, i as u32 + 1);
        }
    }

    #[test]
    fn ratios_match_paper_column_4() {
        // Spot-check the printed ratios of Table I.
        assert!((torrent(2).ratio() - 0.5).abs() < 1e-9);
        assert!((torrent(3).ratio() - 0.034).abs() < 5e-3);
        assert!((torrent(8).ratio() - 0.0012).abs() < 1e-4);
        assert!((torrent(16).ratio() - 2.8).abs() < 0.03);
        assert!((torrent(19).ratio() - 32.0).abs() < 1e-9);
        assert!((torrent(25).ratio() - 2.1).abs() < 0.05);
    }

    #[test]
    fn torrent_1_has_no_seed() {
        let t = torrent(1);
        assert_eq!(t.seeds, 0);
        assert_eq!(t.ratio(), 0.0);
        assert!(t.transient);
    }

    #[test]
    fn paper_exemplars() {
        // §IV-A.2 uses torrent 8 (transient) and torrent 7 (steady).
        assert!(torrent(8).transient);
        assert!(!torrent(7).transient);
        // §IV-A.3 uses torrent 10 (steady).
        assert!(!torrent(10).transient);
    }

    #[test]
    #[should_panic(expected = "not in Table I")]
    fn unknown_id_panics() {
        torrent(27);
    }
}
