//! Entropy characterisation (figure 1).
//!
//! §IV-A.1: for each remote *leecher* peer, two ratios are computed over
//! the time the local peer is in leecher state:
//!
//! * **a/b** — `a` = time the local peer is interested in the remote,
//!   `b` = time the remote spent in the peer set;
//! * **c/d** — `c` = time the remote is interested in the local peer,
//!   `d` = same denominator.
//!
//! Ideal entropy means both ratios are 1 for every pair. Peers that stay
//! under 10 seconds are filtered as churn noise, exactly as the paper
//! does.

use crate::intervals::{overlap_secs, window_overlap_secs, IntervalBuilder};
use crate::stats::{percentiles, Percentiles};
use bt_instrument::identify::PeerRegistry;
use bt_instrument::trace::{Trace, TraceEvent};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's churn filter: ignore peers seen under this many seconds.
pub const MIN_MEMBERSHIP_SECS: f64 = 10.0;

/// Per-remote-peer entropy ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerRatios {
    /// Trace connection handle.
    pub handle: u32,
    /// Ratio a/b: local interested in remote.
    pub local_in_remote: f64,
    /// Ratio c/d: remote interested in local.
    pub remote_in_local: f64,
    /// Denominator: seconds the remote spent in the peer set during the
    /// local peer's leecher state.
    pub membership_secs: f64,
}

/// Figure-1 style summary for one torrent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropySummary {
    /// Per-peer ratios (filtered).
    pub peers: Vec<PeerRatios>,
    /// Percentiles of a/b over peers (top graph bar).
    pub local_in_remote: Percentiles,
    /// Percentiles of c/d over peers (bottom graph bar).
    pub remote_in_local: Percentiles,
}

/// Compute the entropy characterisation of a trace.
///
/// Only the local peer's leecher-state window `[0, seed_at)` counts, and
/// remote peers that arrived as seeds are excluded (seeds are always
/// interesting and never interested — §IV-A.1 footnote 4).
pub fn entropy(trace: &Trace) -> EntropySummary {
    let registry = PeerRegistry::from_trace(trace);
    let ls_end = trace.meta.seed_at.unwrap_or(trace.meta.session_end);
    let ls_start = Instant::ZERO;

    // Interest interval builders per connection handle.
    let mut local_interest: HashMap<u32, IntervalBuilder> = HashMap::new();
    let mut remote_interest: HashMap<u32, IntervalBuilder> = HashMap::new();
    for (t, ev) in trace.iter() {
        match ev {
            TraceEvent::LocalInterest { peer, interested } => {
                local_interest
                    .entry(*peer)
                    .or_default()
                    .transition(t, *interested);
            }
            TraceEvent::RemoteInterest { peer, interested } => {
                remote_interest
                    .entry(*peer)
                    .or_default()
                    .transition(t, *interested);
            }
            _ => {}
        }
    }
    let mut local_ivs: HashMap<u32, Vec<crate::intervals::Interval>> = local_interest
        .into_iter()
        .map(|(h, b)| (h, b.finish(trace.meta.session_end)))
        .collect();
    let mut remote_ivs: HashMap<u32, Vec<crate::intervals::Interval>> = remote_interest
        .into_iter()
        .map(|(h, b)| (h, b.finish(trace.meta.session_end)))
        .collect();

    let mut peers = Vec::new();
    for m in &registry.memberships {
        // Clamp membership to the leecher-state window.
        let b = window_overlap_secs(m.joined, m.left, ls_start, ls_end);
        if b < MIN_MEMBERSHIP_SECS {
            continue; // the 10-second churn filter
        }
        if m.arrived_as_seed(trace.meta.num_pieces) {
            continue; // only leechers are relevant for entropy
        }
        let win_end = m.left.min(ls_end);
        let win_start = m.joined.max(ls_start);
        let a = local_ivs
            .remove(&m.handle)
            .map(|ivs| overlap_secs(&ivs, win_start, win_end))
            .unwrap_or(0.0);
        let c = remote_ivs
            .remove(&m.handle)
            .map(|ivs| overlap_secs(&ivs, win_start, win_end))
            .unwrap_or(0.0);
        peers.push(PeerRatios {
            handle: m.handle,
            local_in_remote: (a / b).clamp(0.0, 1.0),
            remote_in_local: (c / b).clamp(0.0, 1.0),
            membership_secs: b,
        });
    }

    let ab: Vec<f64> = peers.iter().map(|p| p.local_in_remote).collect();
    let cd: Vec<f64> = peers.iter().map(|p| p.remote_in_local).collect();
    EntropySummary {
        local_in_remote: percentiles(&ab),
        remote_in_local: percentiles(&cd),
        peers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::TraceMeta;
    use bt_wire::peer_id::{ClientKind, IpAddr, PeerId};

    fn meta(seed_at: Option<u64>) -> TraceMeta {
        TraceMeta {
            torrent: "e".into(),
            torrent_id: 1,
            num_pieces: 10,
            num_blocks: 160,
            initial_seeds: 1,
            initial_leechers: 3,
            session_end: Instant::from_secs(1000),
            seed_at: seed_at.map(Instant::from_secs),
        }
    }

    fn join(tr: &mut Trace, t: u64, h: u32, pieces: u32) {
        tr.push(
            Instant::from_secs(t),
            TraceEvent::PeerJoined {
                peer: h,
                ip: IpAddr(h + 1),
                peer_id: PeerId::new(ClientKind::Azureus, u64::from(h)),
                pieces_on_arrival: pieces,
                total_pieces: 10,
            },
        );
    }

    #[test]
    fn ideal_entropy_scores_one() {
        let mut tr = Trace::new(meta(Some(500)));
        join(&mut tr, 0, 0, 2);
        tr.push(
            Instant::from_secs(0),
            TraceEvent::LocalInterest {
                peer: 0,
                interested: true,
            },
        );
        tr.push(
            Instant::from_secs(0),
            TraceEvent::RemoteInterest {
                peer: 0,
                interested: true,
            },
        );
        let s = entropy(&tr);
        assert_eq!(s.peers.len(), 1);
        assert!((s.peers[0].local_in_remote - 1.0).abs() < 1e-9);
        assert!((s.peers[0].remote_in_local - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_interest_scores_fraction() {
        let mut tr = Trace::new(meta(Some(100)));
        join(&mut tr, 0, 0, 2);
        // Interested for 25 of the 100 leecher-state seconds.
        tr.push(
            Instant::from_secs(10),
            TraceEvent::LocalInterest {
                peer: 0,
                interested: true,
            },
        );
        tr.push(
            Instant::from_secs(35),
            TraceEvent::LocalInterest {
                peer: 0,
                interested: false,
            },
        );
        let s = entropy(&tr);
        assert!((s.peers[0].local_in_remote - 0.25).abs() < 1e-9);
        assert_eq!(s.peers[0].remote_in_local, 0.0);
    }

    #[test]
    fn filters_churners_and_seeds() {
        let mut tr = Trace::new(meta(Some(500)));
        join(&mut tr, 0, 0, 2); // normal leecher
        join(&mut tr, 0, 1, 10); // arrived as seed → excluded
        join(&mut tr, 100, 2, 0); // churner
        tr.push(Instant::from_secs(105), TraceEvent::PeerLeft { peer: 2 });
        let s = entropy(&tr);
        assert_eq!(s.peers.len(), 1);
        assert_eq!(s.peers[0].handle, 0);
    }

    #[test]
    fn interest_outside_leecher_state_ignored() {
        let mut tr = Trace::new(meta(Some(100)));
        join(&mut tr, 0, 0, 2);
        // Interest starts only after the local peer becomes a seed.
        tr.push(
            Instant::from_secs(200),
            TraceEvent::LocalInterest {
                peer: 0,
                interested: true,
            },
        );
        let s = entropy(&tr);
        assert_eq!(s.peers[0].local_in_remote, 0.0);
    }

    #[test]
    fn open_interest_interval_counts_to_window_end() {
        let mut tr = Trace::new(meta(None)); // never became seed
        join(&mut tr, 0, 0, 2);
        tr.push(
            Instant::from_secs(500),
            TraceEvent::LocalInterest {
                peer: 0,
                interested: true,
            },
        );
        let s = entropy(&tr);
        // Interested from 500 to session end (1000) out of 1000 total.
        assert!((s.peers[0].local_in_remote - 0.5).abs() < 1e-9);
    }
}
