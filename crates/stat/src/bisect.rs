//! `btstat bisect`: the determinism debugger.
//!
//! When two runs that should be identical report different
//! `SwarmResult::digest()`s, the causal traces are the highest-
//! resolution evidence available: both are emitted in a canonical
//! order (sorted by `(t, cat, id)`, byte-stable line layout), so the
//! *first line where they disagree* is the first observable point of
//! divergence — everything before it is provably identical behaviour.
//! This module walks the two JSONLs in lockstep, compares canonical
//! lines (no parsing on the happy path), and reports that first
//! divergence with both parsed payloads and a ±K window of raw lines
//! of context, turning "digest mismatch" from a dead end into a
//! pinpointed event.

use bt_obs::schema::TraceEventDoc;

/// The outcome of comparing two trace streams.
#[derive(Clone, Debug, PartialEq)]
pub enum BisectReport {
    /// Every event line matched (and the streams had equal length).
    Identical {
        /// Number of matching events.
        events: usize,
    },
    /// The streams disagree, first at `index`.
    Diverged {
        /// 0-based index of the first differing line.
        index: usize,
        /// Run A's event at that index (`None` when A ended first).
        a: Option<Box<TraceEventDoc>>,
        /// Run B's event at that index (`None` when B ended first).
        b: Option<Box<TraceEventDoc>>,
        /// Up to ±K raw lines of run A around the divergence.
        window_a: Vec<String>,
        /// Up to ±K raw lines of run B around the divergence.
        window_b: Vec<String>,
    },
}

impl BisectReport {
    /// True when the traces matched end to end.
    pub fn is_identical(&self) -> bool {
        matches!(self, BisectReport::Identical { .. })
    }

    /// Render as one JSON document (deterministic).
    pub fn to_json(&self) -> String {
        match self {
            BisectReport::Identical { events } => format!(
                "{{\"schema\":\"btstat-bisect-v1\",\"identical\":true,\"events\":{events},\
                 \"first_divergence\":null}}"
            ),
            BisectReport::Diverged {
                index,
                a,
                b,
                window_a,
                window_b,
            } => {
                let mut out = String::with_capacity(1024);
                out.push_str(&format!(
                    "{{\"schema\":\"btstat-bisect-v1\",\"identical\":false,\"events\":{index},\
                     \"first_divergence\":{{\"index\":{index},\"a\":",
                ));
                push_event(&mut out, a);
                out.push_str(",\"b\":");
                push_event(&mut out, b);
                out.push_str(",\"window_a\":[");
                push_lines(&mut out, window_a);
                out.push_str("],\"window_b\":[");
                push_lines(&mut out, window_b);
                out.push_str("]}}");
                out
            }
        }
    }

    /// Render the human report.
    pub fn render(&self) -> String {
        match self {
            BisectReport::Identical { events } => {
                format!("traces identical ({events} events)\n")
            }
            BisectReport::Diverged {
                index,
                a,
                b,
                window_a,
                window_b,
            } => {
                let mut out = format!("first divergence at event #{index}\n");
                let describe = |tag: &str, ev: &Option<Box<TraceEventDoc>>| match ev {
                    Some(e) => format!(
                        "  {tag}: t={} cat={} name={} id={}\n",
                        e.at_micros, e.cat, e.name, e.id
                    ),
                    None => format!("  {tag}: <end of trace>\n"),
                };
                out.push_str(&describe("A", a));
                out.push_str(&describe("B", b));
                out.push_str("  window A:\n");
                for line in window_a {
                    out.push_str(&format!("    {line}\n"));
                }
                out.push_str("  window B:\n");
                for line in window_b {
                    out.push_str(&format!("    {line}\n"));
                }
                out
            }
        }
    }
}

fn push_event(out: &mut String, ev: &Option<Box<TraceEventDoc>>) {
    match ev {
        Some(e) => out.push_str(&e.to_json()),
        None => out.push_str("null"),
    }
}

fn push_lines(out: &mut String, lines: &[String]) {
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        for c in line.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Compare two trace JSONLs line by line and report the first
/// divergence with up to `window` lines of context on each side.
///
/// Lines are compared as canonical bytes — the tracer's export is
/// deterministic, so any byte difference is a real behavioural
/// difference, and identical runs cost no parsing at all. The two
/// payloads at the divergence are parsed for the report; a line that
/// fails to parse (truncated file, say) is surfaced as a synthetic
/// `name="<unparseable>"` event rather than an error, because the
/// divergence location is still the answer.
pub fn bisect_traces(a_text: &str, b_text: &str, window: usize) -> BisectReport {
    let a_lines: Vec<&str> = a_text.lines().filter(|l| !l.trim().is_empty()).collect();
    let b_lines: Vec<&str> = b_text.lines().filter(|l| !l.trim().is_empty()).collect();
    let common = a_lines.len().min(b_lines.len());

    let index = (0..common)
        .find(|&i| a_lines[i] != b_lines[i])
        .unwrap_or(common);
    if index == common && a_lines.len() == b_lines.len() {
        return BisectReport::Identical {
            events: a_lines.len(),
        };
    }

    let parse = |lines: &[&str]| -> Option<Box<TraceEventDoc>> {
        lines.get(index).map(|l| {
            Box::new(
                TraceEventDoc::parse_line(l).unwrap_or_else(|_| TraceEventDoc {
                    name: "<unparseable>".to_string(),
                    ..TraceEventDoc::default()
                }),
            )
        })
    };
    let slice_window = |lines: &[&str]| -> Vec<String> {
        let lo = index.saturating_sub(window);
        let hi = (index + window + 1).min(lines.len());
        lines[lo..hi].iter().map(|l| l.to_string()).collect()
    };

    BisectReport::Diverged {
        index,
        a: parse(&a_lines),
        b: parse(&b_lines),
        window_a: slice_window(&a_lines),
        window_b: slice_window(&b_lines),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(t: u64, name: &str, id: u64) -> String {
        format!("{{\"t\":{t},\"cat\":\"piece\",\"name\":\"{name}\",\"id\":{id}}}")
    }

    fn jsonl(lines: &[String]) -> String {
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    #[test]
    fn identical_traces_report_identical() {
        let text = jsonl(&[line(1, "injected", 0), line(2, "first_have", 0)]);
        let report = bisect_traces(&text, &text, 3);
        assert_eq!(report, BisectReport::Identical { events: 2 });
        assert!(report.is_identical());
        assert!(report.to_json().contains("\"identical\":true"));
        assert!(report.to_json().contains("\"first_divergence\":null"));
    }

    #[test]
    fn first_differing_line_is_pinpointed_with_windows() {
        let a = jsonl(&[
            line(1, "injected", 0),
            line(2, "first_have", 0),
            line(3, "rarest_pick", 1),
            line(4, "complete", 1),
        ]);
        let b = jsonl(&[
            line(1, "injected", 0),
            line(2, "first_have", 0),
            line(3, "random_pick", 1),
            line(4, "complete", 1),
        ]);
        let report = bisect_traces(&a, &b, 1);
        let BisectReport::Diverged {
            index,
            a: ea,
            b: eb,
            window_a,
            window_b,
        } = &report
        else {
            panic!("expected divergence");
        };
        assert_eq!(*index, 2);
        assert_eq!(ea.as_ref().unwrap().name, "rarest_pick");
        assert_eq!(eb.as_ref().unwrap().name, "random_pick");
        // ±1 window: events 1..=3.
        assert_eq!(window_a.len(), 3);
        assert!(window_a[0].contains("first_have"));
        assert!(window_b[1].contains("random_pick"));
        let json = report.to_json();
        let parsed = bt_obs::parse_json(&json).unwrap();
        assert_eq!(
            parsed
                .get("first_divergence")
                .and_then(|d| d.get("index"))
                .and_then(bt_obs::JsonValue::as_u64),
            Some(2)
        );
        assert!(report.render().contains("event #2"));
    }

    #[test]
    fn prefix_truncation_diverges_at_the_shorter_end() {
        let a = jsonl(&[line(1, "injected", 0), line(2, "first_have", 0)]);
        let b = jsonl(&[line(1, "injected", 0)]);
        let report = bisect_traces(&a, &b, 2);
        let BisectReport::Diverged {
            index,
            a: ea,
            b: eb,
            ..
        } = &report
        else {
            panic!("expected divergence");
        };
        assert_eq!(*index, 1);
        assert!(ea.is_some());
        assert!(eb.is_none());
        assert!(report.to_json().contains("\"b\":null"));
    }

    #[test]
    fn empty_traces_are_identical() {
        assert_eq!(
            bisect_traces("", "\n", 3),
            BisectReport::Identical { events: 0 }
        );
    }
}
