//! Trace-driven post-mortem explanations.
//!
//! When a flight recorder dumps a bundle ([`bt_obs::FlightRecorder`]),
//! the reason is a tripped live-monitor invariant — but a verdict like
//! `starvation: 1200s > 900s` says *that* something is wrong, not *why*.
//! [`explain_unhealthy`] walks the recorder's recent causal-trace slice
//! and answers the two questions the paper's pathologies reduce to:
//!
//! * **why is peer Y starved** — what did the choke audits around it
//!   decide (was it ranked, snubbed, optimistically unchoked, or simply
//!   never mentioned)?
//! * **why is piece X rare** — which sampled lifecycle is still open
//!   (`injected` but not `k_replicated`), how many verified copies does
//!   it have, and when did a block of it last move?
//!
//! The output is deterministic plain text for equal inputs: it is
//! embedded verbatim in flight-recorder bundles, which the determinism
//! tests byte-compare.

use crate::live::HealthReport;
use bt_obs::trace::{TraceCat, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Look up a named integer in a trace event's payload.
fn arg(e: &TraceEvent, key: &str) -> Option<i64> {
    e.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

/// Outcome code names, mirroring `bt_core::ChokeOutcome::as_code`.
fn outcome_name(code: i64) -> &'static str {
    match code {
        0 => "regular-unchoke",
        1 => "optimistic-unchoke",
        2 => "seed-kept",
        3 => "seed-random",
        4 => "choked",
        _ => "unknown",
    }
}

/// Build a human-readable explanation of an unhealthy [`HealthReport`]
/// from the flight recorder's recent trace slice.
///
/// `worst_starved` is the `(peer index, seconds without progress)` pair
/// the caller observed when the invariant tripped; `recent` is the
/// trace ring in emission order (oldest first). Both the audit-history
/// and rare-piece sections degrade gracefully when sampling did not
/// cover the relevant ids — the explanation says so instead of guessing.
pub fn explain_unhealthy(
    report: &HealthReport,
    worst_starved: Option<(usize, u64)>,
    recent: &[TraceEvent],
) -> String {
    let mut out = String::new();
    let tripped: Vec<_> = report.monitors.iter().filter(|m| !m.healthy).collect();
    if tripped.is_empty() {
        out.push_str("all monitors healthy at dump time\n");
    }
    for m in &tripped {
        let _ = writeln!(
            out,
            "{}: value {:.4} vs threshold {:.4}",
            m.name, m.value, m.threshold
        );
    }

    if let Some((idx, secs)) = worst_starved {
        let _ = writeln!(out, "worst-starved peer: {idx} ({secs}s without progress)");
        let about: Vec<&TraceEvent> = recent
            .iter()
            .filter(|e| {
                e.cat == TraceCat::Choke && e.name == "audit" && arg(e, "peer") == Some(idx as i64)
            })
            .collect();
        if about.is_empty() {
            out.push_str(
                "no choke audit in the recent window mentions it \
                 (peer sampling may not cover its neighbours)\n",
            );
        } else {
            let choked = about
                .iter()
                .filter(|e| arg(e, "outcome") == Some(4))
                .count();
            let last = about.last().expect("non-empty");
            let _ = writeln!(
                out,
                "choke audits mentioning it: {} ({choked} chose to choke); \
                 last: {} by peer {} at t={}us (rank {})",
                about.len(),
                outcome_name(arg(last, "outcome").unwrap_or(-1)),
                last.id,
                last.at_micros,
                arg(last, "rank").unwrap_or(-1),
            );
        }
        let own_rounds = recent
            .iter()
            .filter(|e| e.cat == TraceCat::Choke && e.name == "round" && e.id == idx as u64)
            .count();
        let _ = writeln!(out, "choke rounds run by the peer itself: {own_rounds}");
    }

    // Rarest open sampled lifecycle: injected but not k_replicated,
    // fewest verified copies; ties break toward the lower piece id via
    // BTreeMap iteration order.
    struct Life {
        copies: i64,
        closed: bool,
        last_block_us: Option<u64>,
    }
    let mut lives: BTreeMap<u64, Life> = BTreeMap::new();
    for e in recent.iter().filter(|e| e.cat == TraceCat::Piece) {
        let life = lives.entry(e.id).or_insert(Life {
            copies: 1,
            closed: false,
            last_block_us: None,
        });
        match e.name {
            "verified" | "k_replicated" => {
                life.copies = life.copies.max(arg(e, "copies").unwrap_or(1));
                life.closed |= e.name == "k_replicated";
            }
            "block_sent" => life.last_block_us = Some(e.at_micros),
            _ => {}
        }
    }
    let rarest = lives
        .iter()
        .filter(|(_, l)| !l.closed)
        .min_by_key(|(piece, l)| (l.copies, **piece));
    match rarest {
        Some((piece, life)) => {
            let moved = life
                .last_block_us
                .map_or("no block of it moved in the window".to_string(), |t| {
                    format!("last block_sent at t={t}us")
                });
            let _ = writeln!(
                out,
                "rarest open sampled piece: {piece} ({} verified copies, target not reached; {moved})",
                life.copies
            );
        }
        None => out.push_str("no sampled piece lifecycle is open in the recent window\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::MonitorVerdict;

    fn ev(
        at: u64,
        cat: TraceCat,
        name: &'static str,
        id: u64,
        args: &[(&'static str, i64)],
    ) -> TraceEvent {
        TraceEvent {
            at_micros: at,
            cat,
            name,
            id,
            args: args.to_vec(),
        }
    }

    fn unhealthy_report() -> HealthReport {
        HealthReport {
            at_micros: 1_000_000,
            samples: 3,
            monitors: vec![MonitorVerdict {
                name: "starvation",
                healthy: false,
                value: 1200.0,
                threshold: 900.0,
            }],
        }
    }

    #[test]
    fn names_the_starved_peer_and_its_last_audit() {
        let recent = vec![
            ev(10, TraceCat::Choke, "round", 3, &[("peers", 2)]),
            ev(
                10,
                TraceCat::Choke,
                "audit",
                3,
                &[("peer", 7), ("rank", 5), ("outcome", 4)],
            ),
            ev(
                20,
                TraceCat::Choke,
                "audit",
                4,
                &[("peer", 7), ("rank", 2), ("outcome", 0)],
            ),
        ];
        let text = explain_unhealthy(&unhealthy_report(), Some((7, 1200)), &recent);
        assert!(text.contains("worst-starved peer: 7 (1200s"), "{text}");
        assert!(
            text.contains("audits mentioning it: 2 (1 chose to choke)"),
            "{text}"
        );
        assert!(
            text.contains("last: regular-unchoke by peer 4 at t=20us"),
            "{text}"
        );
    }

    #[test]
    fn finds_the_rarest_open_piece() {
        let recent = vec![
            ev(1, TraceCat::Piece, "injected", 5, &[("by", 0)]),
            ev(
                2,
                TraceCat::Piece,
                "verified",
                5,
                &[("peer", 1), ("copies", 2)],
            ),
            ev(3, TraceCat::Piece, "injected", 9, &[("by", 0)]),
            ev(
                4,
                TraceCat::Piece,
                "block_sent",
                9,
                &[("from", 0), ("to", 2)],
            ),
            ev(
                5,
                TraceCat::Piece,
                "verified",
                8,
                &[("peer", 1), ("copies", 3)],
            ),
            ev(6, TraceCat::Piece, "k_replicated", 8, &[("copies", 4)]),
        ];
        let text = explain_unhealthy(&unhealthy_report(), None, &recent);
        // Piece 8 is closed; pieces 5 (2 copies) and 9 (1 copy) are open.
        assert!(
            text.contains("rarest open sampled piece: 9 (1 verified copies"),
            "{text}"
        );
        assert!(text.contains("last block_sent at t=4us"), "{text}");
    }

    #[test]
    fn degrades_gracefully_with_an_empty_window() {
        let text = explain_unhealthy(&unhealthy_report(), Some((2, 999)), &[]);
        assert!(
            text.contains("no choke audit in the recent window"),
            "{text}"
        );
        assert!(
            text.contains("no sampled piece lifecycle is open"),
            "{text}"
        );
    }
}
