//! Fluent construction of [`SwarmSpec`]s.
//!
//! `SwarmSpec` grew past fifteen knobs; call sites that set them
//! positionally (struct literals with long `..Default::default()`
//! tails) read poorly and rot when fields move. [`SwarmSpecBuilder`]
//! names every knob, groups the network model behind
//! [`net`](SwarmSpecBuilder::net)/[`topology`](SwarmSpecBuilder::topology),
//! and is the only place new specs should be assembled.
//!
//! ```
//! use bt_sim::{BehaviorProfile, SwarmSpec};
//! use bt_wire::time::Duration;
//!
//! let spec = SwarmSpec::builder()
//!     .seed(7)
//!     .pieces(8, 256 * 1024)
//!     .peer(BehaviorProfile::seed())
//!     .peer(BehaviorProfile::leecher(Duration::ZERO))
//!     .local(1)
//!     .build();
//! assert_eq!(spec.total_len, 8 * 256 * 1024);
//! ```

use crate::behavior::BehaviorProfile;
use crate::links::NetModel;
use crate::swarm::SwarmSpec;
use crate::topology::TopologySpec;
use bt_core::Config;
use bt_wire::time::Duration;

/// Builder for [`SwarmSpec`] — see the module docs. Obtain one with
/// [`SwarmSpec::builder`]; every method mirrors a spec field and
/// returns `self` for chaining.
#[derive(Debug, Clone, Default)]
pub struct SwarmSpecBuilder {
    spec: SwarmSpec,
}

impl SwarmSpecBuilder {
    /// Start from the spec defaults.
    pub fn new() -> SwarmSpecBuilder {
        SwarmSpecBuilder::default()
    }

    /// Master PRNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Content size in bytes.
    #[must_use]
    pub fn total_len(mut self, bytes: u64) -> Self {
        self.spec.total_len = bytes;
        self
    }

    /// Piece length in bytes.
    #[must_use]
    pub fn piece_len(mut self, bytes: u32) -> Self {
        self.spec.piece_len = bytes;
        self
    }

    /// Content geometry as `count` pieces of `piece_len` bytes.
    #[must_use]
    pub fn pieces(mut self, count: u32, piece_len: u32) -> Self {
        self.spec.total_len = u64::from(count) * u64::from(piece_len);
        self.spec.piece_len = piece_len;
        self
    }

    /// Carry and verify real content bytes.
    #[must_use]
    pub fn real_data(mut self, on: bool) -> Self {
        self.spec.real_data = on;
        self
    }

    /// Simulated session length.
    #[must_use]
    pub fn duration(mut self, duration: Duration) -> Self {
        self.spec.duration = duration;
        self
    }

    /// Base engine configuration (per-peer profiles still override).
    #[must_use]
    pub fn base_config(mut self, config: Config) -> Self {
        self.spec.base_config = config;
        self
    }

    /// Edit the base engine configuration in place.
    #[must_use]
    pub fn configure(mut self, edit: impl FnOnce(&mut Config)) -> Self {
        edit(&mut self.spec.base_config);
        self
    }

    /// Replace the whole peer table.
    #[must_use]
    pub fn peers(mut self, peers: Vec<BehaviorProfile>) -> Self {
        self.spec.peers = peers;
        self
    }

    /// Append one peer.
    #[must_use]
    pub fn peer(mut self, profile: BehaviorProfile) -> Self {
        self.spec.peers.push(profile);
        self
    }

    /// Append `count` copies of a profile.
    #[must_use]
    pub fn peers_of(mut self, count: usize, profile: BehaviorProfile) -> Self {
        self.spec.peers.extend(std::iter::repeat_n(profile, count));
        self
    }

    /// Index of the instrumented peer.
    #[must_use]
    pub fn local(mut self, idx: usize) -> Self {
        self.spec.local = Some(idx);
        self
    }

    /// Fraction of pieces pre-seeded as *available*.
    #[must_use]
    pub fn available_fraction(mut self, fraction: f64) -> Self {
        self.spec.available_fraction = fraction;
        self
    }

    /// Upper bound on pre-populated leecher completion.
    #[must_use]
    pub fn prepop_completion_max(mut self, max: f64) -> Self {
        self.spec.prepop_completion_max = max;
        self
    }

    /// Typed network model (the `net` section).
    #[must_use]
    pub fn net(mut self, model: NetModel) -> Self {
        self.spec.net = Some(model);
        self
    }

    /// Shorthand: a [`NetModel::Uniform`] with explicit parameters —
    /// the typed replacement for the legacy flat
    /// `latency`/`latency_jitter` fields.
    #[must_use]
    pub fn uniform_net(self, latency: Duration, jitter: Duration) -> Self {
        self.net(NetModel::uniform(latency, jitter))
    }

    /// Shorthand: a full-duplex [`NetModel`] over a topology.
    #[must_use]
    pub fn topology(self, spec: TopologySpec) -> Self {
        self.net(NetModel::FullDuplex(spec))
    }

    /// Transfer round length.
    #[must_use]
    pub fn transfer_round(mut self, round: Duration) -> Self {
        self.spec.transfer_round = round;
        self
    }

    /// Availability sampling period.
    #[must_use]
    pub fn sample_every(mut self, period: Duration) -> Self {
        self.spec.sample_every = period;
        self
    }

    /// In-flight block corruption probability.
    #[must_use]
    pub fn corrupt_block_prob(mut self, prob: f64) -> Self {
        self.spec.corrupt_block_prob = prob;
        self
    }

    /// Pre-handshake dial failure probability.
    #[must_use]
    pub fn dial_failure_prob(mut self, prob: f64) -> Self {
        self.spec.dial_failure_prob = prob;
        self
    }

    /// Cap on peers per tracker response.
    #[must_use]
    pub fn tracker_response_cap(mut self, cap: Option<usize>) -> Self {
        self.spec.tracker_response_cap = cap;
        self
    }

    /// Use the tracker's O(num_want) scalable sampling.
    #[must_use]
    pub fn scalable_tracker(mut self, on: bool) -> Self {
        self.spec.scalable_tracker = on;
        self
    }

    /// Record global replication snapshots.
    #[must_use]
    pub fn sample_global(mut self, on: bool) -> Self {
        self.spec.sample_global = on;
        self
    }

    /// Finish: returns the assembled spec.
    pub fn build(self) -> SwarmSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorProfile;

    #[test]
    fn builder_defaults_match_spec_defaults() {
        let built = SwarmSpec::builder().build();
        let spec = SwarmSpec::default();
        assert_eq!(
            serde_json::to_string(&built).unwrap(),
            serde_json::to_string(&spec).unwrap()
        );
    }

    #[test]
    fn builder_sets_every_group() {
        let spec = SwarmSpec::builder()
            .seed(9)
            .pieces(16, 64 * 1024)
            .real_data(true)
            .duration(Duration::from_secs(1200))
            .configure(|c| c.max_peer_set = 12)
            .peer(BehaviorProfile::seed())
            .peers_of(3, BehaviorProfile::leecher(Duration::ZERO))
            .local(1)
            .available_fraction(0.25)
            .prepop_completion_max(0.5)
            .uniform_net(Duration::from_millis(40), Duration::from_millis(80))
            .transfer_round(Duration::from_secs(2))
            .sample_every(Duration::from_secs(10))
            .corrupt_block_prob(0.01)
            .dial_failure_prob(0.02)
            .tracker_response_cap(Some(10))
            .scalable_tracker(true)
            .sample_global(true)
            .build();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.total_len, 16 * 64 * 1024);
        assert_eq!(spec.piece_len, 64 * 1024);
        assert!(spec.real_data);
        assert_eq!(spec.base_config.max_peer_set, 12);
        assert_eq!(spec.peers.len(), 4);
        assert_eq!(spec.local, Some(1));
        assert_eq!(
            spec.net,
            Some(NetModel::uniform(
                Duration::from_millis(40),
                Duration::from_millis(80)
            ))
        );
        assert_eq!(spec.tracker_response_cap, Some(10));
        assert!(spec.scalable_tracker && spec.sample_global);
    }

    #[test]
    fn explicit_uniform_net_resolves_like_legacy_defaults() {
        let legacy = SwarmSpec::default();
        let typed = SwarmSpec::builder()
            .uniform_net(Duration::from_millis(50), Duration::from_millis(100))
            .build();
        assert_eq!(legacy.net_model(), typed.net_model());
    }
}
