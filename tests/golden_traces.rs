//! Golden-trace regression tests.
//!
//! Three representative Table I scenarios — torrent 8 (transient,
//! single initial seed), torrent 7 (steady state), torrent 2 (tiny,
//! unscaled) — are run at the quick profile with seed 42, and a
//! fingerprint of each encoded trace (event count + FNV-1a hash of the
//! JSONL encoding) is compared against the committed fixture in
//! `tests/fixtures/golden_traces.txt`.
//!
//! Any change to the simulator, the RNG stream, the scaling rules, or
//! the trace encoding shows up here as a one-line diff per torrent. If
//! the change is *intentional*, regenerate the fixture with:
//!
//! ```text
//! BT_UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```

use bt_repro::sim::Swarm;
use bt_repro::torrents::{run_scenario, torrent, RunConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The torrents fingerprinted, in fixture order.
const GOLDEN_IDS: [u32; 3] = [8, 7, 2];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_traces.txt")
}

/// FNV-1a, 64-bit — stable, dependency-free, good enough to flag any
/// byte-level drift in an encoded trace.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fingerprint(id: u32) -> String {
    let cfg = RunConfig {
        seed: 42,
        ..RunConfig::quick()
    };
    let outcome = run_scenario(&torrent(id), &cfg);
    let encoded = outcome.trace.to_jsonl();
    format!(
        "torrent={id} events={} fnv1a64={:016x}",
        outcome.trace.len(),
        fnv1a64(encoded.as_bytes())
    )
}

/// Mega-swarm golden: the 10k-peer flash crowd (seed 42), fingerprinted
/// by [`bt_repro::sim::SwarmResult::digest`] since the mega presets run
/// uninstrumented (no per-event trace at that scale). This pins the
/// scalable tracker path, the calendar event queue, and the pooled
/// per-peer round state the same way the trace hashes pin the legacy
/// path.
fn mega_fingerprint() -> String {
    let opts = bt_repro::torrents::PresetOptions {
        seed: 42,
        pieces: 8,
        duration: bt_repro::wire::time::Duration::from_secs(900),
        ..Default::default()
    };
    let spec = bt_repro::torrents::scenarios::mega_flash_crowd(10_000, &opts);
    let result = Swarm::new(spec).run();
    format!(
        "scenario=flash_crowd_10k events={} completed={} digest={:016x}",
        result.events_processed,
        result.completed_peers,
        result.digest()
    )
}

/// The same fingerprints with the causal tracer on: sampling hashes
/// piece/peer ids with splitmix64 and never consumes master-RNG draws,
/// so every line — the per-torrent trace hashes at `trace_sample=2`
/// and the 10k-peer digest at 1/64 — must stay byte-identical to the
/// committed fixture.
#[test]
fn golden_fingerprints_unchanged_with_causal_tracing_on() {
    if std::env::var_os("BT_UPDATE_GOLDEN").is_some() {
        return; // the sibling test regenerates the fixture
    }
    let mut actual = String::new();
    for id in GOLDEN_IDS {
        let cfg = RunConfig {
            seed: 42,
            trace_sample: Some(2),
            ..RunConfig::quick()
        };
        let outcome = run_scenario(&torrent(id), &cfg);
        let encoded = outcome.trace.to_jsonl();
        writeln!(
            actual,
            "torrent={id} events={} fnv1a64={:016x}",
            outcome.trace.len(),
            fnv1a64(encoded.as_bytes())
        )
        .unwrap();
        assert!(
            outcome.trace_jsonl.is_some(),
            "torrent {id}: causal trace requested but not exported"
        );
    }
    let opts = bt_repro::torrents::PresetOptions {
        seed: 42,
        pieces: 8,
        duration: bt_repro::wire::time::Duration::from_secs(900),
        ..Default::default()
    };
    let spec = bt_repro::torrents::scenarios::mega_flash_crowd(10_000, &opts);
    let tracer = bt_repro::obs::Tracer::new(42, 64);
    let result = Swarm::new(spec).with_trace(tracer.clone()).run();
    writeln!(
        actual,
        "scenario=flash_crowd_10k events={} completed={} digest={:016x}",
        result.events_processed,
        result.completed_peers,
        result.digest()
    )
    .unwrap();
    tracer.flush_local();
    assert!(
        !tracer.to_jsonl().is_empty(),
        "the 10k tracer sampled nothing at 1/64"
    );
    let expected = std::fs::read_to_string(fixture_path()).expect("fixture exists");
    assert_eq!(
        actual, expected,
        "causal tracing perturbed the golden fingerprints: traces must \
         never consume master-RNG draws"
    );
}

#[test]
fn golden_trace_fingerprints_match_fixture() {
    let mut actual = String::new();
    for id in GOLDEN_IDS {
        writeln!(actual, "{}", fingerprint(id)).unwrap();
    }
    writeln!(actual, "{}", mega_fingerprint()).unwrap();
    let path = fixture_path();
    if std::env::var_os("BT_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden_traces: fixture regenerated at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with `BT_UPDATE_GOLDEN=1 cargo test --test golden_traces`",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "trace fingerprints drifted from the committed fixture; if the \
         simulation change is intentional, regenerate with \
         `BT_UPDATE_GOLDEN=1 cargo test --test golden_traces`"
    );
}
