//! Offline stand-in for `proptest`.
//!
//! Implements the randomised-property-testing core this workspace uses:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! range and tuple and `Vec<Strategy>` strategies, `prop_oneof!`,
//! `collection::{vec, btree_map}`, `option::of`, `any::<T>()`, and the
//! `proptest!` test-harness macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case prints the generated inputs
//!   verbatim so it can be reproduced by hand;
//! * each test function derives its RNG seed from its own name, so runs
//!   are deterministic across processes (upstream re-seeds per run);
//! * `prop_recursive` expands the recursion to its depth bound eagerly
//!   instead of weighting by size.

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::{Rng, SeedableRng};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG strategies draw from. Seeded deterministically from the test
/// name so every run generates the same cases.
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(test_name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: rand::rngs::SmallRng::seed_from_u64(h),
        }
    }

    fn random_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.random_range(range)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.inner.random_bool(p)
    }
}

/// A failed `prop_assert!`; carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { strategy: self, f }
    }

    /// Build a recursive strategy: `f` maps a strategy for the inner
    /// levels to a strategy for one more level. Expanded eagerly to
    /// `depth` levels (`_desired_size`/`_expected_branch` are accepted
    /// for signature compatibility and ignored).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = BoxedStrategy::new(self);
        for _ in 0..depth {
            current = BoxedStrategy::new(f(current.clone()));
        }
        current
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.strategy.generate(rng)).generate(rng)
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<V> {
    gen_fn: Arc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Arc::clone(&self.gen_fn),
        }
    }
}

impl<V> BoxedStrategy<V> {
    /// Erase `strategy`.
    pub fn new<S: Strategy<Value = V> + 'static>(strategy: S) -> BoxedStrategy<V> {
        BoxedStrategy {
            gen_fn: Arc::new(move |rng| strategy.generate(rng)),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Weighted choice between strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u32,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total_weight = arms.iter().map(|(w, _)| w).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one arm");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.random_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick < total_weight");
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges are strategies.
macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Tuples of strategies generate tuples of values, left to right.
macro_rules! tuple_strategies {
    ($(($($s:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
    (A, B, C, D, E, F, G, H, I),
    (A, B, C, D, E, F, G, H, I, J),
);

// A Vec of strategies generates a Vec of values, one per element.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl<T: Arbitrary + std::fmt::Debug, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------

/// Bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// `Vec` of `size`-many draws from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` with up to `size`-many entries (duplicate keys collapse,
    /// as in upstream proptest).
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Weighted (`w => strategy`) or uniform choice between strategies whose
/// values share one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::BoxedStrategy::new($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::BoxedStrategy::new($strategy))),+
        ])
    };
}

/// Assert within a property; on failure the case's inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn prop(x in 0u32..10, v in collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let values = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let described = format!("{:?}", values);
                let ($($pat,)+) = values;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name), case + 1, config.cases, err, described
                    ),
                    Err(payload) => {
                        eprintln!(
                            "property `{}` panicked at case {}/{}\ninputs: {}",
                            stringify!($name), case + 1, config.cases, described
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u32..100, 1..10);
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::generate(&strat, &mut a),
                crate::Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 5i64..=9, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(any::<u8>(), 0..8),
            o in crate::option::of(1u8..4),
            w in prop_oneof![3 => Just(0u8), 1 => 1u8..4],
            (a, b) in (0u16..10, any::<bool>()),
        ) {
            prop_assert!(v.len() < 8);
            if let Some(x) = o { prop_assert!((1..4).contains(&x)); }
            prop_assert!(w < 4);
            prop_assert!(a < 10);
            let _ = b;
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
