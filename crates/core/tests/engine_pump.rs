//! Two engines wired directly together through an in-process message
//! pump — no simulator, no sockets. Checks conversation-level protocol
//! invariants that unit tests on a single engine cannot see.

use bt_core::engine::PeerCaps;
use bt_core::{Action, Config, ConnId, DataMode, Engine, EngineBuilder, Input};
use bt_piece::{Bitfield, Geometry};
use bt_wire::message::{Message, MessageKind};
use bt_wire::metainfo::{SyntheticContent, BLOCK_LEN};
use bt_wire::peer_id::{ClientKind, IpAddr, PeerId};
use bt_wire::time::{Duration, Instant};
use std::collections::VecDeque;
use std::sync::Arc;

/// A two-engine harness with explicit message queues.
struct Pump {
    a: Engine,
    b: Engine,
    conn_a: ConnId, // A's handle for B
    conn_b: ConnId, // B's handle for A
    to_b: VecDeque<Message>,
    to_a: VecDeque<Message>,
    content: Arc<SyntheticContent>,
    now: Instant,
    /// Every message that crossed in either direction, for assertions.
    log: Vec<(bool, MessageKind)>, // (a_to_b, kind)
}

impl Pump {
    fn new(pieces: u32, a_cfg: Config, b_cfg: Config, a_seed_full: bool) -> Pump {
        let content = Arc::new(SyntheticContent::generate(
            "pump",
            3,
            u64::from(pieces) * u64::from(2 * BLOCK_LEN),
            2 * BLOCK_LEN,
        ));
        let geometry = Geometry::from(&content.metainfo);
        let hash = content.metainfo.info_hash;
        let build = |cfg: Config, id: u64, pieces_have: Bitfield| {
            EngineBuilder::new(geometry, hash, PeerId::new(ClientKind::Mainline402, id))
                .config(cfg)
                .data(DataMode::Real(content.clone()))
                .ip(IpAddr(id as u32))
                .initial_pieces(pieces_have)
                .rng_seed(id)
                .build()
        };
        let a_caps = {
            let e = build(a_cfg.clone(), 1, Bitfield::new(pieces));
            PeerCaps::from_reserved(&e.handshake_reserved())
        };
        let b_caps_probe = {
            let e = build(b_cfg.clone(), 2, Bitfield::new(pieces));
            PeerCaps::from_reserved(&e.handshake_reserved())
        };
        let a_pieces = if a_seed_full {
            Bitfield::full(pieces)
        } else {
            Bitfield::new(pieces)
        };
        let mut a = build(a_cfg, 1, a_pieces);
        let mut b = build(b_cfg, 2, Bitfield::new(pieces));
        let now = Instant::ZERO;
        let conn_a = a
            .handle(
                now,
                Input::PeerConnected {
                    ip: IpAddr(2),
                    peer_id: b.peer_id(),
                    initiated_by_us: false,
                    caps: b_caps_probe,
                },
            )
            .take_accepted()
            .expect("A accepts B");
        let conn_b = b
            .handle(
                now,
                Input::PeerConnected {
                    ip: IpAddr(1),
                    peer_id: a.peer_id(),
                    initiated_by_us: true,
                    caps: a_caps,
                },
            )
            .take_accepted()
            .expect("B accepts A");
        Pump {
            a,
            b,
            conn_a,
            conn_b,
            to_b: VecDeque::new(),
            to_a: VecDeque::new(),
            content,
            now,
            log: Vec::new(),
        }
    }

    /// Drain both engines' actions into the queues, materialising blocks.
    fn collect(&mut self) {
        let content = self.content.clone();
        for (is_a, conn) in [(true, self.conn_a), (false, self.conn_b)] {
            let engine = if is_a { &mut self.a } else { &mut self.b };
            for action in engine.drain_actions() {
                match action {
                    Action::Send { msg, .. } => {
                        if is_a {
                            self.to_b.push_back(msg);
                        } else {
                            self.to_a.push_back(msg);
                        }
                    }
                    Action::SendBlock { block, .. } => {
                        let data = content.block_bytes(block.piece, block.block_index());
                        engine.handle(self.now, Input::BlockSent { conn, block });
                        let msg = Message::Piece {
                            block,
                            data: data.into(),
                        };
                        if is_a {
                            self.to_b.push_back(msg);
                        } else {
                            self.to_a.push_back(msg);
                        }
                    }
                    // No transport queues to cancel from in this pump,
                    // and no event loop to arm timers in.
                    Action::CancelBlock { .. } | Action::SetTimer { .. } => {}
                    Action::Announce { .. } | Action::Connect { .. } => {}
                    Action::Disconnect { .. } => {}
                }
            }
        }
    }

    /// Deliver every queued message, then re-collect, until quiescent.
    fn settle(&mut self) {
        loop {
            self.collect();
            if self.to_a.is_empty() && self.to_b.is_empty() {
                break;
            }
            while let Some(msg) = self.to_b.pop_front() {
                self.log.push((true, msg.kind()));
                self.b.handle(
                    self.now,
                    Input::Message {
                        conn: self.conn_b,
                        msg,
                    },
                );
            }
            while let Some(msg) = self.to_a.pop_front() {
                self.log.push((false, msg.kind()));
                self.a.handle(
                    self.now,
                    Input::Message {
                        conn: self.conn_a,
                        msg,
                    },
                );
            }
        }
    }

    fn tick(&mut self, secs: u64) {
        self.now += Duration::from_secs(secs);
    }
}

/// A seed and a fresh leecher: after one rechoke the leecher drains the
/// whole torrent through the pump, hash-verifying every piece.
#[test]
fn seed_to_leecher_full_transfer() {
    let mut p = Pump::new(4, Config::default(), Config::default(), true);
    p.settle(); // bitfields + interested
                // The leecher (B) must have declared interest; the seed must not.
    assert!(p.log.contains(&(false, MessageKind::Interested)));
    assert!(!p.log.contains(&(true, MessageKind::Interested)));
    // No requests can flow while B is choked (base protocol).
    assert!(!p.log.contains(&(false, MessageKind::Request)));
    // After the seed's rechoke, everything drains.
    p.tick(10);
    p.a.rechoke(p.now);
    p.settle();
    assert!(p.b.is_seed(), "leecher must complete through the pump");
    assert_eq!(p.b.num_pieces_have(), 4);
    // The conversation ended with B no longer interested.
    assert!(p.log.contains(&(false, MessageKind::NotInterested)));
}

/// Message-order sanity: the first payload-bearing message each side
/// sends is its bitfield (or compact map), before anything else.
#[test]
fn bitfield_always_first() {
    let mut p = Pump::new(4, Config::default(), Config::default(), true);
    p.settle();
    let first_a_to_b = p.log.iter().find(|(a2b, _)| *a2b).map(|(_, k)| *k);
    let first_b_to_a = p.log.iter().find(|(a2b, _)| !*a2b).map(|(_, k)| *k);
    assert_eq!(first_a_to_b, Some(MessageKind::Bitfield));
    assert_eq!(first_b_to_a, Some(MessageKind::Bitfield));
}

/// With the Fast Extension on both sides, the leecher pulls allowed-fast
/// pieces *before any unchoke ever happens*.
#[test]
fn fast_extension_transfers_before_unchoke() {
    let cfg = Config {
        fast_extension: true,
        ..Config::default()
    };
    let mut p = Pump::new(8, cfg.clone(), cfg, true);
    p.settle(); // handshakes, HaveAll, AllowedFast grants, choked requests
    assert!(
        !p.log.contains(&(true, MessageKind::Unchoke)),
        "no rechoke has run, so no unchoke can exist"
    );
    let pieces_received = p.b.num_pieces_have();
    assert!(
        pieces_received > 0,
        "allowed-fast pieces must flow while fully choked"
    );
    assert!(
        pieces_received < 8,
        "only the granted pieces may flow while choked"
    );
    // The rest requires a real unchoke.
    p.tick(10);
    p.a.rechoke(p.now);
    p.settle();
    assert!(p.b.is_seed());
}

/// Two empty leechers exchange nothing, and nobody ever sends `piece`.
#[test]
fn two_empty_leechers_stay_quiescent() {
    let mut p = Pump::new(4, Config::default(), Config::default(), false);
    p.settle();
    p.tick(10);
    p.a.rechoke(p.now);
    p.b.rechoke(p.now);
    p.settle();
    assert_eq!(p.a.num_pieces_have(), 0);
    assert_eq!(p.b.num_pieces_have(), 0);
    assert!(!p.log.iter().any(|(_, k)| *k == MessageKind::Piece));
    assert!(!p.log.iter().any(|(_, k)| *k == MessageKind::Interested));
}

/// A free-riding seed never serves even when asked nicely.
#[test]
fn free_riding_seed_serves_nothing() {
    let mut p = Pump::new(4, Config::free_rider(), Config::default(), true);
    p.settle();
    for round in 1..=6u64 {
        p.tick(10 * round);
        p.a.rechoke(p.now);
        p.settle();
    }
    assert_eq!(p.b.num_pieces_have(), 0);
    assert!(!p
        .log
        .iter()
        .any(|(a2b, k)| *a2b && *k == MessageKind::Piece));
}
