//! Unchoke/interest correlation (figure 10).
//!
//! §IV-B.2/3: for each remote peer, a dot plots the number of times the
//! local peer unchoked it against the time it was interested in the local
//! peer — separately for the local peer's leecher state (top graph: no
//! correlation, a few peers unchoked very often) and seed state (bottom
//! graph: strong linear correlation, the signature of the new seed-state
//! algorithm's equal service time).

use crate::intervals::{overlap_secs, IntervalBuilder};
use bt_instrument::identify::PeerRegistry;
use bt_instrument::trace::{Trace, TraceEvent};
use bt_wire::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One scatter point of figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnchokePoint {
    /// Trace connection handle.
    pub handle: u32,
    /// Seconds the remote was interested in the local peer (x axis).
    pub interested_secs: f64,
    /// Times the local peer unchoked it (y axis).
    pub unchokes: u32,
}

/// Figure 10's two scatter plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnchokeCorrelation {
    /// Leecher-state points (top graph).
    pub leecher: Vec<UnchokePoint>,
    /// Seed-state points (bottom graph).
    pub seed: Vec<UnchokePoint>,
}

/// Pearson correlation coefficient of (interested_secs, unchokes).
/// Returns `NaN` for degenerate inputs.
pub fn pearson(points: &[UnchokePoint]) -> f64 {
    let n = points.len();
    if n < 2 {
        return f64::NAN;
    }
    let xs: Vec<f64> = points.iter().map(|p| p.interested_secs).collect();
    let ys: Vec<f64> = points.iter().map(|p| f64::from(p.unchokes)).collect();
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Compute figure 10 from a trace.
pub fn unchoke_correlation(trace: &Trace) -> UnchokeCorrelation {
    let seed_at = trace.meta.seed_at.unwrap_or(trace.meta.session_end);
    let end = trace.meta.session_end;

    // Remote-interest intervals per handle.
    let mut builders: HashMap<u32, IntervalBuilder> = HashMap::new();
    // Unchoke counts per handle per state.
    let mut unchokes_ls: HashMap<u32, u32> = HashMap::new();
    let mut unchokes_ss: HashMap<u32, u32> = HashMap::new();
    for (t, ev) in trace.iter() {
        match ev {
            TraceEvent::RemoteInterest { peer, interested } => {
                builders
                    .entry(*peer)
                    .or_default()
                    .transition(t, *interested);
            }
            TraceEvent::LocalChoke {
                peer,
                choked: false,
                ..
            } => {
                if t < seed_at {
                    *unchokes_ls.entry(*peer).or_insert(0) += 1;
                } else {
                    *unchokes_ss.entry(*peer).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }
    // Interest can only exist while the peer is in the peer set; a peer
    // that departs while interested emits no explicit not-interested
    // transition, so clamp every interval to the membership window.
    let registry = PeerRegistry::from_trace(trace);
    let intervals: HashMap<u32, Vec<crate::intervals::Interval>> = builders
        .into_iter()
        .map(|(h, b)| {
            let mut ivs = b.finish(end);
            if let Some(m) = registry.membership(h) {
                ivs.retain_mut(|iv| {
                    iv.start = iv.start.max(m.joined);
                    iv.end = iv.end.min(m.left);
                    iv.end > iv.start
                });
            }
            (h, ivs)
        })
        .collect();

    let mut handles: Vec<u32> = intervals
        .keys()
        .copied()
        .chain(unchokes_ls.keys().copied())
        .chain(unchokes_ss.keys().copied())
        .collect();
    handles.sort_unstable();
    handles.dedup();

    let mut leecher = Vec::new();
    let mut seed = Vec::new();
    for h in handles {
        let ivs = intervals.get(&h).map(Vec::as_slice).unwrap_or(&[]);
        let ls_secs = overlap_secs(ivs, Instant::ZERO, seed_at);
        let ss_secs = overlap_secs(ivs, seed_at, end);
        let ls_count = unchokes_ls.get(&h).copied().unwrap_or(0);
        let ss_count = unchokes_ss.get(&h).copied().unwrap_or(0);
        if ls_secs > 0.0 || ls_count > 0 {
            leecher.push(UnchokePoint {
                handle: h,
                interested_secs: ls_secs,
                unchokes: ls_count,
            });
        }
        if ss_secs > 0.0 || ss_count > 0 {
            seed.push(UnchokePoint {
                handle: h,
                interested_secs: ss_secs,
                unchokes: ss_count,
            });
        }
    }
    UnchokeCorrelation { leecher, seed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_instrument::trace::{TraceMeta, UnchokeRole};

    fn meta() -> TraceMeta {
        TraceMeta {
            torrent: "u".into(),
            torrent_id: 7,
            num_pieces: 10,
            num_blocks: 160,
            initial_seeds: 1,
            initial_leechers: 5,
            session_end: Instant::from_secs(1000),
            seed_at: Some(Instant::from_secs(400)),
        }
    }

    #[test]
    fn splits_states_at_seed_transition() {
        let mut tr = Trace::new(meta());
        tr.push(
            Instant::from_secs(0),
            TraceEvent::RemoteInterest {
                peer: 1,
                interested: true,
            },
        );
        tr.push(
            Instant::from_secs(100),
            TraceEvent::LocalChoke {
                peer: 1,
                choked: false,
                role: Some(UnchokeRole::Regular),
            },
        );
        tr.push(
            Instant::from_secs(500),
            TraceEvent::LocalChoke {
                peer: 1,
                choked: false,
                role: Some(UnchokeRole::SeedKept),
            },
        );
        tr.push(
            Instant::from_secs(600),
            TraceEvent::LocalChoke {
                peer: 1,
                choked: false,
                role: Some(UnchokeRole::SeedRandom),
            },
        );
        let c = unchoke_correlation(&tr);
        assert_eq!(c.leecher.len(), 1);
        assert_eq!(c.leecher[0].unchokes, 1);
        assert_eq!(c.leecher[0].interested_secs, 400.0);
        assert_eq!(c.seed[0].unchokes, 2);
        assert_eq!(c.seed[0].interested_secs, 600.0);
    }

    #[test]
    fn pearson_detects_linear_relation() {
        let perfect: Vec<UnchokePoint> = (1..20)
            .map(|i| UnchokePoint {
                handle: i,
                interested_secs: f64::from(i),
                unchokes: i * 2,
            })
            .collect();
        assert!((pearson(&perfect) - 1.0).abs() < 1e-9);
        let anti: Vec<UnchokePoint> = (1..20)
            .map(|i| UnchokePoint {
                handle: i,
                interested_secs: f64::from(i),
                unchokes: 40 - i,
            })
            .collect();
        assert!((pearson(&anti) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[]).is_nan());
        let flat: Vec<UnchokePoint> = (0..10)
            .map(|i| UnchokePoint {
                handle: i,
                interested_secs: f64::from(i),
                unchokes: 3,
            })
            .collect();
        assert!(pearson(&flat).is_nan());
    }

    #[test]
    fn never_interested_never_unchoked_excluded() {
        let mut tr = Trace::new(meta());
        tr.push(
            Instant::from_secs(0),
            TraceEvent::RemoteInterest {
                peer: 9,
                interested: true,
            },
        );
        tr.push(
            Instant::from_secs(1),
            TraceEvent::RemoteInterest {
                peer: 9,
                interested: false,
            },
        );
        let c = unchoke_correlation(&tr);
        assert_eq!(c.leecher.len(), 1);
        assert!(c.seed.is_empty());
    }
}
